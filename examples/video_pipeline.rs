//! §5.1's video story (ExCamera/Sprocket): chunk a video, encode chunks in
//! parallel serverless workers, hand the boundary reference frames through
//! Jiffy, and verify the result decodes losslessly — reporting the
//! fan-out's critical-path win and the compression ratio.
//!
//! Run with: `cargo run --example video_pipeline`

use std::sync::Arc;
use std::time::Duration;

use taureau::apps::video::{decode_all, encode_serverless, synthetic_video};
use taureau::prelude::*;

fn main() {
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(
        JiffyConfig {
            blocks_per_node: 8192,
            ..Default::default()
        },
        clock,
    );

    let (frames, w, h) = (120usize, 96usize, 64usize);
    let video = Arc::new(synthetic_video(frames, w, h, 2024));
    println!(
        "video: {frames} frames of {w}x{h} ({} raw)",
        ByteSize::b((frames * w * h) as u64)
    );

    let chunk = 12;
    let out = encode_serverless(
        &platform,
        &jiffy,
        Arc::clone(&video),
        chunk,
        Duration::from_millis(30), // simulated encode cost per frame
        "demo",
    );

    println!("chunks encoded      : {}", out.invocations);
    println!("encoded size        : {}", ByteSize::b(out.encoded_bytes));
    println!("compression ratio   : {:.2}x", out.compression_ratio());
    println!("serial critical path: {:?}", out.serial_time());
    println!("fan-out critical path: {:?}", out.parallel_time());
    println!(
        "speedup             : {:.1}x across {} workers",
        out.serial_time().as_secs_f64() / out.parallel_time().as_secs_f64(),
        out.invocations
    );

    let decoded = decode_all(&out, video.len(), chunk, w * h, &video).expect("decode");
    println!(
        "lossless roundtrip  : {}",
        if decoded == *video {
            "verified"
        } else {
            "FAILED"
        }
    );
    println!(
        "video tenant billed ${:.8} for the job",
        platform.billing().total("video"),
    );
}
