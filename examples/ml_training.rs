//! §5.2's serverless model training: data-parallel gradient workers on
//! FaaS, a Jiffy-backed parameter server, straggler injection, and the
//! coded-computation mitigation of Gupta et al. — then a Seneca-style
//! hyperparameter sweep.
//!
//! Run with: `cargo run --example ml_training`

use std::sync::Arc;
use std::time::Duration;

use taureau::apps::ml::{
    accuracy, hyperparameter_search, synthetic_logreg, train_serverless, TrainingConfig,
};
use taureau::prelude::*;

fn main() {
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(JiffyConfig::default(), clock);

    let (ds, _) = synthetic_logreg(2000, 8, 99);
    let ds = Arc::new(ds);
    println!("dataset: {} examples x {} features", ds.len(), ds.dim());

    // Train with 8 workers under a 20% straggler regime, uncoded vs coded.
    let base = TrainingConfig {
        lr: 0.5,
        epochs: 20,
        workers: 8,
        straggler_prob: 0.2,
        straggler_slowdown: 8.0,
        compute_per_example: Duration::from_micros(50),
        ..TrainingConfig::default()
    };

    let uncoded = train_serverless(
        &platform,
        &jiffy,
        Arc::clone(&ds),
        &TrainingConfig {
            redundancy: 1,
            ..base.clone()
        },
        "demo-uncoded",
    );
    let coded = train_serverless(
        &platform,
        &jiffy,
        Arc::clone(&ds),
        &TrainingConfig {
            redundancy: 3,
            ..base
        },
        "demo-coded",
    );

    println!("\n               uncoded      coded(r=3)");
    println!(
        "final loss     {:<12.5} {:<12.5}",
        uncoded.loss_history.last().unwrap(),
        coded.loss_history.last().unwrap()
    );
    println!(
        "accuracy       {:<12.4} {:<12.4}",
        accuracy(&uncoded.weights, &ds),
        accuracy(&coded.weights, &ds)
    );
    println!(
        "job time       {:<12?} {:<12?}",
        uncoded.total_time(),
        coded.total_time()
    );
    println!(
        "invocations    {:<12} {:<12}",
        uncoded.invocations, coded.invocations
    );
    println!(
        "\ncoding cut straggler wait by {:.1}x at {}x the compute",
        uncoded.total_time().as_secs_f64() / coded.total_time().as_secs_f64().max(1e-9),
        3
    );

    // Hyperparameter sweep: "concurrently invokes functions for all
    // combinations … returns the configuration with the best score."
    let (best, table) = hyperparameter_search(
        &platform,
        &jiffy,
        Arc::clone(&ds),
        &[0.01, 0.1, 0.5, 1.0, 2.0],
        15,
    );
    println!("\nhyperparameter sweep (lr -> final loss):");
    for (lr, loss) in &table {
        let marker = if *lr == best { "  <-- best" } else { "" };
        println!("  {lr:<6} {loss:.5}{marker}");
    }
}
