//! §4.1's warning, demonstrated: "most FaaS platforms re-execute functions
//! transparently on failure, [so] the transactional semantics offered by
//! serverless database services can be crucial for ensuring correctness."
//!
//! A transfer function crashes between its debit and credit and is
//! transparently retried. With naive auto-committed writes, money
//! vanishes; inside a snapshot-isolation transaction, the invariant holds.
//!
//! Run with: `cargo run --example transactional_db`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use taureau::baas::{DbError, ServerlessDb};
use taureau::prelude::*;
use taureau_faas::FunctionSpec;

fn balance(db: &ServerlessDb, k: &[u8]) -> u64 {
    u64::from_le_bytes(db.get(k).unwrap().try_into().unwrap())
}

fn main() {
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock);

    // --- naive version: raw KV writes --------------------------------
    let db = ServerlessDb::new();
    db.put(b"alice", &50u64.to_le_bytes());
    db.put(b"bob", &50u64.to_le_bytes());
    let crashed = Arc::new(AtomicBool::new(false));
    let (d, c) = (db.clone(), crashed.clone());
    platform
        .register(FunctionSpec::new("transfer-naive", "bank", move |_| {
            let a = u64::from_le_bytes(d.get(b"alice").unwrap().try_into().unwrap());
            d.put(b"alice", &(a - 10).to_le_bytes());
            if !c.swap(true, Ordering::SeqCst) {
                return Err("function crashed after the debit".into());
            }
            let b = u64::from_le_bytes(d.get(b"bob").unwrap().try_into().unwrap());
            d.put(b"bob", &(b + 10).to_le_bytes());
            Ok(vec![])
        }))
        .unwrap();
    platform
        .invoke_with_retries("transfer-naive", &[][..], 3)
        .unwrap();
    let (a, b) = (balance(&db, b"alice"), balance(&db, b"bob"));
    println!(
        "naive KV       : alice={a} bob={b} total={} <- ${} vanished!",
        a + b,
        100 - (a + b)
    );

    // --- transactional version ---------------------------------------
    let db = ServerlessDb::new();
    db.put(b"alice", &50u64.to_le_bytes());
    db.put(b"bob", &50u64.to_le_bytes());
    let crashed = Arc::new(AtomicBool::new(false));
    let (d, c) = (db.clone(), crashed.clone());
    platform
        .register(FunctionSpec::new("transfer-txn", "bank", move |_| {
            d.run_transaction(5, |txn| {
                let a = u64::from_le_bytes(txn.get(b"alice").unwrap().try_into().unwrap());
                txn.put(b"alice", &(a - 10).to_le_bytes());
                if !c.swap(true, Ordering::SeqCst) {
                    // The buffered debit dies with the transaction.
                    return Err(DbError::Aborted("crash mid-transfer".into()));
                }
                let b = u64::from_le_bytes(txn.get(b"bob").unwrap().try_into().unwrap());
                txn.put(b"bob", &(b + 10).to_le_bytes());
                Ok(())
            })
            .map_err(|e| e.to_string())?;
            Ok(vec![])
        }))
        .unwrap();
    platform
        .invoke_with_retries("transfer-txn", &[][..], 3)
        .unwrap();
    let (a, b) = (balance(&db, b"alice"), balance(&db, b"bob"));
    println!(
        "transactional  : alice={a} bob={b} total={} <- invariant preserved",
        a + b
    );

    // Bonus: optimistic concurrency under contention.
    let db = ServerlessDb::new();
    db.put(b"hits", &0u64.to_le_bytes());
    let mut handles = vec![];
    for _ in 0..4 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..250 {
                db.run_transaction(1000, |txn| {
                    let v = u64::from_le_bytes(txn.get(b"hits").unwrap().try_into().unwrap());
                    txn.put(b"hits", &(v + 1).to_le_bytes());
                    Ok(())
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let (_, _, commits, aborts) = db.op_counts();
    println!(
        "contended counter: value={} after {commits} commits, {aborts} optimistic retries",
        balance(&db, b"hits"),
    );
}
