//! §3.1's IoT use-case: "whenever a new IoT device registers, it triggers
//! a serverless function, which in turn populates a registry in a
//! serverless data store" — plus the paper's fermentation-thermometer
//! motivation, streaming telemetry through a second function.
//!
//! Run with: `cargo run --example iot_registry`

use taureau::apps::iot::{IotBackend, Registration};
use taureau::prelude::*;

fn main() {
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(JiffyConfig::default(), clock);
    let backend = IotBackend::deploy(&platform, &jiffy);

    // Devices come online and register through the event queue.
    for (id, kind, loc) in [
        ("fermenter-1", "thermometer", "cellar"),
        ("fermenter-2", "thermometer", "cellar"),
        ("door-cam", "camera", "entrance"),
        ("soil-3", "moisture", "greenhouse"),
    ] {
        backend.register_device(&Registration {
            device_id: id.into(),
            kind: kind.into(),
            location: loc.into(),
        });
    }
    let ran = backend.process_events();
    println!("registration events processed: {ran}");

    // The fermentation monitor reports temperatures.
    for t in [18.2, 18.9, 19.4, 21.0, 23.5, 22.8] {
        backend.report("fermenter-1", t);
    }
    backend.process_events();

    println!("\nregistry queries (served by query functions over Jiffy):");
    for id in ["fermenter-1", "door-cam", "ghost"] {
        match backend.lookup(id) {
            Some((kind, loc)) => println!("  {id:<12} -> {kind} @ {loc}"),
            None => println!("  {id:<12} -> not registered"),
        }
    }
    let mut thermometers = backend.devices_of_kind("thermometer");
    thermometers.sort();
    println!("  thermometers: {thermometers:?}");

    if let Some((last, mean)) = backend.device_stats("fermenter-1") {
        println!("\nfermenter-1 telemetry: last {last:.1}C, mean {mean:.2}C");
        if last > 22.0 {
            println!("  (fermentation running hot — the alerting function would fire)");
        }
    }

    println!(
        "\niot tenant billed ${:.8} for {} event-driven executions",
        backend.platform().billing().total("iot"),
        backend.platform().billing().invocations("iot"),
    );
}
