//! §5.1's serverless graph processing (Toader et al.'s Graphless pattern):
//! PageRank in the Pregel model, with FaaS invocations as workers and
//! Jiffy as the memory engine for vertex state and messages.
//!
//! Run with: `cargo run --example graph_pagerank`

use std::sync::Arc;

use taureau::apps::graph::{pagerank_seq, run_pregel, Graph, PageRank};
use taureau::prelude::*;

fn main() {
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(JiffyConfig::default(), clock);

    let graph = Arc::new(Graph::random(500, 4000, 13));
    println!("graph: {} vertices, {} edges", graph.n(), graph.m());

    let outcome = run_pregel(
        &platform,
        &jiffy,
        Arc::clone(&graph),
        Arc::new(PageRank { d: 0.85, iters: 15 }),
        8, // partitions = concurrent serverless workers per superstep
        "pagerank-demo",
    );

    println!("supersteps : {}", outcome.supersteps);
    println!("invocations: {}", outcome.invocations);
    println!("messages   : {}", outcome.messages);

    // Validate against the sequential reference.
    let reference = pagerank_seq(&graph, 0.85, 15);
    let max_err = outcome
        .values
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |serverless - sequential| = {max_err:.2e}");

    // Top-5 ranked vertices.
    let mut ranked: Vec<(usize, f64)> = outcome.values.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    println!("top vertices by rank:");
    for (v, r) in ranked.into_iter().take(5) {
        println!("  v{v:<5} {r:.6}");
    }
    println!(
        "\npregel tenant billed ${:.8} for {} worker executions",
        platform.billing().total("pregel"),
        platform.billing().invocations("pregel"),
    );
}
