//! Quickstart: register a serverless function, invoke it cold and warm,
//! and read the fine-grained bill — the three FaaS properties of §4.1 in
//! thirty lines.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use taureau::prelude::*;

fn main() {
    // A platform on the wall clock with the default (Lambda-calibrated)
    // cold-start model and pricing.
    let platform = FaasPlatform::with_defaults();

    // Register a function: plain Rust, 256 MiB, 5 s timeout.
    platform
        .register(
            FunctionSpec::new("greet", "demo-tenant", |ctx| {
                let name = ctx.payload_str().unwrap_or("world");
                Ok(format!("Hello, {name}!").into_bytes())
            })
            .with_memory(ByteSize::mb(256))
            .with_timeout(Duration::from_secs(5)),
        )
        .expect("register");

    // First invocation pays a cold start…
    let cold = platform
        .invoke("greet", &b"serverless"[..])
        .expect("invoke");
    println!(
        "cold : {:>8?} startup + {:?} exec -> {}",
        cold.startup_latency,
        cold.exec_duration,
        String::from_utf8_lossy(&cold.output)
    );

    // …the second finds the container warm.
    let warm = platform.invoke("greet", &b"again"[..]).expect("invoke");
    println!(
        "warm : {:>8?} startup + {:?} exec -> {}",
        warm.startup_latency,
        warm.exec_duration,
        String::from_utf8_lossy(&warm.output)
    );

    let (cold_starts, warm_starts) = platform.start_counts();
    println!("starts: {cold_starts} cold, {warm_starts} warm");
    println!(
        "bill for demo-tenant: ${:.10} across {} invocations",
        platform.billing().total("demo-tenant"),
        platform.billing().invocations("demo-tenant"),
    );
}
