//! Figure 3 of the paper, end to end: a Count-Min sketch deployed as a
//! Pulsar function, estimating event frequencies over a Zipf-skewed stream
//! — plus a Space-Saving function finding the top-k heavy hitters on the
//! same topic, showing fan-out to two subscriptions.
//!
//! Run with: `cargo run --example stream_sketches`

use taureau::core::rng::{det_rng, Zipf};
use taureau::prelude::*;
use taureau::sketches::SpaceSaving;

fn main() {
    let cluster = PulsarCluster::with_defaults();
    let jiffy = Jiffy::with_defaults();
    let runtime = FunctionRuntime::new(cluster.clone(), jiffy);

    cluster.create_topic("events", 1).expect("create topic");
    cluster.create_topic("alerts", 1).expect("create topic");

    // Figure 3: `CountMinSketch sketch = new CountMinSketch(...)` inside a
    // function; alert when an item's estimate crosses a threshold.
    let mut sketch = CountMinSketch::with_error_bounds(0.001, 0.01, 128);
    runtime
        .register(
            FunctionConfig {
                name: "count-min".into(),
                inputs: vec!["events".into()],
                output: Some("alerts".into()),
            },
            Box::new(move |msg, _ctx| {
                sketch.add(&msg.payload, 1); // sketch.add(input, 1)
                let count = sketch.estimate(&msg.payload); // estimateCount
                (count == 500).then(|| {
                    format!("item {} crossed 500", String::from_utf8_lossy(&msg.payload))
                        .into_bytes()
                })
            }),
        )
        .expect("register count-min");

    // A second sketch function on the same topic: top-k heavy hitters.
    let mut topk = SpaceSaving::new(16);
    runtime
        .register(
            FunctionConfig {
                name: "top-k".into(),
                inputs: vec!["events".into()],
                output: None,
            },
            Box::new(move |msg, ctx| {
                topk.add(&msg.payload, 1);
                // Persist the current top-3 into function state each 1000
                // events, so it survives the function instance.
                if topk.total().is_multiple_of(1000) {
                    for (rank, h) in topk.heavy_hitters().into_iter().take(3).enumerate() {
                        ctx.state_put(
                            format!("top{rank}").as_bytes(),
                            format!("{}:{}", String::from_utf8_lossy(&h.item), h.count).as_bytes(),
                        );
                    }
                }
                None
            }),
        )
        .expect("register top-k");

    // Publish a 20k-event Zipf stream.
    let producer = cluster.producer("events").expect("producer");
    let zipf = Zipf::new(1000, 1.2);
    let mut rng = det_rng(7);
    for _ in 0..20_000 {
        let item = zipf.sample(&mut rng);
        producer
            .send(format!("item-{item}").as_bytes())
            .expect("publish");
    }

    let processed = runtime.run_to_quiescence().expect("pump functions");
    println!("function executions: {processed}");

    // Read the alerts the Count-Min function emitted.
    let mut alerts = cluster
        .subscribe("alerts", "reader", SubscriptionMode::Exclusive)
        .expect("subscribe");
    for msg in alerts.drain().expect("drain") {
        println!("alert: {}", String::from_utf8_lossy(&msg.payload));
    }

    // Read the heavy-hitter table from the function's Jiffy state.
    let state = runtime
        .jiffy()
        .open_kv("/pulsar-functions/top-k/state")
        .expect("state");
    println!("\ntop items by Space-Saving estimate:");
    for rank in 0..3 {
        if let Some(v) = state.get(format!("top{rank}").as_bytes()).expect("get") {
            println!("  #{rank}: {}", String::from_utf8_lossy(&v));
        }
    }
}
