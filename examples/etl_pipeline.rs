//! The §3.1 "Data Processing" application: an extract→transform→load
//! pipeline of three black-box serverless functions, composed with the
//! orchestration crate, with records landing in a Jiffy-backed sink.
//!
//! Run with: `cargo run --example etl_pipeline`

use taureau::apps::etl::{run_batched, synthetic_lines, EtlPipeline};
use taureau::prelude::*;

fn main() {
    let clock = VirtualClock::shared();
    let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
    let jiffy = Jiffy::new(JiffyConfig::default(), clock);

    // Deploy: drop records below 10.0, scale survivors by 1.5.
    let pipeline = EtlPipeline::deploy(&platform, &jiffy, 10.0, 1.5);

    // 1000 raw CSV lines, every 10th malformed.
    let lines = synthetic_lines(1000, 10, 42);
    let report = run_batched(&pipeline, &lines, 100).expect("pipeline run");

    println!("input lines : {}", report.input_lines);
    println!("loaded      : {}", report.loaded);
    println!("in sink     : {}", report.extracted);
    println!("invocations : {}", report.invocations);
    println!();
    println!("per-category aggregates (count, sum of enriched values):");
    for cat in ["web", "iot", "mobile", "batch"] {
        if let Some((count, sum)) = pipeline.aggregate(cat) {
            println!("  {cat:<8} {count:>5}  {sum:>12.2}");
        }
    }
    println!();
    println!(
        "etl tenant billed ${:.8} for {} function executions",
        platform.billing().total("etl"),
        platform.billing().invocations("etl"),
    );
}
