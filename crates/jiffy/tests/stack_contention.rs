//! Contention stress tests for the sharded Jiffy stack.
//!
//! These pin down the two properties the striped-lock refactor must not
//! lose: progress (no deadlock between the app-holdings shards, the
//! per-node free-block stripes, and the namespace map) and conservation
//! (every block is either in exactly one node's free stack or held by
//! exactly one owner — never both, never neither, never two owners).

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use taureau_core::bytesize::ByteSize;
use taureau_jiffy::pool::{BlockRef, MemoryPool};
use taureau_jiffy::Jiffy;

/// Per-thread grant log: app name plus the blocks it was handed.
type GrantLog = Arc<Mutex<Vec<(String, Vec<BlockRef>)>>>;

/// 8 threads allocate and free overlapping batches while registering every
/// held block in a shared set: an insert that reports the block as already
/// present means the pool handed the same block to two owners.
#[test]
fn no_block_is_ever_owned_twice() {
    let pool = Arc::new(MemoryPool::new(4, 64, ByteSize::kb(4)));
    let held: Arc<Mutex<HashSet<BlockRef>>> = Arc::new(Mutex::new(HashSet::new()));
    std::thread::scope(|s| {
        for t in 0..8usize {
            let pool = Arc::clone(&pool);
            let held = Arc::clone(&held);
            s.spawn(move || {
                let app = format!("app-{t}");
                // Keep a few live allocations at all times so frees and
                // allocations of different batches interleave.
                let mut live: Vec<Vec<BlockRef>> = Vec::new();
                for i in 0..300u64 {
                    let n = 1 + (i + t as u64) % 7;
                    if let Ok(blocks) = pool.allocate(&app, n) {
                        let mut set = held.lock().unwrap();
                        for b in &blocks {
                            assert!(set.insert(*b), "block {b:?} owned twice");
                        }
                        drop(set);
                        live.push(blocks);
                    }
                    if live.len() > 3 {
                        let batch = live.remove((i % 4) as usize);
                        let mut set = held.lock().unwrap();
                        for b in &batch {
                            assert!(set.remove(b), "freed block {b:?} not registered");
                        }
                        drop(set);
                        pool.free(&app, &batch);
                    }
                }
                for batch in live {
                    let mut set = held.lock().unwrap();
                    for b in &batch {
                        set.remove(b);
                    }
                    drop(set);
                    pool.free(&app, &batch);
                }
            });
        }
    });
    // Everything came back: the free count, the allocation gauge, and every
    // app's holdings all agree that the pool is full again.
    assert!(held.lock().unwrap().is_empty());
    assert_eq!(pool.free_blocks(), 4 * 64);
    assert_eq!(pool.stats().allocated_blocks, 0);
    for t in 0..8 {
        assert_eq!(pool.held_by(&format!("app-{t}")), 0);
    }
}

/// Exhaustion under contention stays all-or-nothing: with capacity for
/// only some of the concurrent requests, winners get complete batches,
/// losers get clean errors, and the final accounting balances.
#[test]
fn contended_exhaustion_is_all_or_nothing() {
    let pool = Arc::new(MemoryPool::new(2, 8, ByteSize::kb(4)));
    let granted: GrantLog = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|s| {
        for t in 0..8usize {
            let pool = Arc::clone(&pool);
            let granted = Arc::clone(&granted);
            s.spawn(move || {
                let app = format!("grab-{t}");
                if let Ok(blocks) = pool.allocate(&app, 5) {
                    assert_eq!(blocks.len(), 5);
                    granted.lock().unwrap().push((app, blocks));
                }
            });
        }
    });
    let granted = Arc::try_unwrap(granted).unwrap().into_inner().unwrap();
    // 16 blocks / 5 per request: at most 3 winners, and what the winners
    // hold plus what is free must equal capacity.
    assert!(granted.len() <= 3);
    let held: u64 = granted.iter().map(|(_, b)| b.len() as u64).sum();
    assert_eq!(pool.free_blocks() + held, 16);
    let all: HashSet<BlockRef> = granted
        .iter()
        .flat_map(|(_, b)| b.iter().copied())
        .collect();
    assert_eq!(all.len() as u64, held, "winners share no blocks");
    for (app, blocks) in &granted {
        pool.free(app, blocks);
    }
    assert_eq!(pool.free_blocks(), 16);
}

/// The full controller stack under mixed load: 8 writer threads each churn
/// a namespace with a KV (create, fill, read back, destroy) while readers
/// hammer the cross-shard iteration paths (stats, listing). The scope
/// joining at all is the no-deadlock assertion; the accounting afterwards
/// is the conservation assertion.
#[test]
fn controller_stack_no_deadlock_and_blocks_conserved() {
    let jiffy = Arc::new(Jiffy::with_defaults());
    let capacity = jiffy.pool_stats().capacity_blocks;
    std::thread::scope(|s| {
        for t in 0..8usize {
            let jiffy = Arc::clone(&jiffy);
            s.spawn(move || {
                for round in 0..20usize {
                    let ns = format!("/stress-{t}");
                    jiffy.create_namespace(ns.as_str()).unwrap();
                    let kv = jiffy
                        .create_kv(format!("{ns}/kv").as_str(), 1 + t % 4)
                        .unwrap();
                    for i in 0..32u64 {
                        let key = (t as u64, round as u64, i);
                        kv.put(format!("{key:?}").as_bytes(), &[0u8; 128]).unwrap();
                    }
                    for i in 0..32u64 {
                        let key = (t as u64, round as u64, i);
                        assert_eq!(
                            kv.get(format!("{key:?}").as_bytes()).unwrap().as_deref(),
                            Some(&[0u8; 128][..])
                        );
                    }
                    jiffy.remove_namespace(ns.as_str()).unwrap();
                }
            });
        }
        // Readers exercise every for_each-style cross-shard path while the
        // writers churn.
        for _ in 0..2 {
            let jiffy = Arc::clone(&jiffy);
            s.spawn(move || {
                for _ in 0..200 {
                    let stats = jiffy.pool_stats();
                    assert!(stats.allocated_blocks <= stats.capacity_blocks);
                    let _ = jiffy.multiplexing_report();
                    let _ = jiffy.list("/");
                    std::thread::yield_now();
                }
            });
        }
    });
    // All namespaces removed: every block is back in the pool.
    let stats = jiffy.pool_stats();
    assert_eq!(stats.allocated_blocks, 0);
    assert_eq!(stats.capacity_blocks, capacity);
    assert!(jiffy.list("/").unwrap().is_empty());
}
