//! Property-based tests for Jiffy's allocator and data-structure
//! invariants: conservation of blocks, KV map semantics under arbitrary
//! operation sequences, and queue FIFO order.

use proptest::collection::vec;
use proptest::prelude::*;

use taureau_core::bytesize::ByteSize;
use taureau_jiffy::pool::MemoryPool;
use taureau_jiffy::Jiffy;

/// An arbitrary KV workload step.
#[derive(Debug, Clone)]
enum KvOp {
    Put(u8, Vec<u8>),
    Remove(u8),
    Get(u8),
}

fn kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        (any::<u8>(), vec(any::<u8>(), 0..64)).prop_map(|(k, v)| KvOp::Put(k, v)),
        any::<u8>().prop_map(KvOp::Remove),
        any::<u8>().prop_map(KvOp::Get),
    ]
}

proptest! {
    /// Blocks are conserved: whatever is allocated and freed, the pool's
    /// free count plus allocated count equals capacity, and no app ends up
    /// with negative holdings.
    #[test]
    fn pool_conserves_blocks(ops in vec((0u8..4, 1u64..6), 1..60)) {
        let pool = MemoryPool::new(3, 20, ByteSize::kb(4));
        let capacity = pool.stats().capacity_blocks;
        let mut held: Vec<Vec<_>> = vec![Vec::new(); 4];
        for (app, n) in ops {
            let name = format!("app{app}");
            if held[app as usize].len() as u64 >= n && app % 2 == 0 {
                // Free n blocks.
                let blocks: Vec<_> = held[app as usize]
                    .drain(..n as usize)
                    .collect();
                pool.free(&name, &blocks);
            } else if let Ok(blocks) = pool.allocate(&name, n) {
                held[app as usize].extend(blocks);
            }
            let stats = pool.stats();
            let held_total: u64 = held.iter().map(|h| h.len() as u64).sum();
            prop_assert_eq!(stats.allocated_blocks, held_total);
            prop_assert_eq!(stats.allocated_blocks + pool.free_blocks(), capacity);
        }
    }

    /// The Jiffy KV behaves exactly like a HashMap for any op sequence,
    /// regardless of how many partition scalings the workload triggers.
    #[test]
    fn kv_matches_model(ops in vec(kv_op(), 1..200)) {
        let j = Jiffy::with_defaults();
        let kv = j.create_kv("/prop/state", 1).unwrap();
        let mut model = std::collections::HashMap::new();
        for op in ops {
            match op {
                KvOp::Put(k, v) => {
                    kv.put(&[k], &v).unwrap();
                    model.insert(vec![k], v);
                }
                KvOp::Remove(k) => {
                    let got = kv.remove(&[k]).unwrap();
                    let expect = model.remove(&vec![k]);
                    prop_assert_eq!(got.map(|b| b.to_vec()), expect);
                }
                KvOp::Get(k) => {
                    let got = kv.get(&[k]).unwrap();
                    let expect = model.get(&vec![k]).cloned();
                    prop_assert_eq!(got.map(|b| b.to_vec()), expect);
                }
            }
        }
        prop_assert_eq!(kv.len().unwrap(), model.len());
    }

    /// Queues deliver exactly the pushed payloads in FIFO order.
    #[test]
    fn queue_is_fifo(payloads in vec(vec(any::<u8>(), 0..128), 0..100)) {
        let j = Jiffy::with_defaults();
        let q = j.create_queue("/prop/q").unwrap();
        for p in &payloads {
            q.push(p).unwrap();
        }
        let mut out = Vec::new();
        while let Some(p) = q.pop().unwrap() {
            out.push(p.to_vec());
        }
        prop_assert_eq!(out, payloads);
    }

    /// Scaling a KV to any sequence of partition counts never loses data.
    #[test]
    fn kv_scaling_preserves_contents(
        keys in vec(any::<u16>(), 1..100),
        targets in vec(1usize..12, 1..6),
    ) {
        let j = Jiffy::with_defaults();
        let kv = j.create_kv("/prop/scale", 2).unwrap();
        for &k in &keys {
            kv.put(&k.to_le_bytes(), b"payload").unwrap();
        }
        for t in targets {
            kv.scale_to(t).unwrap();
            for &k in &keys {
                let got = kv.get(&k.to_le_bytes()).unwrap();
                prop_assert_eq!(got.as_deref(), Some(&b"payload"[..]));
            }
        }
    }

    /// Files concatenate appends byte-for-byte.
    #[test]
    fn file_appends_concatenate(chunks in vec(vec(any::<u8>(), 0..512), 0..30)) {
        let j = Jiffy::with_defaults();
        let f = j.create_file("/prop/file").unwrap();
        let mut expect = Vec::new();
        for c in &chunks {
            f.append(c).unwrap();
            expect.extend_from_slice(c);
        }
        prop_assert_eq!(f.contents().unwrap(), expect);
    }
}
