//! The Jiffy controller — the system facade (Figure 2's control plane).
//!
//! [`Jiffy`] owns the namespace tree, the shared block pool, the lease
//! manager and the notification bus, and hands out typed handles
//! ([`KvHandle`], [`QueueHandle`], [`FileHandle`]) that serverless
//! functions use to read and write ephemeral state. Every access renews the
//! covering lease (state stays alive while in use); [`Jiffy::reap_expired`]
//! reclaims lapsed namespaces and returns their blocks to the pool.
//!
//! Concurrency: controller state is sharded by application (the first path
//! segment). Each application's namespace sub-tree and lease live together
//! in one [`ShardedMap`] stripe, so two applications' data paths never
//! contend; the block pool is internally sharded
//! (see [`MemoryPool`]) and the notification bus sits behind its own small
//! lock. Lock order is always app shard → pool stripe → bus, so the
//! controller cannot deadlock against itself.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use taureau_core::bytesize::ByteSize;
use taureau_core::clock::{SharedClock, WallClock};
use taureau_core::id::NodeId;
use taureau_core::metrics::MetricsRegistry;
use taureau_core::sync::ShardedMap;
use taureau_core::trace::Tracer;

use crate::data::{FileObject, KvObject, ObjectState, QueueObject};
use crate::error::{JiffyError, Result};
use crate::lease::LeaseManager;
use crate::namespace::NamespaceTree;
use crate::notify::{Event, EventKind, NotificationBus, Subscription};
use crate::path::JPath;
use crate::pool::{MemoryPool, PoolStats};

/// Subsystem label stamped on every span this crate records.
const TRACE_SYSTEM: &str = "taureau-jiffy";

/// Configuration for a Jiffy deployment.
#[derive(Debug, Clone)]
pub struct JiffyConfig {
    /// Number of memory nodes in the pool.
    pub memory_nodes: usize,
    /// Blocks per memory node.
    pub blocks_per_node: u64,
    /// Block size (the allocation granule — E14 ablates this).
    pub block_size: ByteSize,
    /// Lease TTL granted to application namespaces.
    pub default_lease_ttl: Duration,
    /// Optional per-application block quota.
    pub app_quota_blocks: Option<u64>,
}

impl Default for JiffyConfig {
    fn default() -> Self {
        Self {
            memory_nodes: 4,
            blocks_per_node: 1024,
            block_size: ByteSize::kb(64),
            default_lease_ttl: Duration::from_secs(30),
            app_quota_blocks: None,
        }
    }
}

/// What a graceful memory-node decommission moved (returned by
/// [`Jiffy::decommission_memory_node`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Free blocks drained straight off the node (no data to copy).
    pub freed_blocks: u64,
    /// Allocated blocks copied onto surviving nodes.
    pub blocks_moved: u64,
    /// Resident application bytes carried by those copies.
    pub bytes_moved: u64,
    /// Data objects that had at least one block on the node.
    pub objects_touched: u64,
}

/// One application's slice of controller state: its namespace sub-tree
/// (rooted at `/`, containing only this app's paths) and its lease. Lives
/// under the app's shard in [`Inner::apps`].
struct AppState {
    tree: NamespaceTree,
    leases: LeaseManager,
}

impl Default for AppState {
    fn default() -> Self {
        Self {
            tree: NamespaceTree::new(),
            leases: LeaseManager::new(),
        }
    }
}

struct Inner {
    clock: SharedClock,
    cfg: JiffyConfig,
    /// Per-application state, sharded by app name: the data-path lock.
    apps: ShardedMap<String, AppState>,
    /// The block pool is internally sharded; no controller lock guards it.
    pool: MemoryPool,
    /// Notification fan-out, decoupled from the data-path shards.
    bus: Mutex<NotificationBus>,
    metrics: MetricsRegistry,
    tracer: Mutex<Tracer>,
}

/// The Jiffy virtual-memory service for ephemeral serverless state.
///
/// Cheap to clone; all clones share the same deployment.
#[derive(Clone)]
pub struct Jiffy {
    inner: Arc<Inner>,
}

impl Jiffy {
    /// Create a deployment with the given configuration and clock.
    pub fn new(cfg: JiffyConfig, clock: SharedClock) -> Self {
        let mut pool = MemoryPool::new(cfg.memory_nodes, cfg.blocks_per_node, cfg.block_size);
        if let Some(q) = cfg.app_quota_blocks {
            pool = pool.with_quota(q);
        }
        Self {
            inner: Arc::new(Inner {
                clock,
                cfg,
                apps: ShardedMap::new(),
                pool,
                bus: Mutex::new(NotificationBus::new()),
                metrics: MetricsRegistry::new(),
                tracer: Mutex::new(Tracer::disabled()),
            }),
        }
    }

    /// Default configuration on a wall clock.
    pub fn with_defaults() -> Self {
        Self::new(JiffyConfig::default(), WallClock::shared())
    }

    /// This deployment's configuration.
    pub fn config(&self) -> &JiffyConfig {
        &self.inner.cfg
    }

    /// Metrics registry (repartitioned bytes, reclaimed namespaces, …).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Attach a tracer; object creation and data-path operations record
    /// spans on it.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.inner.tracer.lock() = tracer;
    }

    /// The attached tracer (disabled unless [`Jiffy::set_tracer`] was
    /// called).
    pub fn tracer(&self) -> Tracer {
        self.inner.tracer.lock().clone()
    }

    /// Pool statistics snapshot.
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.pool.stats()
    }

    /// Blocks currently held by an application namespace.
    pub fn blocks_held_by(&self, app: &str) -> u64 {
        self.inner.pool.held_by(app)
    }

    /// Peak blocks held by an application, and the sum of all app peaks
    /// (for the E5 multiplexing report).
    pub fn multiplexing_report(&self) -> (u64, u64) {
        (
            self.inner.pool.stats().peak_allocated_blocks,
            self.inner.pool.sum_of_app_peaks(),
        )
    }

    /// Add a memory node (sized per `cfg.blocks_per_node`) to the pool — a
    /// node joining the cluster. It serves allocations immediately.
    pub fn add_memory_node(&self) -> NodeId {
        let id = self.inner.pool.add_node(self.inner.cfg.blocks_per_node);
        self.inner.metrics.counter("memory_nodes_joined").inc();
        id
    }

    /// Gracefully remove a memory node: drain its free blocks, migrate
    /// every application block it still hosts onto the survivors, then
    /// retire it. Applications keep running throughout — only their
    /// objects' backing [`crate::pool::BlockRef`]s change.
    ///
    /// # Errors
    /// [`JiffyError::NodeUnavailable`] if the node is unknown, already
    /// leaving, or the last one; [`JiffyError::PoolExhausted`] if the
    /// survivors cannot absorb its data (the node is left draining — a
    /// subsequent join can complete the evacuation).
    pub fn decommission_memory_node(&self, node: NodeId) -> Result<MigrationReport> {
        let tracer = self.tracer();
        let mut span = tracer.span(TRACE_SYSTEM, "jiffy.decommission");
        span.attr("node", node.raw());
        let freed_blocks = self.inner.pool.begin_decommission(node)?;
        let mut report = MigrationReport {
            freed_blocks,
            blocks_moved: 0,
            bytes_moved: 0,
            objects_touched: 0,
        };
        let mut failure: Option<JiffyError> = None;
        self.inner.apps.for_each_mut(|_, st| {
            if failure.is_some() {
                return;
            }
            let res = st.tree.for_each_object_mut(|obj| {
                let (blocks, bytes) = obj.migrate_off_node(&self.inner.pool, node)?;
                if blocks > 0 {
                    report.blocks_moved += blocks;
                    report.bytes_moved += bytes;
                    report.objects_touched += 1;
                }
                Ok(())
            });
            if let Err(e) = res {
                failure = Some(e);
            }
        });
        if let Some(e) = failure {
            span.attr("outcome", "exhausted");
            return Err(e);
        }
        self.inner.pool.finish_decommission(node);
        self.inner.metrics.counter("memory_nodes_left").inc();
        self.inner
            .metrics
            .counter("blocks_migrated")
            .add(report.blocks_moved);
        self.inner
            .metrics
            .counter("bytes_migrated")
            .add(report.bytes_moved);
        span.attr("blocks_moved", report.blocks_moved);
        span.attr("bytes_moved", report.bytes_moved);
        Ok(report)
    }

    fn app_lease_path(path: &JPath) -> Option<JPath> {
        path.app().map(|app| JPath::from_segments([app]))
    }

    /// Create a namespace (and intermediates). Grants the application lease
    /// if this is the first namespace for the app.
    pub fn create_namespace(&self, path: impl Into<JPath>) -> Result<()> {
        let path = path.into();
        if path.is_root() {
            return Err(JiffyError::AlreadyExists(path));
        }
        let now = self.inner.clock.now();
        let app = path.app().expect("non-root path has an app").to_string();
        self.inner.apps.with(&app, |shard| -> Result<()> {
            let st = shard.entry(app.clone()).or_default();
            st.tree.create(&path)?;
            if let Some(app_path) = Self::app_lease_path(&path) {
                if st.leases.get(&app_path).is_none() {
                    st.leases
                        .grant(app_path, self.inner.cfg.default_lease_ttl, now);
                } else {
                    st.leases.renew(&path, now);
                }
            }
            Ok(())
        })?;
        self.publish(&path, || EventKind::Created);
        Ok(())
    }

    /// Whether a namespace exists.
    pub fn exists(&self, path: impl Into<JPath>) -> bool {
        let path = path.into();
        if path.is_root() {
            return true;
        }
        let app = path.app().expect("non-root path has an app");
        self.inner.apps.with(app, |shard| match shard.get(app) {
            Some(st) => st.tree.exists(&path),
            None => false,
        })
    }

    /// List immediate children of a namespace.
    pub fn list(&self, path: impl Into<JPath>) -> Result<Vec<String>> {
        let path = path.into();
        if path.is_root() {
            let mut apps = self.inner.apps.keys();
            apps.sort();
            return Ok(apps);
        }
        let app = path.app().expect("non-root path has an app");
        self.inner.apps.with(app, |shard| match shard.get(app) {
            Some(st) => st.tree.list(&path),
            None => Err(JiffyError::NotFound(path.clone())),
        })
    }

    /// Remove a namespace sub-tree, returning its blocks to the pool.
    pub fn remove_namespace(&self, path: impl Into<JPath>) -> Result<()> {
        let path = path.into();
        if path.is_root() {
            return Err(JiffyError::NotFound(path));
        }
        let app = path.app().expect("non-root path has an app").to_string();
        self.inner.apps.with(&app, |shard| -> Result<()> {
            let st = shard
                .get_mut(&app)
                .ok_or_else(|| JiffyError::NotFound(path.clone()))?;
            let objs = st.tree.remove(&path)?;
            for obj in objs {
                let blocks = obj.blocks();
                self.inner.pool.free(&app, &blocks);
            }
            if path.depth() == 1 {
                st.leases.release(&path);
                shard.remove(&app);
            }
            Ok(())
        })?;
        self.publish(&path, || EventKind::Removed);
        Ok(())
    }

    /// Renew the lease covering `path` explicitly.
    pub fn renew_lease(&self, path: impl Into<JPath>) -> bool {
        let path = path.into();
        let Some(app) = path.app() else {
            return false;
        };
        let now = self.inner.clock.now();
        self.inner.apps.with(app, |shard| match shard.get_mut(app) {
            Some(st) => st.leases.renew(&path, now),
            None => false,
        })
    }

    /// Reclaim all application namespaces whose leases lapsed. Returns the
    /// reclaimed paths. Call periodically (or after advancing a virtual
    /// clock in tests).
    pub fn reap_expired(&self) -> Vec<JPath> {
        let now = self.inner.clock.now();
        let reclaimed = self.inner.metrics.counter("namespaces_reclaimed");
        let mut expired_all = Vec::new();
        // Sweep shards one at a time; an expired app lease removes the
        // whole app entry (leases are granted at app granularity).
        self.inner.apps.retain(|app, st| {
            let expired = st.leases.reap(now);
            let mut keep = true;
            for path in expired {
                if let Ok(objs) = st.tree.remove(&path) {
                    for obj in objs {
                        let blocks = obj.blocks();
                        self.inner.pool.free(app, &blocks);
                    }
                }
                reclaimed.inc();
                if path.depth() == 1 {
                    keep = false;
                }
                expired_all.push(path);
            }
            keep
        });
        for path in &expired_all {
            self.publish(path, || EventKind::LeaseExpired);
        }
        expired_all
    }

    /// Subscribe to events at or under `prefix`.
    pub fn subscribe(&self, prefix: impl Into<JPath>) -> Subscription {
        self.inner.bus.lock().subscribe(prefix.into())
    }

    // -- object creation ----------------------------------------------------

    fn ensure_namespace(st: &mut AppState, path: &JPath, ttl: Duration, now: Duration) {
        if !st.tree.exists(path) {
            let _ = st.tree.create(path);
            if let Some(app_path) = Self::app_lease_path(path) {
                if st.leases.get(&app_path).is_none() {
                    st.leases.grant(app_path, ttl, now);
                }
            }
        }
    }

    /// Run `f` against the app's state, creating the [`AppState`] on first
    /// use. Only the app's shard is locked.
    fn with_app<T>(&self, app: &str, f: impl FnOnce(&mut AppState) -> T) -> T {
        self.inner
            .apps
            .with(app, |shard| f(shard.entry(app.to_string()).or_default()))
    }

    /// Create a KV object at `path` with `partitions` initial partitions.
    /// The namespace is created if missing.
    pub fn create_kv(&self, path: impl Into<JPath>, partitions: usize) -> Result<KvHandle> {
        let path = path.into();
        let tracer = self.tracer();
        let mut span = tracer.span(TRACE_SYSTEM, "jiffy.create_kv");
        span.attr("path", &path);
        span.attr("partitions", partitions);
        let now = self.inner.clock.now();
        let app = path
            .app()
            .ok_or(JiffyError::NotADirectory(path.clone()))?
            .to_string();
        self.with_app(&app, |st| -> Result<()> {
            Self::ensure_namespace(st, &path, self.inner.cfg.default_lease_ttl, now);
            let node = st.tree.get(&path)?;
            if node.object.is_some() {
                return Err(JiffyError::AlreadyExists(path.clone()));
            }
            let mut alloc_span = tracer.span(TRACE_SYSTEM, "jiffy.block_alloc");
            alloc_span.attr("blocks", partitions);
            let kv = KvObject::create(&self.inner.pool, &app, partitions)?;
            drop(alloc_span);
            st.tree.get_mut(&path)?.object = Some(ObjectState::Kv(kv));
            Ok(())
        })?;
        Ok(KvHandle {
            jiffy: self.clone(),
            path,
        })
    }

    /// Open an existing KV object.
    pub fn open_kv(&self, path: impl Into<JPath>) -> Result<KvHandle> {
        let path = path.into();
        self.open_check(&path, "kv", |obj| matches!(obj, ObjectState::Kv(_)))?;
        Ok(KvHandle {
            jiffy: self.clone(),
            path,
        })
    }

    /// Create a queue object at `path` (namespace created if missing).
    pub fn create_queue(&self, path: impl Into<JPath>) -> Result<QueueHandle> {
        let path = path.into();
        let mut span = self.tracer().span(TRACE_SYSTEM, "jiffy.create_queue");
        span.attr("path", &path);
        let now = self.inner.clock.now();
        let app = path
            .app()
            .ok_or(JiffyError::NotADirectory(path.clone()))?
            .to_string();
        self.with_app(&app, |st| -> Result<()> {
            Self::ensure_namespace(st, &path, self.inner.cfg.default_lease_ttl, now);
            let node = st.tree.get(&path)?;
            if node.object.is_some() {
                return Err(JiffyError::AlreadyExists(path.clone()));
            }
            st.tree.get_mut(&path)?.object = Some(ObjectState::Queue(QueueObject::create(&app)));
            Ok(())
        })?;
        Ok(QueueHandle {
            jiffy: self.clone(),
            path,
        })
    }

    /// Open an existing queue object.
    pub fn open_queue(&self, path: impl Into<JPath>) -> Result<QueueHandle> {
        let path = path.into();
        self.open_check(&path, "queue", |obj| matches!(obj, ObjectState::Queue(_)))?;
        Ok(QueueHandle {
            jiffy: self.clone(),
            path,
        })
    }

    /// Create a file object at `path` (namespace created if missing).
    pub fn create_file(&self, path: impl Into<JPath>) -> Result<FileHandle> {
        let path = path.into();
        let mut span = self.tracer().span(TRACE_SYSTEM, "jiffy.create_file");
        span.attr("path", &path);
        let now = self.inner.clock.now();
        let app = path
            .app()
            .ok_or(JiffyError::NotADirectory(path.clone()))?
            .to_string();
        self.with_app(&app, |st| -> Result<()> {
            Self::ensure_namespace(st, &path, self.inner.cfg.default_lease_ttl, now);
            let node = st.tree.get(&path)?;
            if node.object.is_some() {
                return Err(JiffyError::AlreadyExists(path.clone()));
            }
            st.tree.get_mut(&path)?.object = Some(ObjectState::File(FileObject::create(&app)));
            Ok(())
        })?;
        Ok(FileHandle {
            jiffy: self.clone(),
            path,
        })
    }

    /// Open an existing file object.
    pub fn open_file(&self, path: impl Into<JPath>) -> Result<FileHandle> {
        let path = path.into();
        self.open_check(&path, "file", |obj| matches!(obj, ObjectState::File(_)))?;
        Ok(FileHandle {
            jiffy: self.clone(),
            path,
        })
    }

    // -- object access plumbing ---------------------------------------------

    /// Validate that `path` holds an object of the requested kind.
    fn open_check(
        &self,
        path: &JPath,
        requested: &'static str,
        matches_kind: impl FnOnce(&ObjectState) -> bool,
    ) -> Result<()> {
        let Some(app) = path.app() else {
            return Err(JiffyError::NotFound(path.clone()));
        };
        self.inner.apps.with(app, |shard| {
            let st = shard
                .get(app)
                .ok_or_else(|| JiffyError::NotFound(path.clone()))?;
            match &st.tree.get(path)?.object {
                Some(obj) if matches_kind(obj) => Ok(()),
                Some(other) => Err(JiffyError::WrongKind {
                    path: path.clone(),
                    actual: other.kind(),
                    requested,
                }),
                None => Err(JiffyError::NotFound(path.clone())),
            }
        })
    }

    /// Lock `path`'s app shard, renew its lease, and hand `f` the object
    /// plus the (shared, internally sharded) pool.
    fn with_object<T>(
        &self,
        path: &JPath,
        f: impl FnOnce(&mut ObjectState, &MemoryPool) -> Result<T>,
    ) -> Result<T> {
        let Some(app) = path.app() else {
            return Err(JiffyError::NotFound(path.clone()));
        };
        let now = self.inner.clock.now();
        self.inner.apps.with(app, |shard| {
            let st = shard
                .get_mut(app)
                .ok_or_else(|| JiffyError::NotFound(path.clone()))?;
            st.leases.renew(path, now);
            match &mut st.tree.get_mut(path)?.object {
                Some(obj) => f(obj, &self.inner.pool),
                None => Err(JiffyError::NotFound(path.clone())),
            }
        })
    }

    fn with_kv<T>(
        &self,
        path: &JPath,
        f: impl FnOnce(&mut KvObject, &MemoryPool) -> Result<T>,
    ) -> Result<T> {
        self.with_object(path, |obj, pool| match obj {
            ObjectState::Kv(kv) => f(kv, pool),
            other => Err(JiffyError::WrongKind {
                path: path.clone(),
                actual: other.kind(),
                requested: "kv",
            }),
        })
    }

    fn with_queue<T>(
        &self,
        path: &JPath,
        f: impl FnOnce(&mut QueueObject, &MemoryPool) -> Result<T>,
    ) -> Result<T> {
        self.with_object(path, |obj, pool| match obj {
            ObjectState::Queue(q) => f(q, pool),
            other => Err(JiffyError::WrongKind {
                path: path.clone(),
                actual: other.kind(),
                requested: "queue",
            }),
        })
    }

    fn with_file<T>(
        &self,
        path: &JPath,
        f: impl FnOnce(&mut FileObject, &MemoryPool) -> Result<T>,
    ) -> Result<T> {
        self.with_object(path, |obj, pool| match obj {
            ObjectState::File(fl) => f(fl, pool),
            other => Err(JiffyError::WrongKind {
                path: path.clone(),
                actual: other.kind(),
                requested: "file",
            }),
        })
    }

    /// Publish an event, constructing it lazily: on the data-plane fast
    /// path (no subscribers — the common case for raw KV/queue/file
    /// traffic) no event, key copy, or path clone is ever built.
    fn publish(&self, path: &JPath, kind: impl FnOnce() -> EventKind) {
        let mut bus = self.inner.bus.lock();
        if bus.is_empty() {
            return;
        }
        bus.publish(Event {
            path: path.clone(),
            kind: kind(),
        });
    }
}

/// Handle to a KV object.
#[derive(Clone)]
pub struct KvHandle {
    jiffy: Jiffy,
    path: JPath,
}

impl KvHandle {
    /// The object's namespace path.
    pub fn path(&self) -> &JPath {
        &self.path
    }

    /// Insert or update a key from a borrowed slice (one copy into a
    /// refcounted buffer; see [`put_bytes`](Self::put_bytes) to avoid it).
    /// Auto-scales the object if its partition is full; re-partitioned
    /// bytes are recorded in the `kv_repartitioned_bytes` metric.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.put_bytes(key, Bytes::copy_from_slice(value))
    }

    /// Insert or update a key, taking ownership of an already-refcounted
    /// value — no byte copy anywhere on the path.
    pub fn put_bytes(&self, key: &[u8], value: Bytes) -> Result<()> {
        let mut span = self.jiffy.tracer().span(TRACE_SYSTEM, "jiffy.kv_put");
        span.attr("path", &self.path);
        span.attr("bytes", key.len() + value.len());
        self.jiffy.metrics().counter("kv_puts").inc();
        let moved = self
            .jiffy
            .with_kv(&self.path, |kv, pool| kv.put_bytes(pool, key, value))?;
        if moved > 0 {
            span.attr("repartitioned_bytes", moved);
        }
        if moved > 0 {
            self.jiffy
                .metrics()
                .counter("kv_repartitioned_bytes")
                .add(moved);
        }
        self.jiffy
            .publish(&self.path, || EventKind::KvPut { key: key.to_vec() });
        Ok(())
    }

    /// Read a key. The returned [`Bytes`] is a refcounted view of the
    /// stored value (no copy) with snapshot semantics: it stays valid and
    /// unchanged even if the key is overwritten or removed afterwards.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        let mut span = self.jiffy.tracer().span(TRACE_SYSTEM, "jiffy.kv_get");
        span.attr("path", &self.path);
        self.jiffy.metrics().counter("kv_gets").inc();
        let value = self.jiffy.with_kv(&self.path, |kv, _| Ok(kv.get(key)))?;
        span.attr("hit", value.is_some());
        Ok(value)
    }

    /// Remove a key, returning its value.
    pub fn remove(&self, key: &[u8]) -> Result<Option<Bytes>> {
        self.jiffy.with_kv(&self.path, |kv, _| Ok(kv.remove(key)))
    }

    /// Number of keys.
    pub fn len(&self) -> Result<usize> {
        self.jiffy.with_kv(&self.path, |kv, _| Ok(kv.len()))
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// All keys (unordered).
    pub fn keys(&self) -> Result<Vec<Vec<u8>>> {
        self.jiffy.with_kv(&self.path, |kv, _| Ok(kv.keys()))
    }

    /// Current partition count.
    pub fn partitions(&self) -> Result<usize> {
        self.jiffy.with_kv(&self.path, |kv, _| Ok(kv.partitions()))
    }

    /// Scale to `target` partitions; returns bytes moved (only this
    /// object's data).
    pub fn scale_to(&self, target: usize) -> Result<u64> {
        let moved = self
            .jiffy
            .with_kv(&self.path, |kv, pool| kv.scale_to(pool, target))?;
        self.jiffy
            .metrics()
            .counter("kv_repartitioned_bytes")
            .add(moved);
        Ok(moved)
    }
}

/// Handle to a queue object.
#[derive(Clone)]
pub struct QueueHandle {
    jiffy: Jiffy,
    path: JPath,
}

impl QueueHandle {
    /// The object's namespace path.
    pub fn path(&self) -> &JPath {
        &self.path
    }

    /// Append a payload from a borrowed slice (one copy; see
    /// [`push_bytes`](Self::push_bytes) to avoid it).
    pub fn push(&self, payload: &[u8]) -> Result<()> {
        self.push_bytes(Bytes::copy_from_slice(payload))
    }

    /// Append an already-refcounted payload — no byte copy anywhere on the
    /// path; `pop` hands the same buffer back out.
    pub fn push_bytes(&self, payload: Bytes) -> Result<()> {
        let mut span = self.jiffy.tracer().span(TRACE_SYSTEM, "jiffy.queue_push");
        span.attr("path", &self.path);
        span.attr("bytes", payload.len());
        self.jiffy.metrics().counter("queue_pushes").inc();
        self.jiffy
            .with_queue(&self.path, |q, pool| q.push_bytes(pool, payload))?;
        self.jiffy.publish(&self.path, || EventKind::QueuePush);
        Ok(())
    }

    /// Pop the oldest payload (the stored refcounted buffer — no copy).
    pub fn pop(&self) -> Result<Option<Bytes>> {
        let mut span = self.jiffy.tracer().span(TRACE_SYSTEM, "jiffy.queue_pop");
        span.attr("path", &self.path);
        self.jiffy.metrics().counter("queue_pops").inc();
        let popped = self
            .jiffy
            .with_queue(&self.path, |q, pool| Ok(q.pop(pool)))?;
        span.attr("hit", popped.is_some());
        Ok(popped)
    }

    /// Elements queued.
    pub fn len(&self) -> Result<usize> {
        self.jiffy.with_queue(&self.path, |q, _| Ok(q.len()))
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// Handle to a file object.
#[derive(Clone)]
pub struct FileHandle {
    jiffy: Jiffy,
    path: JPath,
}

impl FileHandle {
    /// The object's namespace path.
    pub fn path(&self) -> &JPath {
        &self.path
    }

    /// Append bytes from a borrowed slice (one copy; see
    /// [`append_bytes`](Self::append_bytes) to avoid it); returns the new
    /// length.
    pub fn append(&self, bytes: &[u8]) -> Result<u64> {
        self.append_bytes(Bytes::copy_from_slice(bytes))
    }

    /// Append an already-refcounted chunk — no byte copy; returns the new
    /// length.
    pub fn append_bytes(&self, bytes: Bytes) -> Result<u64> {
        let mut span = self.jiffy.tracer().span(TRACE_SYSTEM, "jiffy.file_append");
        span.attr("path", &self.path);
        span.attr("bytes", bytes.len());
        self.jiffy.metrics().counter("file_appends").inc();
        let len = self
            .jiffy
            .with_file(&self.path, |f, pool| f.append_bytes(pool, bytes))?;
        self.jiffy
            .publish(&self.path, || EventKind::FileWrite { len });
        Ok(len)
    }

    /// Read a byte range (clamped to the file length). Zero-copy when the
    /// range falls within one appended chunk.
    pub fn read(&self, offset: u64, len: u64) -> Result<Bytes> {
        let mut span = self.jiffy.tracer().span(TRACE_SYSTEM, "jiffy.file_read");
        span.attr("path", &self.path);
        span.attr("offset", offset);
        self.jiffy.metrics().counter("file_reads").inc();
        let data = self
            .jiffy
            .with_file(&self.path, |f, _| Ok(f.read(offset, len)))?;
        span.attr("bytes", data.len());
        Ok(data)
    }

    /// Full contents (zero-copy for files written in a single append).
    pub fn contents(&self) -> Result<Bytes> {
        self.jiffy.with_file(&self.path, |f, _| Ok(f.contents()))
    }

    /// File length.
    pub fn len(&self) -> Result<u64> {
        self.jiffy.with_file(&self.path, |f, _| Ok(f.len()))
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;

    fn deployment() -> (Jiffy, Arc<VirtualClock>) {
        let clock = VirtualClock::shared();
        let cfg = JiffyConfig {
            memory_nodes: 2,
            blocks_per_node: 64,
            block_size: ByteSize::kb(1),
            default_lease_ttl: Duration::from_secs(10),
            app_quota_blocks: None,
        };
        (Jiffy::new(cfg, clock.clone()), clock)
    }

    #[test]
    fn kv_end_to_end() {
        let (j, _) = deployment();
        let kv = j.create_kv("/app/state", 2).unwrap();
        kv.put(b"k", b"v").unwrap();
        assert_eq!(kv.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        assert_eq!(kv.len().unwrap(), 1);
        // A second handle opened by another "function" sees the same data.
        let kv2 = j.open_kv("/app/state").unwrap();
        assert_eq!(kv2.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
    }

    #[test]
    fn kind_mismatch_is_reported() {
        let (j, _) = deployment();
        j.create_kv("/app/state", 1).unwrap();
        assert!(matches!(
            j.open_queue("/app/state"),
            Err(JiffyError::WrongKind { .. })
        ));
    }

    #[test]
    fn queue_between_producer_and_consumer() {
        let (j, _) = deployment();
        let q = j.create_queue("/app/shuffle/part-0").unwrap();
        q.push(b"one").unwrap();
        q.push(b"two").unwrap();
        let consumer = j.open_queue("/app/shuffle/part-0").unwrap();
        assert_eq!(consumer.pop().unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(consumer.pop().unwrap().as_deref(), Some(&b"two"[..]));
        assert_eq!(consumer.pop().unwrap(), None);
    }

    #[test]
    fn notifications_signal_state_readiness() {
        let (j, _) = deployment();
        let sub = j.subscribe("/app");
        let q = j.create_queue("/app/out").unwrap();
        q.push(b"ready").unwrap();
        let events = sub.drain();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::QueuePush)));
    }

    #[test]
    fn lease_expiry_reclaims_blocks() {
        let (j, clock) = deployment();
        let kv = j.create_kv("/app/state", 4).unwrap();
        kv.put(b"k", b"v").unwrap();
        assert_eq!(j.blocks_held_by("app"), 4);
        clock.advance(Duration::from_secs(11));
        let reclaimed = j.reap_expired();
        assert_eq!(reclaimed, vec![JPath::parse("/app")]);
        assert_eq!(j.blocks_held_by("app"), 0);
        assert!(matches!(kv.get(b"k"), Err(JiffyError::NotFound(_))));
    }

    #[test]
    fn access_renews_lease() {
        let (j, clock) = deployment();
        let kv = j.create_kv("/app/state", 1).unwrap();
        for _ in 0..5 {
            clock.advance(Duration::from_secs(8));
            kv.put(b"heartbeat", b"x").unwrap(); // renews
            assert!(j.reap_expired().is_empty());
        }
        clock.advance(Duration::from_secs(11));
        assert_eq!(j.reap_expired().len(), 1);
    }

    #[test]
    fn lease_expiry_notifies_subscribers() {
        let (j, clock) = deployment();
        let sub = j.subscribe("/app");
        j.create_kv("/app/state", 1).unwrap();
        sub.drain();
        clock.advance(Duration::from_secs(20));
        j.reap_expired();
        let events = sub.drain();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::LeaseExpired)));
    }

    #[test]
    fn remove_namespace_returns_blocks() {
        let (j, _) = deployment();
        let f = j.create_file("/app/video/chunk-0").unwrap();
        f.append(&vec![0u8; 4096]).unwrap();
        assert!(j.blocks_held_by("app") >= 4);
        j.remove_namespace("/app/video").unwrap();
        assert_eq!(j.blocks_held_by("app"), 0);
    }

    #[test]
    fn quota_isolates_applications() {
        let clock = VirtualClock::shared();
        let cfg = JiffyConfig {
            memory_nodes: 1,
            blocks_per_node: 32,
            block_size: ByteSize::kb(1),
            default_lease_ttl: Duration::from_secs(60),
            app_quota_blocks: Some(4),
        };
        let j = Jiffy::new(cfg, clock);
        let f = j.create_file("/greedy/blob").unwrap();
        // 4 KiB quota: the 5th block must be denied…
        assert!(matches!(
            f.append(&vec![0u8; 8192]),
            Err(JiffyError::QuotaExceeded { .. })
        ));
        // …while another app can still allocate.
        let g = j.create_file("/polite/blob").unwrap();
        assert!(g.append(&vec![0u8; 2048]).is_ok());
    }

    #[test]
    fn scaling_one_app_touches_only_its_bytes() {
        let (j, _) = deployment();
        let a = j.create_kv("/a/state", 2).unwrap();
        let b = j.create_kv("/b/state", 2).unwrap();
        for i in 0..20u64 {
            a.put(&i.to_le_bytes(), &[1u8; 8]).unwrap();
            b.put(&i.to_le_bytes(), &[2u8; 8]).unwrap();
        }
        let before = j.metrics().counter("kv_repartitioned_bytes").get();
        let moved = a.scale_to(6).unwrap();
        let after = j.metrics().counter("kv_repartitioned_bytes").get();
        assert_eq!(after - before, moved);
        // b's data is untouched and fully readable.
        for i in 0..20u64 {
            assert_eq!(
                b.get(&i.to_le_bytes()).unwrap().as_deref(),
                Some(&[2u8; 8][..])
            );
        }
        // Moved bytes are bounded by app a's own footprint.
        let a_bytes: u64 = 20 * (8 + 8 + 16);
        assert!(moved <= a_bytes, "moved {moved} > a's footprint {a_bytes}");
    }

    #[test]
    fn node_join_then_graceful_leave_preserves_data() {
        let (j, _) = deployment();
        let kv = j.create_kv("/app/state", 4).unwrap();
        let q = j.create_queue("/app/work").unwrap();
        for i in 0..32u64 {
            kv.put(&i.to_le_bytes(), &[7u8; 64]).unwrap();
            q.push(&i.to_le_bytes()).unwrap();
        }
        let before = j.pool_stats();
        let joined = j.add_memory_node();
        assert_eq!(
            j.pool_stats().capacity_blocks,
            before.capacity_blocks + j.config().blocks_per_node
        );

        // Retire node 0 — every block it hosts must land on a survivor.
        let node0 = taureau_core::id::NodeId(0);
        let report = j.decommission_memory_node(node0).unwrap();
        assert!(report.freed_blocks + report.blocks_moved > 0);
        let stats = j.pool_stats();
        assert_eq!(stats.allocated_blocks, before.allocated_blocks);

        // All data survives the migration, readable through old handles.
        for i in 0..32u64 {
            assert_eq!(
                kv.get(&i.to_le_bytes()).unwrap().as_deref(),
                Some(&[7u8; 64][..])
            );
            assert_eq!(q.pop().unwrap().as_deref(), Some(&i.to_le_bytes()[..]));
        }

        // The retired node refuses further decommission; the joined one works.
        assert!(matches!(
            j.decommission_memory_node(node0),
            Err(JiffyError::NodeUnavailable(_))
        ));
        j.decommission_memory_node(joined).unwrap();
    }

    #[test]
    fn concurrent_handles_from_many_threads() {
        let (j, _) = deployment();
        let q = j.create_queue("/app/work").unwrap();
        let mut handles = vec![];
        for t in 0..4 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    q.push(&(t * 1000 + i).to_le_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.len().unwrap(), 200);
    }
}
