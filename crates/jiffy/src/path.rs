//! Hierarchical namespace paths.
//!
//! Jiffy exposes state under filesystem-like paths: `/app/stage/shard-3`.
//! The first component identifies the *application* (the isolation and
//! quota domain); deeper components capture the task/sub-task structure the
//! paper's hierarchical namespaces are designed around.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A normalized, absolute namespace path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JPath {
    segments: Vec<String>,
}

impl JPath {
    /// The root path `/`.
    pub fn root() -> Self {
        Self {
            segments: Vec::new(),
        }
    }

    /// Parse a path like `"/app/stage/task"`. Empty segments are dropped,
    /// so `"/a//b/"` equals `"/a/b"`.
    pub fn parse(s: &str) -> Self {
        Self {
            segments: s
                .split('/')
                .filter(|seg| !seg.is_empty())
                .map(str::to_string)
                .collect(),
        }
    }

    /// Build from segments.
    pub fn from_segments<I, S>(iter: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            segments: iter.into_iter().map(Into::into).collect(),
        }
    }

    /// Path segments.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// Number of segments (0 for root).
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// Whether this is the root path.
    pub fn is_root(&self) -> bool {
        self.segments.is_empty()
    }

    /// The application (first segment), if any. This is the isolation
    /// domain for quotas and scaling.
    pub fn app(&self) -> Option<&str> {
        self.segments.first().map(String::as_str)
    }

    /// Child path with one more segment.
    pub fn child(&self, segment: &str) -> Self {
        let mut segments = self.segments.clone();
        segments.push(segment.to_string());
        Self { segments }
    }

    /// Parent path; `None` for root.
    pub fn parent(&self) -> Option<Self> {
        if self.segments.is_empty() {
            None
        } else {
            Some(Self {
                segments: self.segments[..self.segments.len() - 1].to_vec(),
            })
        }
    }

    /// Whether `self` is `other` or an ancestor of `other`.
    pub fn is_prefix_of(&self, other: &JPath) -> bool {
        other.segments.len() >= self.segments.len()
            && other.segments[..self.segments.len()] == self.segments[..]
    }

    /// Last segment, if any.
    pub fn name(&self) -> Option<&str> {
        self.segments.last().map(String::as_str)
    }
}

impl fmt::Display for JPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segments.is_empty() {
            return write!(f, "/");
        }
        for seg in &self.segments {
            write!(f, "/{seg}")?;
        }
        Ok(())
    }
}

impl From<&str> for JPath {
    fn from(s: &str) -> Self {
        JPath::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let p = JPath::parse("/app/stage/task");
        assert_eq!(p.to_string(), "/app/stage/task");
        assert_eq!(p.depth(), 3);
        assert_eq!(p.app(), Some("app"));
        assert_eq!(p.name(), Some("task"));
    }

    #[test]
    fn normalization_drops_empty_segments() {
        assert_eq!(JPath::parse("//a///b/"), JPath::parse("/a/b"));
        assert_eq!(JPath::parse(""), JPath::root());
        assert_eq!(JPath::parse("/").to_string(), "/");
    }

    #[test]
    fn parent_and_child() {
        let p = JPath::parse("/a/b");
        assert_eq!(p.child("c"), JPath::parse("/a/b/c"));
        assert_eq!(p.parent(), Some(JPath::parse("/a")));
        assert_eq!(JPath::root().parent(), None);
    }

    #[test]
    fn prefix_relation() {
        let a = JPath::parse("/app");
        let b = JPath::parse("/app/task");
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
        assert!(JPath::root().is_prefix_of(&b));
        // Sibling with shared name prefix is not a path prefix.
        let c = JPath::parse("/application");
        assert!(!a.is_prefix_of(&c));
    }
}
