//! Per-namespace notifications.
//!
//! The paper: "signaling to applications when relevant state is ready for
//! processing using a per-namespace notification mechanism" (citing SNS and
//! Redis keyspace notifications). A consumer function subscribes to a
//! namespace prefix and receives an [`Event`] for every mutation in that
//! sub-tree — the mechanism that lets a downstream task start the moment
//! its input state lands, instead of polling a persistent store.

use crossbeam_channel::{unbounded, Receiver, Sender};

use crate::path::JPath;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A namespace was created.
    Created,
    /// A namespace (and its sub-tree) was removed.
    Removed,
    /// A key was written in a KV object.
    KvPut {
        /// The key written.
        key: Vec<u8>,
    },
    /// An element was pushed to a queue object.
    QueuePush,
    /// Bytes were appended to a file object.
    FileWrite {
        /// New file length after the write.
        len: u64,
    },
    /// The namespace's lease lapsed and its state was reclaimed.
    LeaseExpired,
}

/// A notification delivered to subscribers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The namespace the mutation happened at.
    pub path: JPath,
    /// What happened.
    pub kind: EventKind,
}

/// A live subscription to a namespace prefix.
#[derive(Debug)]
pub struct Subscription {
    prefix: JPath,
    rx: Receiver<Event>,
}

impl Subscription {
    /// The prefix this subscription covers.
    pub fn prefix(&self) -> &JPath {
        &self.prefix
    }

    /// Block until the next event (or the bus is dropped).
    pub fn recv(&self) -> Option<Event> {
        self.rx.recv().ok()
    }

    /// Block until the next event or `timeout` elapses.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Event> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Option<Event> {
        self.rx.try_recv().ok()
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(e) = self.try_recv() {
            out.push(e);
        }
        out
    }
}

/// Fan-out bus routing events to prefix subscribers.
#[derive(Debug, Default)]
pub struct NotificationBus {
    subscribers: Vec<(JPath, Sender<Event>)>,
}

impl NotificationBus {
    /// Empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribe to all events at or under `prefix`.
    pub fn subscribe(&mut self, prefix: JPath) -> Subscription {
        let (tx, rx) = unbounded();
        self.subscribers.push((prefix.clone(), tx));
        Subscription { prefix, rx }
    }

    /// Publish an event; it is delivered to every subscription whose prefix
    /// covers the event path. Dead subscriptions are pruned lazily.
    pub fn publish(&mut self, event: Event) {
        self.subscribers.retain(|(prefix, tx)| {
            if prefix.is_prefix_of(&event.path) {
                // Drop subscriptions whose receiver has been dropped.
                tx.send(event.clone()).is_ok()
            } else {
                true
            }
        });
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.subscribers.len()
    }

    /// Whether there are no subscriptions.
    pub fn is_empty(&self) -> bool {
        self.subscribers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(path: &str, kind: EventKind) -> Event {
        Event {
            path: JPath::parse(path),
            kind,
        }
    }

    #[test]
    fn exact_prefix_delivery() {
        let mut bus = NotificationBus::new();
        let sub = bus.subscribe(JPath::parse("/app"));
        bus.publish(event("/app/stage", EventKind::QueuePush));
        bus.publish(event("/other", EventKind::QueuePush));
        let got = sub.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].path, JPath::parse("/app/stage"));
    }

    #[test]
    fn root_subscription_sees_everything() {
        let mut bus = NotificationBus::new();
        let sub = bus.subscribe(JPath::root());
        bus.publish(event("/a", EventKind::Created));
        bus.publish(event("/b/c", EventKind::Removed));
        assert_eq!(sub.drain().len(), 2);
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let mut bus = NotificationBus::new();
        let s1 = bus.subscribe(JPath::parse("/app"));
        let s2 = bus.subscribe(JPath::parse("/app"));
        bus.publish(event("/app/x", EventKind::KvPut { key: b"k".to_vec() }));
        assert_eq!(s1.drain().len(), 1);
        assert_eq!(s2.drain().len(), 1);
    }

    #[test]
    fn try_recv_on_empty_is_none() {
        let mut bus = NotificationBus::new();
        let sub = bus.subscribe(JPath::parse("/app"));
        assert_eq!(sub.try_recv(), None);
    }

    #[test]
    fn events_arrive_in_order() {
        let mut bus = NotificationBus::new();
        let sub = bus.subscribe(JPath::parse("/q"));
        for i in 0..10u64 {
            bus.publish(event("/q", EventKind::FileWrite { len: i }));
        }
        let lens: Vec<u64> = sub
            .drain()
            .into_iter()
            .map(|e| match e.kind {
                EventKind::FileWrite { len } => len,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(lens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cross_thread_delivery() {
        let mut bus = NotificationBus::new();
        let sub = bus.subscribe(JPath::parse("/app"));
        let h = std::thread::spawn(move || sub.recv_timeout(std::time::Duration::from_secs(5)));
        bus.publish(event("/app/t", EventKind::Created));
        let got = h.join().unwrap();
        assert!(got.is_some());
    }
}
