//! The hierarchical namespace tree — Jiffy's second core insight.
//!
//! Instead of one global address space (which would force whole-cluster
//! re-partitioning whenever any application scales), state lives in a tree
//! of namespaces: `/app/stage/task`. Each namespace can hold one data
//! object ([`crate::data`]) and any number of child namespaces. Scaling an
//! object re-partitions *only that object*; removing a namespace reclaims
//! exactly its sub-tree's blocks.

use std::collections::BTreeMap;

use crate::data::ObjectState;
use crate::error::{JiffyError, Result};
use crate::path::JPath;

/// One node in the namespace tree.
#[derive(Debug, Default)]
pub struct NsNode {
    /// Child namespaces by name.
    pub children: BTreeMap<String, NsNode>,
    /// The data object stored at this namespace, if any.
    pub object: Option<ObjectState>,
}

impl NsNode {
    /// Iterate over all objects in this sub-tree (depth-first), with their
    /// paths relative to `base`.
    pub fn objects<'a>(&'a self, base: &JPath, out: &mut Vec<(JPath, &'a ObjectState)>) {
        if let Some(obj) = &self.object {
            out.push((base.clone(), obj));
        }
        for (name, child) in &self.children {
            child.objects(&base.child(name), out);
        }
    }

    /// Visit every object in this sub-tree mutably (depth-first), stopping
    /// at the first error.
    pub fn for_each_object_mut(
        &mut self,
        f: &mut dyn FnMut(&mut ObjectState) -> Result<()>,
    ) -> Result<()> {
        if let Some(obj) = &mut self.object {
            f(obj)?;
        }
        for child in self.children.values_mut() {
            child.for_each_object_mut(f)?;
        }
        Ok(())
    }

    /// Drain all objects out of this sub-tree (for block reclamation).
    pub fn drain_objects(&mut self, out: &mut Vec<ObjectState>) {
        if let Some(obj) = self.object.take() {
            out.push(obj);
        }
        for child in self.children.values_mut() {
            child.drain_objects(out);
        }
        self.children.clear();
    }
}

/// The namespace tree rooted at `/`.
#[derive(Debug, Default)]
pub struct NamespaceTree {
    root: NsNode,
}

impl NamespaceTree {
    /// Empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a namespace exists.
    pub fn exists(&self, path: &JPath) -> bool {
        self.get(path).is_ok()
    }

    /// Get a node.
    pub fn get(&self, path: &JPath) -> Result<&NsNode> {
        let mut cur = &self.root;
        for seg in path.segments() {
            cur = cur
                .children
                .get(seg)
                .ok_or_else(|| JiffyError::NotFound(path.clone()))?;
        }
        Ok(cur)
    }

    /// Get a node mutably.
    pub fn get_mut(&mut self, path: &JPath) -> Result<&mut NsNode> {
        let mut cur = &mut self.root;
        for seg in path.segments() {
            cur = cur
                .children
                .get_mut(seg)
                .ok_or_else(|| JiffyError::NotFound(path.clone()))?;
        }
        Ok(cur)
    }

    /// Create a namespace, creating intermediate namespaces as needed
    /// (mkdir -p semantics — what serverless tasks spawning sub-tasks want).
    ///
    /// # Errors
    /// [`JiffyError::AlreadyExists`] if the exact path already exists.
    pub fn create(&mut self, path: &JPath) -> Result<()> {
        if path.is_root() {
            return Err(JiffyError::AlreadyExists(path.clone()));
        }
        let mut cur = &mut self.root;
        let n = path.depth();
        for (i, seg) in path.segments().iter().enumerate() {
            let last = i + 1 == n;
            let existed = cur.children.contains_key(seg);
            if last && existed {
                return Err(JiffyError::AlreadyExists(path.clone()));
            }
            cur = cur.children.entry(seg.clone()).or_default();
        }
        Ok(())
    }

    /// Remove a namespace sub-tree, returning all objects it contained so
    /// the caller can free their blocks.
    pub fn remove(&mut self, path: &JPath) -> Result<Vec<ObjectState>> {
        let name = path
            .name()
            .ok_or_else(|| JiffyError::NotFound(path.clone()))?
            .to_string();
        let parent_path = path.parent().expect("non-root has a parent");
        let parent = self.get_mut(&parent_path)?;
        let mut node = parent
            .children
            .remove(&name)
            .ok_or_else(|| JiffyError::NotFound(path.clone()))?;
        let mut objs = Vec::new();
        node.drain_objects(&mut objs);
        Ok(objs)
    }

    /// All (path, object) pairs in the sub-tree under `path`.
    pub fn objects_under(&self, path: &JPath) -> Result<Vec<(JPath, &ObjectState)>> {
        let node = self.get(path)?;
        let mut out = Vec::new();
        node.objects(path, &mut out);
        Ok(out)
    }

    /// Visit every object in the tree mutably, stopping at the first error.
    pub fn for_each_object_mut(
        &mut self,
        mut f: impl FnMut(&mut ObjectState) -> Result<()>,
    ) -> Result<()> {
        self.root.for_each_object_mut(&mut f)
    }

    /// List immediate children of a namespace.
    pub fn list(&self, path: &JPath) -> Result<Vec<String>> {
        Ok(self.get(path)?.children.keys().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_with_intermediates() {
        let mut t = NamespaceTree::new();
        t.create(&JPath::parse("/a/b/c")).unwrap();
        assert!(t.exists(&JPath::parse("/a")));
        assert!(t.exists(&JPath::parse("/a/b")));
        assert!(t.exists(&JPath::parse("/a/b/c")));
        assert!(!t.exists(&JPath::parse("/a/x")));
    }

    #[test]
    fn duplicate_create_fails() {
        let mut t = NamespaceTree::new();
        t.create(&JPath::parse("/a/b")).unwrap();
        assert!(matches!(
            t.create(&JPath::parse("/a/b")),
            Err(JiffyError::AlreadyExists(_))
        ));
        // But a sibling and a deeper child are fine.
        t.create(&JPath::parse("/a/c")).unwrap();
        t.create(&JPath::parse("/a/b/d")).unwrap();
    }

    #[test]
    fn remove_subtree() {
        let mut t = NamespaceTree::new();
        t.create(&JPath::parse("/a/b/c")).unwrap();
        t.create(&JPath::parse("/a/b/d")).unwrap();
        let objs = t.remove(&JPath::parse("/a/b")).unwrap();
        assert!(objs.is_empty()); // no data objects yet
        assert!(t.exists(&JPath::parse("/a")));
        assert!(!t.exists(&JPath::parse("/a/b")));
        assert!(!t.exists(&JPath::parse("/a/b/c")));
    }

    #[test]
    fn remove_missing_fails() {
        let mut t = NamespaceTree::new();
        assert!(matches!(
            t.remove(&JPath::parse("/ghost")),
            Err(JiffyError::NotFound(_))
        ));
    }

    #[test]
    fn list_children_sorted() {
        let mut t = NamespaceTree::new();
        t.create(&JPath::parse("/app/z")).unwrap();
        t.create(&JPath::parse("/app/a")).unwrap();
        assert_eq!(
            t.list(&JPath::parse("/app")).unwrap(),
            vec!["a".to_string(), "z".to_string()]
        );
    }

    #[test]
    fn root_cannot_be_created_or_removed() {
        let mut t = NamespaceTree::new();
        assert!(t.create(&JPath::root()).is_err());
        assert!(t.remove(&JPath::root()).is_err());
    }
}
