//! Data structures stored in namespaces.
//!
//! Jiffy exposes three ephemeral-state structures, matching the needs of
//! the applications in §5 of the paper:
//!
//! - [`KvObject`]: a hash-partitioned key-value map (graph state, model
//!   parameters). Partitioned *within its own namespace*: each partition is
//!   backed by exactly one block, and scaling from `n` to `m` partitions
//!   re-hashes only this object's entries — the isolation property
//!   experiment E4 measures.
//! - [`QueueObject`]: a FIFO of byte payloads (shuffle data, work items).
//! - [`FileObject`]: an append-only byte stream (logs, serialized
//!   intermediates à la ExCamera chunks).
//!
//! Every structure accounts its bytes against pool blocks, growing and
//! shrinking its block set as it is used, which is what lets the shared
//! pool multiplex memory across applications.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use taureau_core::hash::hash64;
use taureau_core::id::NodeId;

use crate::error::{JiffyError, Result};
use crate::pool::{BlockRef, MemoryPool};

/// Per-entry bookkeeping overhead charged against block capacity, so that
/// accounting is conservative rather than optimistic.
const ENTRY_OVERHEAD: u64 = 16;

/// Seed for the KV partitioning hash (fixed: partitioning must be stable
/// across handles).
const PARTITION_SEED: u64 = 0x4a49_4646_5921; // "JIFFY!"

/// A data object living at a namespace.
#[derive(Debug)]
pub enum ObjectState {
    /// Hash-partitioned key-value map.
    Kv(KvObject),
    /// FIFO queue.
    Queue(QueueObject),
    /// Append-only byte stream.
    File(FileObject),
}

impl ObjectState {
    /// Blocks backing this object (for reclamation).
    pub fn blocks(&self) -> Vec<BlockRef> {
        match self {
            ObjectState::Kv(o) => o.partitions.iter().map(|p| p.block).collect(),
            ObjectState::Queue(o) => o.blocks.clone(),
            ObjectState::File(o) => o.blocks.clone(),
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            ObjectState::Kv(_) => "kv",
            ObjectState::Queue(_) => "queue",
            ObjectState::File(_) => "file",
        }
    }

    /// Move every block this object holds on `node` to an active node
    /// (the node is draining — see [`MemoryPool::begin_decommission`]).
    /// Returns `(blocks_moved, bytes_moved)`. Object contents don't change;
    /// only the backing block references do.
    pub fn migrate_off_node(&mut self, pool: &MemoryPool, node: NodeId) -> Result<(u64, u64)> {
        match self {
            ObjectState::Kv(o) => {
                let mut blocks = 0u64;
                let mut bytes = 0u64;
                for part in o.partitions.iter_mut() {
                    if part.block.node == node {
                        part.block = pool.migrate_block(&o.app, part.block)?;
                        blocks += 1;
                        bytes += part.used;
                    }
                }
                Ok((blocks, bytes))
            }
            ObjectState::Queue(o) => migrate_block_list(pool, &o.app, &mut o.blocks, node, o.used),
            ObjectState::File(o) => migrate_block_list(pool, &o.app, &mut o.blocks, node, o.len),
        }
    }
}

/// Migrate the matching entries of a flat block list, attributing resident
/// bytes evenly across the object's blocks for the transfer report.
fn migrate_block_list(
    pool: &MemoryPool,
    app: &str,
    blocks: &mut [BlockRef],
    node: NodeId,
    resident: u64,
) -> Result<(u64, u64)> {
    let per_block = resident / blocks.len().max(1) as u64;
    let mut moved = 0u64;
    let mut bytes = 0u64;
    for b in blocks.iter_mut() {
        if b.node == node {
            *b = pool.migrate_block(app, *b)?;
            moved += 1;
            bytes += per_block;
        }
    }
    Ok((moved, bytes))
}

fn entry_size(key: &[u8], value: &[u8]) -> u64 {
    key.len() as u64 + value.len() as u64 + ENTRY_OVERHEAD
}

#[derive(Debug)]
struct Partition {
    block: BlockRef,
    /// Values are refcounted: `get` hands out a view of the stored
    /// allocation instead of copying it, and an overwrite swaps the
    /// refcounted pointer — outstanding views keep seeing the value they
    /// read (snapshot semantics).
    map: HashMap<Vec<u8>, Bytes>,
    used: u64,
}

/// Hash-partitioned KV map; each partition is one block.
#[derive(Debug)]
pub struct KvObject {
    partitions: Vec<Partition>,
    app: String,
}

impl KvObject {
    /// Create with `initial_partitions` blocks allocated for `app`.
    pub fn create(pool: &MemoryPool, app: &str, initial_partitions: usize) -> Result<Self> {
        assert!(initial_partitions > 0, "need at least one partition");
        let blocks = pool.allocate(app, initial_partitions as u64)?;
        Ok(Self {
            partitions: blocks
                .into_iter()
                .map(|block| Partition {
                    block,
                    map: HashMap::new(),
                    used: 0,
                })
                .collect(),
            app: app.to_string(),
        })
    }

    /// Number of partitions (= blocks).
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.map.len()).sum()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes used across partitions (including per-entry overhead).
    pub fn used_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.used).sum()
    }

    fn index_of(&self, key: &[u8]) -> usize {
        (hash64(PARTITION_SEED, key) % self.partitions.len() as u64) as usize
    }

    /// Insert or update from a borrowed slice (copies the value once, into
    /// a fresh refcounted buffer). See [`put_bytes`](Self::put_bytes) for
    /// the zero-copy variant.
    pub fn put(&mut self, pool: &MemoryPool, key: &[u8], value: &[u8]) -> Result<u64> {
        self.put_bytes(pool, key, Bytes::copy_from_slice(value))
    }

    /// Insert or update, taking ownership of an already-refcounted value
    /// (no byte copy). If the target partition's block is full, the object
    /// auto-scales by adding one partition (re-partitioning only itself)
    /// and retries; returns the number of bytes moved by any
    /// re-partitioning this call triggered.
    pub fn put_bytes(&mut self, pool: &MemoryPool, key: &[u8], value: Bytes) -> Result<u64> {
        let block_size = pool.block_size().as_u64();
        let size = entry_size(key, &value);
        if size > block_size {
            return Err(JiffyError::ValueTooLarge {
                value_bytes: size,
                block_bytes: block_size,
            });
        }
        let mut moved_total = 0u64;
        loop {
            let idx = self.index_of(key);
            let part = &mut self.partitions[idx];
            let old = part.map.get(key).map(|v| entry_size(key, v)).unwrap_or(0);
            if part.used - old + size <= block_size {
                part.map.insert(key.to_vec(), value);
                part.used = part.used - old + size;
                return Ok(moved_total);
            }
            // Partition full: scale out by one block and re-partition this
            // object only.
            moved_total += self.scale_to(pool, self.partitions.len() + 1)?;
        }
    }

    /// Look up a key. The returned [`Bytes`] is a refcounted view of the
    /// stored value — no copy — and stays valid (snapshot semantics) even
    /// if the key is overwritten or removed afterwards.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.partitions[self.index_of(key)].map.get(key).cloned()
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &[u8]) -> Option<Bytes> {
        let idx = self.index_of(key);
        let part = &mut self.partitions[idx];
        let v = part.map.remove(key)?;
        part.used -= entry_size(key, &v);
        Some(v)
    }

    /// All keys (unordered).
    pub fn keys(&self) -> Vec<Vec<u8>> {
        self.partitions
            .iter()
            .flat_map(|p| p.map.keys().cloned())
            .collect()
    }

    /// Re-partition to exactly `target` partitions (grow or shrink).
    /// Returns the number of bytes that moved between partitions — the
    /// quantity experiment E4 compares against the global-address-space
    /// baseline. Only *this object's* data moves.
    pub fn scale_to(&mut self, pool: &MemoryPool, target: usize) -> Result<u64> {
        assert!(target > 0, "cannot scale to zero partitions");
        let n = self.partitions.len();
        if target == n {
            return Ok(0);
        }
        let block_size = pool.block_size().as_u64();
        // Allocate the new layout first so failure leaves us unchanged.
        let new_blocks = pool.allocate(&self.app, target as u64)?;
        let mut new_parts: Vec<Partition> = new_blocks
            .into_iter()
            .map(|block| Partition {
                block,
                map: HashMap::new(),
                used: 0,
            })
            .collect();
        let mut moved = 0u64;
        let old_parts = std::mem::take(&mut self.partitions);
        let mut old_blocks = Vec::with_capacity(n);
        for (old_idx, part) in old_parts.into_iter().enumerate() {
            old_blocks.push(part.block);
            for (k, v) in part.map {
                let new_idx = (hash64(PARTITION_SEED, &k) % target as u64) as usize;
                if new_idx != old_idx {
                    moved += entry_size(&k, &v);
                }
                let size = entry_size(&k, &v);
                let dst = &mut new_parts[new_idx];
                if dst.used + size > block_size {
                    // Shrinking below the data's footprint: undo is complex,
                    // so we simply refuse; grow instead.
                    // Put everything back by growing again.
                    // (In practice callers shrink only after consuming data.)
                    // Free the new blocks and report exhaustion of space.
                    // Restore: move data back into a fresh layout of n.
                    // To keep the code honest and simple we re-grow to fit.
                    dst.map.insert(k, v);
                    dst.used += size; // over-commit, tracked below
                    continue;
                }
                dst.map.insert(k, v);
                dst.used += size;
            }
        }
        pool.free(&self.app, &old_blocks);
        self.partitions = new_parts;
        // If shrink over-committed any partition, grow back out until all
        // partitions fit.
        while self.partitions.iter().any(|p| p.used > block_size) {
            let next = self.partitions.len() + 1;
            moved += self.scale_to(pool, next)?;
        }
        Ok(moved)
    }
}

/// FIFO queue of byte payloads, backed by blocks proportional to its
/// resident bytes.
#[derive(Debug)]
pub struct QueueObject {
    deque: VecDeque<Bytes>,
    used: u64,
    blocks: Vec<BlockRef>,
    app: String,
    /// Total elements ever pushed (for metrics).
    pushed: u64,
}

impl QueueObject {
    /// Create an empty queue (no blocks until data arrives).
    pub fn create(app: &str) -> Self {
        Self {
            deque: VecDeque::new(),
            used: 0,
            blocks: Vec::new(),
            app: app.to_string(),
            pushed: 0,
        }
    }

    /// Elements currently queued.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// Resident bytes.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Blocks currently held.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total elements ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Append a payload from a borrowed slice (one copy into a refcounted
    /// buffer). See [`push_bytes`](Self::push_bytes) for the zero-copy
    /// variant.
    pub fn push(&mut self, pool: &MemoryPool, payload: &[u8]) -> Result<()> {
        self.push_bytes(pool, Bytes::copy_from_slice(payload))
    }

    /// Append an already-refcounted payload (no byte copy), growing the
    /// block set if needed.
    pub fn push_bytes(&mut self, pool: &MemoryPool, payload: Bytes) -> Result<()> {
        let block_size = pool.block_size().as_u64();
        let size = payload.len() as u64 + ENTRY_OVERHEAD;
        if size > block_size {
            return Err(JiffyError::ValueTooLarge {
                value_bytes: size,
                block_bytes: block_size,
            });
        }
        while self.used + size > self.blocks.len() as u64 * block_size {
            let mut newly = pool.allocate(&self.app, 1)?;
            self.blocks.append(&mut newly);
        }
        self.deque.push_back(payload);
        self.used += size;
        self.pushed += 1;
        Ok(())
    }

    /// Pop the oldest payload (handing back the stored refcounted buffer —
    /// no copy), shrinking the block set when usage allows (with one block
    /// of hysteresis to avoid thrashing).
    pub fn pop(&mut self, pool: &MemoryPool) -> Option<Bytes> {
        let payload = self.deque.pop_front()?;
        let block_size = pool.block_size().as_u64();
        self.used -= payload.len() as u64 + ENTRY_OVERHEAD;
        while self.blocks.len() >= 2
            && self.used + block_size <= (self.blocks.len() as u64 - 1) * block_size
        {
            let freed = self.blocks.pop().expect("len >= 2");
            pool.free(&self.app, &[freed]);
        }
        if self.deque.is_empty() && !self.blocks.is_empty() {
            let rest = std::mem::take(&mut self.blocks);
            pool.free(&self.app, &rest);
        }
        Some(payload)
    }
}

/// Append-only byte stream, stored as a rope of refcounted chunks: each
/// append becomes one chunk, so appending never re-copies earlier data and
/// a read that lands inside one chunk is a zero-copy slice. Reads that span
/// chunk boundaries coalesce into a fresh buffer (the one place this object
/// still copies).
#[derive(Debug)]
pub struct FileObject {
    chunks: Vec<Bytes>,
    len: u64,
    blocks: Vec<BlockRef>,
    app: String,
}

impl FileObject {
    /// Create an empty file.
    pub fn create(app: &str) -> Self {
        Self {
            chunks: Vec::new(),
            len: 0,
            blocks: Vec::new(),
            app: app.to_string(),
        }
    }

    /// File length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Blocks currently held.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Append bytes from a borrowed slice (one copy into a refcounted
    /// chunk). See [`append_bytes`](Self::append_bytes) for the zero-copy
    /// variant.
    pub fn append(&mut self, pool: &MemoryPool, bytes: &[u8]) -> Result<u64> {
        self.append_bytes(pool, Bytes::copy_from_slice(bytes))
    }

    /// Append an already-refcounted chunk (no byte copy), growing the
    /// block set as needed. Returns the new length.
    pub fn append_bytes(&mut self, pool: &MemoryPool, bytes: Bytes) -> Result<u64> {
        let block_size = pool.block_size().as_u64();
        let needed = (self.len + bytes.len() as u64).div_ceil(block_size);
        if needed > self.blocks.len() as u64 {
            let extra = needed - self.blocks.len() as u64;
            let mut newly = pool.allocate(&self.app, extra)?;
            self.blocks.append(&mut newly);
        }
        self.len += bytes.len() as u64;
        if !bytes.is_empty() {
            self.chunks.push(bytes);
        }
        Ok(self.len)
    }

    /// Read `len` bytes starting at `offset` (clamped to the file length).
    /// Zero-copy when the range falls within one appended chunk; otherwise
    /// the spanning range is coalesced into a fresh buffer.
    pub fn read(&self, offset: u64, len: u64) -> Bytes {
        let start = (offset.min(self.len)) as usize;
        let end = ((start as u64 + len).min(self.len)) as usize;
        if start == end {
            return Bytes::new();
        }
        let mut pos = 0usize;
        let mut buf: Vec<u8> = Vec::new();
        for c in &self.chunks {
            let c_start = pos;
            let c_end = pos + c.len();
            pos = c_end;
            if c_end <= start {
                continue;
            }
            if c_start >= end {
                break;
            }
            let s = start.max(c_start) - c_start;
            let e = end.min(c_end) - c_start;
            if c_start <= start && end <= c_end {
                // Entire range inside one chunk: share its storage.
                return c.slice(s..e);
            }
            buf.extend_from_slice(&c[s..e]);
        }
        Bytes::from(buf)
    }

    /// Full contents. Zero-copy for files written in a single append.
    pub fn contents(&self) -> Bytes {
        self.read(0, self.len)
    }
}

// ---------------------------------------------------------------------------
// Handle types re-exported from the controller; defined there because they
// close over the controller's shared state.
pub use crate::controller::{FileHandle, KvHandle, QueueHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::bytesize::ByteSize;

    fn pool() -> MemoryPool {
        MemoryPool::new(2, 64, ByteSize::b(256))
    }

    #[test]
    fn kv_put_get_remove() {
        let p = pool();
        let mut kv = KvObject::create(&p, "app", 2).unwrap();
        assert_eq!(kv.put(&p, b"k1", b"v1").unwrap(), 0);
        kv.put(&p, b"k2", b"v2").unwrap();
        assert_eq!(kv.get(b"k1").as_deref(), Some(&b"v1"[..]));
        assert_eq!(kv.get(b"missing"), None);
        assert_eq!(kv.remove(b"k1").as_deref(), Some(&b"v1"[..]));
        assert_eq!(kv.get(b"k1"), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn kv_update_replaces_and_accounts() {
        let p = pool();
        let mut kv = KvObject::create(&p, "app", 1).unwrap();
        kv.put(&p, b"k", b"short").unwrap();
        let used1 = kv.used_bytes();
        kv.put(&p, b"k", b"a-rather-longer-value").unwrap();
        assert!(kv.used_bytes() > used1);
        kv.put(&p, b"k", b"s").unwrap();
        assert!(kv.used_bytes() < used1);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn kv_auto_scales_when_partition_fills() {
        let p = pool();
        let mut kv = KvObject::create(&p, "app", 1).unwrap();
        // Block is 256 B, entries ~36 B: after ~7 entries the single
        // partition fills and the object must scale itself out.
        for i in 0..40u64 {
            kv.put(&p, &i.to_le_bytes(), &[0u8; 12]).unwrap();
        }
        assert!(kv.partitions() > 1, "object never scaled");
        for i in 0..40u64 {
            assert_eq!(kv.get(&i.to_le_bytes()).as_deref(), Some(&[0u8; 12][..]));
        }
    }

    #[test]
    fn kv_rejects_oversized_values() {
        let p = pool();
        let mut kv = KvObject::create(&p, "app", 1).unwrap();
        let big = vec![0u8; 512];
        assert!(matches!(
            kv.put(&p, b"k", &big),
            Err(JiffyError::ValueTooLarge { .. })
        ));
    }

    #[test]
    fn kv_scale_preserves_data_and_reports_moved_bytes() {
        let p = pool();
        let mut kv = KvObject::create(&p, "app", 2).unwrap();
        for i in 0..10u64 {
            kv.put(&p, &i.to_le_bytes(), b"v").unwrap();
        }
        let moved = kv.scale_to(&p, 4).unwrap();
        assert!(moved > 0, "growing 2->4 should move some entries");
        assert_eq!(kv.partitions(), 4);
        for i in 0..10u64 {
            assert_eq!(kv.get(&i.to_le_bytes()).as_deref(), Some(&b"v"[..]));
        }
        // Shrink back.
        kv.scale_to(&p, 2).unwrap();
        assert_eq!(kv.partitions(), 2);
        assert_eq!(kv.len(), 10);
    }

    #[test]
    fn kv_scale_frees_old_blocks() {
        let p = pool();
        let free0 = p.free_blocks();
        let mut kv = KvObject::create(&p, "app", 2).unwrap();
        kv.scale_to(&p, 6).unwrap();
        assert_eq!(p.free_blocks(), free0 - 6);
        kv.scale_to(&p, 1).unwrap();
        assert_eq!(p.free_blocks(), free0 - 1);
    }

    #[test]
    fn queue_fifo_order_and_block_growth() {
        let p = pool();
        let mut q = QueueObject::create("app");
        assert_eq!(q.block_count(), 0);
        for i in 0..20u64 {
            q.push(&p, &i.to_le_bytes()).unwrap();
        }
        assert!(q.block_count() >= 2, "queue should have grown blocks");
        for i in 0..20u64 {
            assert_eq!(q.pop(&p).as_deref(), Some(&i.to_le_bytes()[..]));
        }
        assert_eq!(q.pop(&p), None);
        assert_eq!(q.block_count(), 0, "drained queue returns all blocks");
    }

    #[test]
    fn queue_shrinks_with_hysteresis() {
        let p = pool();
        let mut q = QueueObject::create("app");
        for i in 0..30u64 {
            q.push(&p, &i.to_le_bytes()).unwrap();
        }
        let peak = q.block_count();
        for _ in 0..20 {
            q.pop(&p).unwrap();
        }
        assert!(q.block_count() < peak, "queue should shrink after pops");
        assert!(q.block_count() >= 1);
    }

    #[test]
    fn queue_rejects_oversized_payloads() {
        let p = pool();
        let mut q = QueueObject::create("app");
        assert!(matches!(
            q.push(&p, &vec![0u8; 300]),
            Err(JiffyError::ValueTooLarge { .. })
        ));
    }

    #[test]
    fn file_append_and_read() {
        let p = pool();
        let mut f = FileObject::create("app");
        assert_eq!(f.append(&p, b"hello ").unwrap(), 6);
        assert_eq!(f.append(&p, b"world").unwrap(), 11);
        assert_eq!(f.read(0, 11), b"hello world");
        assert_eq!(f.read(6, 5), b"world");
        assert_eq!(f.read(6, 100), b"world"); // clamped
        assert_eq!(f.read(100, 5), b""); // past end
    }

    #[test]
    fn file_grows_blocks_with_length() {
        let p = pool();
        let mut f = FileObject::create("app");
        f.append(&p, &vec![1u8; 1000]).unwrap();
        assert_eq!(f.block_count(), 4); // 1000 / 256 -> 4 blocks
        assert_eq!(f.len(), 1000);
    }

    #[test]
    fn pool_exhaustion_propagates() {
        let p = MemoryPool::new(1, 2, ByteSize::b(256));
        let mut f = FileObject::create("app");
        assert!(matches!(
            f.append(&p, &vec![0u8; 1024]),
            Err(JiffyError::PoolExhausted { .. })
        ));
    }

    #[test]
    fn kv_get_is_snapshot_after_overwrite_and_remove() {
        // `get` returns a refcounted view of the stored allocation: an
        // overwrite swaps the map's pointer, so the view keeps reading the
        // value it observed (and costs no copy to hand out).
        let p = pool();
        let mut kv = KvObject::create(&p, "app", 1).unwrap();
        kv.put(&p, b"k", b"first-value").unwrap();
        let snap = kv.get(b"k").unwrap();
        let stored = kv.get(b"k").unwrap();
        assert_eq!(
            snap.as_ref().as_ptr(),
            stored.as_ref().as_ptr(),
            "get copied the value instead of sharing it"
        );
        kv.put(&p, b"k", b"second-value").unwrap();
        assert_eq!(snap, &b"first-value"[..]);
        assert_eq!(kv.get(b"k").unwrap(), &b"second-value"[..]);
        kv.remove(b"k");
        assert_eq!(snap, &b"first-value"[..]);
    }

    #[test]
    fn file_reads_within_a_chunk_share_storage() {
        let p = pool();
        let mut f = FileObject::create("app");
        f.append(&p, b"chunk-one").unwrap();
        f.append(&p, b"chunk-two").unwrap();
        // A read inside one appended chunk is a zero-copy slice.
        let full = f.read(0, 9);
        let part = f.read(6, 3);
        assert_eq!(part, b"one");
        assert_eq!(
            part.as_ref().as_ptr(),
            full.as_ref()[6..].as_ptr(),
            "within-chunk read copied"
        );
        // A spanning read coalesces (copies) but is still correct.
        assert_eq!(f.read(6, 9), b"onechunk-");
        assert_eq!(f.contents(), b"chunk-onechunk-two");
    }

    #[test]
    fn queue_pop_returns_stored_buffer() {
        let p = pool();
        let mut q = QueueObject::create("app");
        let payload = Bytes::from(vec![42u8; 64]);
        let src = payload.as_ref().as_ptr();
        q.push_bytes(&p, payload).unwrap();
        let got = q.pop(&p).unwrap();
        assert_eq!(got.as_ref().as_ptr(), src, "pop copied the payload");
    }

    #[test]
    fn objectstate_reports_blocks() {
        let p = pool();
        let kv = KvObject::create(&p, "app", 3).unwrap();
        let st = ObjectState::Kv(kv);
        assert_eq!(st.blocks().len(), 3);
        assert_eq!(st.kind(), "kv");
    }
}
