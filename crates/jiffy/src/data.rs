//! Data structures stored in namespaces.
//!
//! Jiffy exposes three ephemeral-state structures, matching the needs of
//! the applications in §5 of the paper:
//!
//! - [`KvObject`]: a hash-partitioned key-value map (graph state, model
//!   parameters). Partitioned *within its own namespace*: each partition is
//!   backed by exactly one block, and scaling from `n` to `m` partitions
//!   re-hashes only this object's entries — the isolation property
//!   experiment E4 measures.
//! - [`QueueObject`]: a FIFO of byte payloads (shuffle data, work items).
//! - [`FileObject`]: an append-only byte stream (logs, serialized
//!   intermediates à la ExCamera chunks).
//!
//! Every structure accounts its bytes against pool blocks, growing and
//! shrinking its block set as it is used, which is what lets the shared
//! pool multiplex memory across applications.

use std::collections::{HashMap, VecDeque};

use taureau_core::hash::hash64;

use crate::error::{JiffyError, Result};
use crate::pool::{BlockRef, MemoryPool};

/// Per-entry bookkeeping overhead charged against block capacity, so that
/// accounting is conservative rather than optimistic.
const ENTRY_OVERHEAD: u64 = 16;

/// Seed for the KV partitioning hash (fixed: partitioning must be stable
/// across handles).
const PARTITION_SEED: u64 = 0x4a49_4646_5921; // "JIFFY!"

/// A data object living at a namespace.
#[derive(Debug)]
pub enum ObjectState {
    /// Hash-partitioned key-value map.
    Kv(KvObject),
    /// FIFO queue.
    Queue(QueueObject),
    /// Append-only byte stream.
    File(FileObject),
}

impl ObjectState {
    /// Blocks backing this object (for reclamation).
    pub fn blocks(&self) -> Vec<BlockRef> {
        match self {
            ObjectState::Kv(o) => o.partitions.iter().map(|p| p.block).collect(),
            ObjectState::Queue(o) => o.blocks.clone(),
            ObjectState::File(o) => o.blocks.clone(),
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            ObjectState::Kv(_) => "kv",
            ObjectState::Queue(_) => "queue",
            ObjectState::File(_) => "file",
        }
    }
}

fn entry_size(key: &[u8], value: &[u8]) -> u64 {
    key.len() as u64 + value.len() as u64 + ENTRY_OVERHEAD
}

#[derive(Debug)]
struct Partition {
    block: BlockRef,
    map: HashMap<Vec<u8>, Vec<u8>>,
    used: u64,
}

/// Hash-partitioned KV map; each partition is one block.
#[derive(Debug)]
pub struct KvObject {
    partitions: Vec<Partition>,
    app: String,
}

impl KvObject {
    /// Create with `initial_partitions` blocks allocated for `app`.
    pub fn create(pool: &MemoryPool, app: &str, initial_partitions: usize) -> Result<Self> {
        assert!(initial_partitions > 0, "need at least one partition");
        let blocks = pool.allocate(app, initial_partitions as u64)?;
        Ok(Self {
            partitions: blocks
                .into_iter()
                .map(|block| Partition {
                    block,
                    map: HashMap::new(),
                    used: 0,
                })
                .collect(),
            app: app.to_string(),
        })
    }

    /// Number of partitions (= blocks).
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.map.len()).sum()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes used across partitions (including per-entry overhead).
    pub fn used_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.used).sum()
    }

    fn index_of(&self, key: &[u8]) -> usize {
        (hash64(PARTITION_SEED, key) % self.partitions.len() as u64) as usize
    }

    /// Insert or update. If the target partition's block is full, the
    /// object auto-scales by adding one partition (re-partitioning only
    /// itself) and retries; returns the number of bytes moved by any
    /// re-partitioning this call triggered.
    pub fn put(&mut self, pool: &MemoryPool, key: &[u8], value: &[u8]) -> Result<u64> {
        let block_size = pool.block_size().as_u64();
        let size = entry_size(key, value);
        if size > block_size {
            return Err(JiffyError::ValueTooLarge {
                value_bytes: size,
                block_bytes: block_size,
            });
        }
        let mut moved_total = 0u64;
        loop {
            let idx = self.index_of(key);
            let part = &mut self.partitions[idx];
            let old = part.map.get(key).map(|v| entry_size(key, v)).unwrap_or(0);
            if part.used - old + size <= block_size {
                part.map.insert(key.to_vec(), value.to_vec());
                part.used = part.used - old + size;
                return Ok(moved_total);
            }
            // Partition full: scale out by one block and re-partition this
            // object only.
            moved_total += self.scale_to(pool, self.partitions.len() + 1)?;
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.partitions[self.index_of(key)]
            .map
            .get(key)
            .map(Vec::as_slice)
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let idx = self.index_of(key);
        let part = &mut self.partitions[idx];
        let v = part.map.remove(key)?;
        part.used -= entry_size(key, &v);
        Some(v)
    }

    /// All keys (unordered).
    pub fn keys(&self) -> Vec<Vec<u8>> {
        self.partitions
            .iter()
            .flat_map(|p| p.map.keys().cloned())
            .collect()
    }

    /// Re-partition to exactly `target` partitions (grow or shrink).
    /// Returns the number of bytes that moved between partitions — the
    /// quantity experiment E4 compares against the global-address-space
    /// baseline. Only *this object's* data moves.
    pub fn scale_to(&mut self, pool: &MemoryPool, target: usize) -> Result<u64> {
        assert!(target > 0, "cannot scale to zero partitions");
        let n = self.partitions.len();
        if target == n {
            return Ok(0);
        }
        let block_size = pool.block_size().as_u64();
        // Allocate the new layout first so failure leaves us unchanged.
        let new_blocks = pool.allocate(&self.app, target as u64)?;
        let mut new_parts: Vec<Partition> = new_blocks
            .into_iter()
            .map(|block| Partition {
                block,
                map: HashMap::new(),
                used: 0,
            })
            .collect();
        let mut moved = 0u64;
        let old_parts = std::mem::take(&mut self.partitions);
        let mut old_blocks = Vec::with_capacity(n);
        for (old_idx, part) in old_parts.into_iter().enumerate() {
            old_blocks.push(part.block);
            for (k, v) in part.map {
                let new_idx = (hash64(PARTITION_SEED, &k) % target as u64) as usize;
                if new_idx != old_idx {
                    moved += entry_size(&k, &v);
                }
                let size = entry_size(&k, &v);
                let dst = &mut new_parts[new_idx];
                if dst.used + size > block_size {
                    // Shrinking below the data's footprint: undo is complex,
                    // so we simply refuse; grow instead.
                    // Put everything back by growing again.
                    // (In practice callers shrink only after consuming data.)
                    // Free the new blocks and report exhaustion of space.
                    // Restore: move data back into a fresh layout of n.
                    // To keep the code honest and simple we re-grow to fit.
                    dst.map.insert(k, v);
                    dst.used += size; // over-commit, tracked below
                    continue;
                }
                dst.map.insert(k, v);
                dst.used += size;
            }
        }
        pool.free(&self.app, &old_blocks);
        self.partitions = new_parts;
        // If shrink over-committed any partition, grow back out until all
        // partitions fit.
        while self.partitions.iter().any(|p| p.used > block_size) {
            let next = self.partitions.len() + 1;
            moved += self.scale_to(pool, next)?;
        }
        Ok(moved)
    }
}

/// FIFO queue of byte payloads, backed by blocks proportional to its
/// resident bytes.
#[derive(Debug)]
pub struct QueueObject {
    deque: VecDeque<Vec<u8>>,
    used: u64,
    blocks: Vec<BlockRef>,
    app: String,
    /// Total elements ever pushed (for metrics).
    pushed: u64,
}

impl QueueObject {
    /// Create an empty queue (no blocks until data arrives).
    pub fn create(app: &str) -> Self {
        Self {
            deque: VecDeque::new(),
            used: 0,
            blocks: Vec::new(),
            app: app.to_string(),
            pushed: 0,
        }
    }

    /// Elements currently queued.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// Resident bytes.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Blocks currently held.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total elements ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Append a payload, growing the block set if needed.
    pub fn push(&mut self, pool: &MemoryPool, payload: &[u8]) -> Result<()> {
        let block_size = pool.block_size().as_u64();
        let size = payload.len() as u64 + ENTRY_OVERHEAD;
        if size > block_size {
            return Err(JiffyError::ValueTooLarge {
                value_bytes: size,
                block_bytes: block_size,
            });
        }
        while self.used + size > self.blocks.len() as u64 * block_size {
            let mut newly = pool.allocate(&self.app, 1)?;
            self.blocks.append(&mut newly);
        }
        self.deque.push_back(payload.to_vec());
        self.used += size;
        self.pushed += 1;
        Ok(())
    }

    /// Pop the oldest payload, shrinking the block set when usage allows
    /// (with one block of hysteresis to avoid thrashing).
    pub fn pop(&mut self, pool: &MemoryPool) -> Option<Vec<u8>> {
        let payload = self.deque.pop_front()?;
        let block_size = pool.block_size().as_u64();
        self.used -= payload.len() as u64 + ENTRY_OVERHEAD;
        while self.blocks.len() >= 2
            && self.used + block_size <= (self.blocks.len() as u64 - 1) * block_size
        {
            let freed = self.blocks.pop().expect("len >= 2");
            pool.free(&self.app, &[freed]);
        }
        if self.deque.is_empty() && !self.blocks.is_empty() {
            let rest = std::mem::take(&mut self.blocks);
            pool.free(&self.app, &rest);
        }
        Some(payload)
    }
}

/// Append-only byte stream.
#[derive(Debug)]
pub struct FileObject {
    data: Vec<u8>,
    blocks: Vec<BlockRef>,
    app: String,
}

impl FileObject {
    /// Create an empty file.
    pub fn create(app: &str) -> Self {
        Self {
            data: Vec::new(),
            blocks: Vec::new(),
            app: app.to_string(),
        }
    }

    /// File length in bytes.
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Blocks currently held.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Append bytes, growing the block set as needed. Returns the new
    /// length.
    pub fn append(&mut self, pool: &MemoryPool, bytes: &[u8]) -> Result<u64> {
        let block_size = pool.block_size().as_u64();
        let needed = (self.data.len() as u64 + bytes.len() as u64).div_ceil(block_size);
        if needed > self.blocks.len() as u64 {
            let extra = needed - self.blocks.len() as u64;
            let mut newly = pool.allocate(&self.app, extra)?;
            self.blocks.append(&mut newly);
        }
        self.data.extend_from_slice(bytes);
        Ok(self.data.len() as u64)
    }

    /// Read `len` bytes starting at `offset` (clamped to the file length).
    pub fn read(&self, offset: u64, len: u64) -> &[u8] {
        let start = (offset as usize).min(self.data.len());
        let end = (start + len as usize).min(self.data.len());
        &self.data[start..end]
    }

    /// Full contents.
    pub fn contents(&self) -> &[u8] {
        &self.data
    }
}

// ---------------------------------------------------------------------------
// Handle types re-exported from the controller; defined there because they
// close over the controller's shared state.
pub use crate::controller::{FileHandle, KvHandle, QueueHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::bytesize::ByteSize;

    fn pool() -> MemoryPool {
        MemoryPool::new(2, 64, ByteSize::b(256))
    }

    #[test]
    fn kv_put_get_remove() {
        let p = pool();
        let mut kv = KvObject::create(&p, "app", 2).unwrap();
        assert_eq!(kv.put(&p, b"k1", b"v1").unwrap(), 0);
        kv.put(&p, b"k2", b"v2").unwrap();
        assert_eq!(kv.get(b"k1"), Some(&b"v1"[..]));
        assert_eq!(kv.get(b"missing"), None);
        assert_eq!(kv.remove(b"k1"), Some(b"v1".to_vec()));
        assert_eq!(kv.get(b"k1"), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn kv_update_replaces_and_accounts() {
        let p = pool();
        let mut kv = KvObject::create(&p, "app", 1).unwrap();
        kv.put(&p, b"k", b"short").unwrap();
        let used1 = kv.used_bytes();
        kv.put(&p, b"k", b"a-rather-longer-value").unwrap();
        assert!(kv.used_bytes() > used1);
        kv.put(&p, b"k", b"s").unwrap();
        assert!(kv.used_bytes() < used1);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn kv_auto_scales_when_partition_fills() {
        let p = pool();
        let mut kv = KvObject::create(&p, "app", 1).unwrap();
        // Block is 256 B, entries ~36 B: after ~7 entries the single
        // partition fills and the object must scale itself out.
        for i in 0..40u64 {
            kv.put(&p, &i.to_le_bytes(), &[0u8; 12]).unwrap();
        }
        assert!(kv.partitions() > 1, "object never scaled");
        for i in 0..40u64 {
            assert_eq!(kv.get(&i.to_le_bytes()), Some(&[0u8; 12][..]));
        }
    }

    #[test]
    fn kv_rejects_oversized_values() {
        let p = pool();
        let mut kv = KvObject::create(&p, "app", 1).unwrap();
        let big = vec![0u8; 512];
        assert!(matches!(
            kv.put(&p, b"k", &big),
            Err(JiffyError::ValueTooLarge { .. })
        ));
    }

    #[test]
    fn kv_scale_preserves_data_and_reports_moved_bytes() {
        let p = pool();
        let mut kv = KvObject::create(&p, "app", 2).unwrap();
        for i in 0..10u64 {
            kv.put(&p, &i.to_le_bytes(), b"v").unwrap();
        }
        let moved = kv.scale_to(&p, 4).unwrap();
        assert!(moved > 0, "growing 2->4 should move some entries");
        assert_eq!(kv.partitions(), 4);
        for i in 0..10u64 {
            assert_eq!(kv.get(&i.to_le_bytes()), Some(&b"v"[..]));
        }
        // Shrink back.
        kv.scale_to(&p, 2).unwrap();
        assert_eq!(kv.partitions(), 2);
        assert_eq!(kv.len(), 10);
    }

    #[test]
    fn kv_scale_frees_old_blocks() {
        let p = pool();
        let free0 = p.free_blocks();
        let mut kv = KvObject::create(&p, "app", 2).unwrap();
        kv.scale_to(&p, 6).unwrap();
        assert_eq!(p.free_blocks(), free0 - 6);
        kv.scale_to(&p, 1).unwrap();
        assert_eq!(p.free_blocks(), free0 - 1);
    }

    #[test]
    fn queue_fifo_order_and_block_growth() {
        let p = pool();
        let mut q = QueueObject::create("app");
        assert_eq!(q.block_count(), 0);
        for i in 0..20u64 {
            q.push(&p, &i.to_le_bytes()).unwrap();
        }
        assert!(q.block_count() >= 2, "queue should have grown blocks");
        for i in 0..20u64 {
            assert_eq!(q.pop(&p), Some(i.to_le_bytes().to_vec()));
        }
        assert_eq!(q.pop(&p), None);
        assert_eq!(q.block_count(), 0, "drained queue returns all blocks");
    }

    #[test]
    fn queue_shrinks_with_hysteresis() {
        let p = pool();
        let mut q = QueueObject::create("app");
        for i in 0..30u64 {
            q.push(&p, &i.to_le_bytes()).unwrap();
        }
        let peak = q.block_count();
        for _ in 0..20 {
            q.pop(&p).unwrap();
        }
        assert!(q.block_count() < peak, "queue should shrink after pops");
        assert!(q.block_count() >= 1);
    }

    #[test]
    fn queue_rejects_oversized_payloads() {
        let p = pool();
        let mut q = QueueObject::create("app");
        assert!(matches!(
            q.push(&p, &vec![0u8; 300]),
            Err(JiffyError::ValueTooLarge { .. })
        ));
    }

    #[test]
    fn file_append_and_read() {
        let p = pool();
        let mut f = FileObject::create("app");
        assert_eq!(f.append(&p, b"hello ").unwrap(), 6);
        assert_eq!(f.append(&p, b"world").unwrap(), 11);
        assert_eq!(f.read(0, 11), b"hello world");
        assert_eq!(f.read(6, 5), b"world");
        assert_eq!(f.read(6, 100), b"world"); // clamped
        assert_eq!(f.read(100, 5), b""); // past end
    }

    #[test]
    fn file_grows_blocks_with_length() {
        let p = pool();
        let mut f = FileObject::create("app");
        f.append(&p, &vec![1u8; 1000]).unwrap();
        assert_eq!(f.block_count(), 4); // 1000 / 256 -> 4 blocks
        assert_eq!(f.len(), 1000);
    }

    #[test]
    fn pool_exhaustion_propagates() {
        let p = MemoryPool::new(1, 2, ByteSize::b(256));
        let mut f = FileObject::create("app");
        assert!(matches!(
            f.append(&p, &vec![0u8; 1024]),
            Err(JiffyError::PoolExhausted { .. })
        ));
    }

    #[test]
    fn objectstate_reports_blocks() {
        let p = pool();
        let kv = KvObject::create(&p, "app", 3).unwrap();
        let st = ObjectState::Kv(kv);
        assert_eq!(st.blocks().len(), 3);
        assert_eq!(st.kind(), "kv");
    }
}
