//! # taureau-jiffy
//!
//! An implementation of **Jiffy**, the virtual-memory system for ephemeral
//! serverless state described in §4.4 (Figure 2) of *Le Taureau*.
//!
//! Serverless functions cannot talk to each other directly and cannot keep
//! state past their own lifetime, so multi-function applications must park
//! *ephemeral state* — shuffle partitions, graph supersteps, model
//! gradients — somewhere between tasks. The paper argues persistent BaaS
//! stores are too slow for this, and that existing fast stores either lack
//! elasticity or lack isolation. Jiffy's design answers with three insights,
//! each visible in this crate's structure:
//!
//! 1. **Block-level multiplexing** ([`pool`]): memory is a shared pool of
//!    fixed-size blocks on memory nodes, allocated and reclaimed at block
//!    granularity (akin to OS page allocation), so short-lived working sets
//!    from different applications interleave in time and the pool can run
//!    far below the sum of per-application peaks (experiment E5).
//! 2. **Hierarchical namespaces instead of a global address space**
//!    ([`namespace`], [`data`]): every application (and sub-task) gets its
//!    own namespace sub-tree; data structures are partitioned *within their
//!    own namespace only*, so scaling one tenant re-partitions only that
//!    tenant's data (experiment E4). The [`baseline::GlobalStore`] shows the
//!    alternative: one consistent-hash keyspace where any scaling event
//!    moves other tenants' keys too.
//! 3. **OS-style lifetime management** ([`lease`], [`notify`]): namespaces
//!    carry leases (Gray & Cheriton-style) that decouple state lifetime from
//!    producer lifetime — state lives until consumed or until its lease
//!    lapses — and per-namespace notifications signal consumers when state
//!    is ready, mirroring the paper's leasing + notification mechanisms.
//!
//! The primary entry point is [`Jiffy`]; see `examples/` at the workspace
//! root for end-to-end usage.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod controller;
pub mod data;
pub mod error;
pub mod lease;
pub mod namespace;
pub mod notify;
pub mod path;
pub mod pool;

pub use controller::{Jiffy, JiffyConfig, MigrationReport};
pub use data::{FileHandle, KvHandle, QueueHandle};
pub use error::JiffyError;
pub use notify::{Event, EventKind, Subscription};
pub use path::JPath;
pub use pool::{MemoryPool, PoolStats};
