//! Namespace leases — Jiffy's lifetime-management mechanism.
//!
//! The paper: "namespaces naturally enable lifetime management using a
//! namespace-granularity leasing mechanism [Gray & Cheriton]". A lease binds
//! a TTL to a namespace; any access renews it; when it lapses, the
//! controller reclaims the namespace's blocks. This decouples the lifetime
//! of shared state from the producer function that wrote it — state lives
//! until consumed (consumers keep renewing) or abandoned (lease lapses).

use std::collections::HashMap;
use std::time::Duration;

use crate::path::JPath;

/// A lease record for one namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Time-to-live granted at each renewal.
    pub ttl: Duration,
    /// Clock timestamp of the last renewal.
    pub renewed_at: Duration,
}

impl Lease {
    /// When this lease lapses.
    pub fn expires_at(&self) -> Duration {
        self.renewed_at + self.ttl
    }
}

/// Tracks leases for top-level (application) namespaces.
///
/// Lease state is kept per *application* namespace: reclaiming an app
/// reclaims its whole sub-tree, which matches the paper's model of state
/// belonging to an application's task hierarchy.
#[derive(Debug, Default)]
pub struct LeaseManager {
    leases: HashMap<JPath, Lease>,
}

impl LeaseManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grant (or re-grant) a lease at `now` with the given TTL.
    pub fn grant(&mut self, path: JPath, ttl: Duration, now: Duration) {
        self.leases.insert(
            path,
            Lease {
                ttl,
                renewed_at: now,
            },
        );
    }

    /// Renew the lease covering `path` (i.e. the lease on `path` itself or
    /// its closest leased ancestor). Returns whether a lease was found.
    pub fn renew(&mut self, path: &JPath, now: Duration) -> bool {
        // Exact match first, then the deepest leased ancestor. This sits on
        // every KV/queue/file data-path call, so it must not build candidate
        // paths: a `JPath` clone per ancestor would dominate a warm `get`.
        if let Some(l) = self.leases.get_mut(path) {
            l.renewed_at = now;
            return true;
        }
        let want = path.segments();
        if let Some((_, l)) = self
            .leases
            .iter_mut()
            .filter(|(p, _)| {
                let s = p.segments();
                s.len() < want.len() && s == &want[..s.len()]
            })
            .max_by_key(|(p, _)| p.depth())
        {
            l.renewed_at = now;
            return true;
        }
        false
    }

    /// The lease on exactly `path`, if any.
    pub fn get(&self, path: &JPath) -> Option<Lease> {
        self.leases.get(path).copied()
    }

    /// Drop the lease on `path` (used when a namespace is removed
    /// explicitly).
    pub fn release(&mut self, path: &JPath) {
        self.leases.remove(path);
    }

    /// Remove and return all paths whose leases lapsed at or before `now`.
    pub fn reap(&mut self, now: Duration) -> Vec<JPath> {
        let expired: Vec<JPath> = self
            .leases
            .iter()
            .filter(|(_, l)| l.expires_at() <= now)
            .map(|(p, _)| p.clone())
            .collect();
        for p in &expired {
            self.leases.remove(p);
        }
        expired
    }

    /// Number of live leases.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// Whether no leases are held.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn grant_and_expiry() {
        let mut lm = LeaseManager::new();
        lm.grant(JPath::parse("/app"), secs(10), secs(0));
        assert!(lm.reap(secs(9)).is_empty());
        let dead = lm.reap(secs(10));
        assert_eq!(dead, vec![JPath::parse("/app")]);
        assert!(lm.is_empty());
    }

    #[test]
    fn renewal_extends_life() {
        let mut lm = LeaseManager::new();
        lm.grant(JPath::parse("/app"), secs(10), secs(0));
        assert!(lm.renew(&JPath::parse("/app"), secs(8)));
        assert!(lm.reap(secs(15)).is_empty());
        assert_eq!(lm.reap(secs(18)).len(), 1);
    }

    #[test]
    fn renewing_child_path_renews_ancestor_lease() {
        let mut lm = LeaseManager::new();
        lm.grant(JPath::parse("/app"), secs(10), secs(0));
        // A write deep in the tree keeps the app alive.
        assert!(lm.renew(&JPath::parse("/app/stage/task-4"), secs(9)));
        assert!(lm.reap(secs(12)).is_empty());
    }

    #[test]
    fn renew_without_lease_reports_false() {
        let mut lm = LeaseManager::new();
        assert!(!lm.renew(&JPath::parse("/ghost"), secs(1)));
    }

    #[test]
    fn release_forgets() {
        let mut lm = LeaseManager::new();
        lm.grant(JPath::parse("/app"), secs(1), secs(0));
        lm.release(&JPath::parse("/app"));
        assert!(lm.reap(secs(100)).is_empty());
    }

    #[test]
    fn independent_apps_expire_independently() {
        let mut lm = LeaseManager::new();
        lm.grant(JPath::parse("/a"), secs(5), secs(0));
        lm.grant(JPath::parse("/b"), secs(50), secs(0));
        let dead = lm.reap(secs(10));
        assert_eq!(dead, vec![JPath::parse("/a")]);
        assert_eq!(lm.len(), 1);
        assert!(lm.get(&JPath::parse("/b")).is_some());
    }
}
