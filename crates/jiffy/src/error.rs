//! Jiffy error types.

use taureau_core::id::NodeId;

use crate::path::JPath;

/// Errors surfaced by the Jiffy controller and data structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JiffyError {
    /// The namespace path does not exist.
    NotFound(JPath),
    /// The namespace path already exists.
    AlreadyExists(JPath),
    /// The shared memory pool has no free blocks left.
    PoolExhausted {
        /// Blocks requested.
        requested: u64,
        /// Blocks available when the request failed.
        available: u64,
    },
    /// A per-application allocation quota would be exceeded.
    QuotaExceeded {
        /// The application's top-level namespace.
        app: String,
        /// Blocks the app currently holds.
        held: u64,
        /// The app's quota.
        quota: u64,
    },
    /// The object at this path is a different data-structure kind.
    WrongKind {
        /// Path of the object.
        path: JPath,
        /// Kind that lives there.
        actual: &'static str,
        /// Kind the caller asked for.
        requested: &'static str,
    },
    /// The namespace's lease expired and its state was reclaimed.
    LeaseExpired(JPath),
    /// A value is larger than a single block, which the data structures do
    /// not support (matches the paper's block-granularity model).
    ValueTooLarge {
        /// Size of the offending value in bytes.
        value_bytes: u64,
        /// Block size in bytes.
        block_bytes: u64,
    },
    /// A queue pop or KV get on an empty/missing entry when the caller
    /// required presence.
    Empty(JPath),
    /// Attempted an operation on a path component that is not a directory.
    NotADirectory(JPath),
    /// The memory node is unknown, draining, or retired.
    NodeUnavailable(NodeId),
}

impl std::fmt::Display for JiffyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JiffyError::NotFound(p) => write!(f, "namespace not found: {p}"),
            JiffyError::AlreadyExists(p) => write!(f, "namespace already exists: {p}"),
            JiffyError::PoolExhausted {
                requested,
                available,
            } => write!(
                f,
                "memory pool exhausted: requested {requested} blocks, {available} available"
            ),
            JiffyError::QuotaExceeded { app, held, quota } => {
                write!(
                    f,
                    "quota exceeded for {app}: holds {held} of {quota} blocks"
                )
            }
            JiffyError::WrongKind {
                path,
                actual,
                requested,
            } => write!(f, "object at {path} is a {actual}, not a {requested}"),
            JiffyError::LeaseExpired(p) => write!(f, "lease expired for {p}"),
            JiffyError::ValueTooLarge {
                value_bytes,
                block_bytes,
            } => write!(
                f,
                "value of {value_bytes} B exceeds block size {block_bytes} B"
            ),
            JiffyError::Empty(p) => write!(f, "no data at {p}"),
            JiffyError::NotADirectory(p) => write!(f, "{p} is not a directory"),
            JiffyError::NodeUnavailable(n) => write!(f, "memory node {n} unavailable"),
        }
    }
}

impl std::error::Error for JiffyError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, JiffyError>;
