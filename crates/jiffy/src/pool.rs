//! The shared block pool — Jiffy's first core insight.
//!
//! Memory across a set of memory nodes is carved into fixed-size blocks
//! (akin to OS pages). Applications allocate and free blocks as their
//! ephemeral working sets grow and shrink; because serverless state is
//! short-lived, the pool multiplexes blocks across applications in time and
//! its peak occupancy sits far below the sum of per-application peaks
//! (experiment E5 measures exactly this ratio).
//!
//! Allocation spreads blocks across memory nodes (least-loaded first) so no
//! single node becomes a hotspot; per-application quotas provide the
//! admission-control half of isolation.

use std::collections::HashMap;

use taureau_core::bytesize::ByteSize;
use taureau_core::id::{BlockId, NodeId};

use crate::error::{JiffyError, Result};

/// A reference to an allocated block: which node it lives on and its id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRef {
    /// Owning memory node.
    pub node: NodeId,
    /// Block identity (unique pool-wide).
    pub id: BlockId,
}

#[derive(Debug)]
struct NodeState {
    capacity: u64,
    free: Vec<BlockId>,
}

/// Point-in-time pool statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total blocks across all nodes.
    pub capacity_blocks: u64,
    /// Blocks currently allocated.
    pub allocated_blocks: u64,
    /// High-water mark of allocated blocks over the pool's lifetime.
    pub peak_allocated_blocks: u64,
    /// Block size.
    pub block_size: ByteSize,
}

/// A pool of memory blocks spread over `nodes` memory nodes.
#[derive(Debug)]
pub struct MemoryPool {
    block_size: ByteSize,
    nodes: Vec<NodeState>,
    /// blocks held per application (top-level namespace).
    held: HashMap<String, u64>,
    /// per-application peak holdings, for the E5 multiplexing report.
    app_peaks: HashMap<String, u64>,
    quota: Option<u64>,
    allocated: u64,
    peak_allocated: u64,
}

impl MemoryPool {
    /// Create a pool of `nodes` nodes, each holding `blocks_per_node`
    /// blocks of `block_size` bytes.
    pub fn new(nodes: usize, blocks_per_node: u64, block_size: ByteSize) -> Self {
        assert!(nodes > 0, "need at least one memory node");
        assert!(blocks_per_node > 0, "nodes must hold at least one block");
        assert!(block_size.as_u64() > 0, "block size must be positive");
        let mut next_block = 0u64;
        let nodes = (0..nodes)
            .map(|_| {
                let free: Vec<BlockId> = (0..blocks_per_node)
                    .map(|_| {
                        let id = BlockId(next_block);
                        next_block += 1;
                        id
                    })
                    .collect();
                NodeState {
                    capacity: blocks_per_node,
                    free,
                }
            })
            .collect();
        Self {
            block_size,
            nodes,
            held: HashMap::new(),
            app_peaks: HashMap::new(),
            quota: None,
            allocated: 0,
            peak_allocated: 0,
        }
    }

    /// Impose a per-application block quota.
    pub fn with_quota(mut self, blocks: u64) -> Self {
        self.quota = Some(blocks);
        self
    }

    /// Block size for this pool.
    pub fn block_size(&self) -> ByteSize {
        self.block_size
    }

    /// Blocks currently free pool-wide.
    pub fn free_blocks(&self) -> u64 {
        self.nodes.iter().map(|n| n.free.len() as u64).sum()
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            capacity_blocks: self.nodes.iter().map(|n| n.capacity).sum(),
            allocated_blocks: self.allocated,
            peak_allocated_blocks: self.peak_allocated,
            block_size: self.block_size,
        }
    }

    /// Blocks currently held by `app`.
    pub fn held_by(&self, app: &str) -> u64 {
        self.held.get(app).copied().unwrap_or(0)
    }

    /// Peak blocks ever held by `app`.
    pub fn peak_held_by(&self, app: &str) -> u64 {
        self.app_peaks.get(app).copied().unwrap_or(0)
    }

    /// Sum over applications of their individual peaks — what static
    /// per-application provisioning would have had to reserve.
    pub fn sum_of_app_peaks(&self) -> u64 {
        self.app_peaks.values().sum()
    }

    /// Allocate `n` blocks for `app`, spread across the least-loaded nodes.
    ///
    /// # Errors
    /// [`JiffyError::QuotaExceeded`] if the app's quota would be breached,
    /// [`JiffyError::PoolExhausted`] if fewer than `n` blocks are free.
    /// Either way the allocation is all-or-nothing.
    pub fn allocate(&mut self, app: &str, n: u64) -> Result<Vec<BlockRef>> {
        if n == 0 {
            return Ok(Vec::new());
        }
        let held = self.held_by(app);
        if let Some(q) = self.quota {
            if held + n > q {
                return Err(JiffyError::QuotaExceeded {
                    app: app.to_string(),
                    held,
                    quota: q,
                });
            }
        }
        if self.free_blocks() < n {
            return Err(JiffyError::PoolExhausted {
                requested: n,
                available: self.free_blocks(),
            });
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            // Least-loaded = node with the most free blocks.
            let (idx, node) = self
                .nodes
                .iter_mut()
                .enumerate()
                .max_by_key(|(_, s)| s.free.len())
                .expect("pool has nodes");
            let id = node.free.pop().expect("checked free capacity");
            out.push(BlockRef {
                node: NodeId(idx as u64),
                id,
            });
        }
        self.allocated += n;
        self.peak_allocated = self.peak_allocated.max(self.allocated);
        let entry = self.held.entry(app.to_string()).or_insert(0);
        *entry += n;
        let peak = self.app_peaks.entry(app.to_string()).or_insert(0);
        *peak = (*peak).max(*entry);
        Ok(out)
    }

    /// Return blocks to the pool.
    ///
    /// # Panics
    /// If `app` does not hold that many blocks (an accounting bug, not a
    /// user error).
    pub fn free(&mut self, app: &str, blocks: &[BlockRef]) {
        if blocks.is_empty() {
            return;
        }
        let held = self.held.get_mut(app).unwrap_or_else(|| {
            panic!("app {app} frees blocks it never allocated");
        });
        assert!(
            *held >= blocks.len() as u64,
            "app {app} frees {} blocks but holds {held}",
            blocks.len()
        );
        for b in blocks {
            let node = &mut self.nodes[b.node.raw() as usize];
            debug_assert!(!node.free.contains(&b.id), "double free of {:?}", b.id);
            node.free.push(b.id);
        }
        *held -= blocks.len() as u64;
        self.allocated -= blocks.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> MemoryPool {
        MemoryPool::new(4, 8, ByteSize::kb(64))
    }

    #[test]
    fn allocation_spreads_across_nodes() {
        let mut p = pool();
        let blocks = p.allocate("a", 4).unwrap();
        let nodes: std::collections::HashSet<NodeId> = blocks.iter().map(|b| b.node).collect();
        assert_eq!(nodes.len(), 4, "4 blocks should land on 4 distinct nodes");
    }

    #[test]
    fn exhausts_then_errors() {
        let mut p = pool();
        let all = p.allocate("a", 32).unwrap();
        assert_eq!(all.len(), 32);
        let err = p.allocate("a", 1).unwrap_err();
        assert!(matches!(
            err,
            JiffyError::PoolExhausted { available: 0, .. }
        ));
    }

    #[test]
    fn free_returns_capacity() {
        let mut p = pool();
        let blocks = p.allocate("a", 10).unwrap();
        assert_eq!(p.free_blocks(), 22);
        p.free("a", &blocks);
        assert_eq!(p.free_blocks(), 32);
        assert_eq!(p.held_by("a"), 0);
        // Can re-allocate everything after the free.
        assert_eq!(p.allocate("b", 32).unwrap().len(), 32);
    }

    #[test]
    fn quota_is_enforced_per_app() {
        let mut p = MemoryPool::new(2, 16, ByteSize::kb(4)).with_quota(5);
        assert!(p.allocate("a", 5).is_ok());
        let err = p.allocate("a", 1).unwrap_err();
        assert!(matches!(err, JiffyError::QuotaExceeded { .. }));
        // Another app has its own quota.
        assert!(p.allocate("b", 5).is_ok());
    }

    #[test]
    fn peaks_track_multiplexing() {
        let mut p = pool();
        let a = p.allocate("a", 12).unwrap();
        p.free("a", &a);
        let b = p.allocate("b", 12).unwrap();
        p.free("b", &b);
        // Each app peaked at 12 but they never overlapped, so the pool's
        // own peak is 12 while static provisioning would need 24.
        assert_eq!(p.stats().peak_allocated_blocks, 12);
        assert_eq!(p.sum_of_app_peaks(), 24);
    }

    #[test]
    fn zero_allocation_is_noop() {
        let mut p = pool();
        assert!(p.allocate("a", 0).unwrap().is_empty());
        p.free("a", &[]);
        assert_eq!(p.stats().allocated_blocks, 0);
    }

    #[test]
    fn all_or_nothing_allocation() {
        let mut p = MemoryPool::new(1, 4, ByteSize::kb(4));
        p.allocate("a", 3).unwrap();
        assert!(p.allocate("b", 2).is_err());
        // The failed request must not have consumed the last free block.
        assert_eq!(p.free_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    fn freeing_unheld_blocks_panics() {
        let mut p = pool();
        let fake = BlockRef {
            node: NodeId(0),
            id: BlockId(0),
        };
        p.free("ghost", &[fake]);
    }
}
