//! The shared block pool — Jiffy's first core insight.
//!
//! Memory across a set of memory nodes is carved into fixed-size blocks
//! (akin to OS pages). Applications allocate and free blocks as their
//! ephemeral working sets grow and shrink; because serverless state is
//! short-lived, the pool multiplexes blocks across applications in time and
//! its peak occupancy sits far below the sum of per-application peaks
//! (experiment E5 measures exactly this ratio).
//!
//! Concurrency: the pool is internally sharded, so allocation takes no
//! pool-wide lock. Each memory node keeps its own free-block stack behind
//! its own mutex; a rotating cursor spreads consecutive allocations across
//! nodes (so no node becomes a hotspot) while threads allocating
//! concurrently pop from different nodes without contending. Global
//! occupancy is a set of atomics — exhaustion is decided by a CAS
//! reservation against the free count, keeping allocation all-or-nothing
//! without a global critical section. Per-application holdings (the
//! quota/E5 accounting) live in a [`ShardedMap`] keyed by app name, so
//! different applications never serialize on each other.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use taureau_core::bytesize::ByteSize;
use taureau_core::id::{BlockId, NodeId};
use taureau_core::sync::ShardedMap;

use crate::error::{JiffyError, Result};

/// A reference to an allocated block: which node it lives on and its id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRef {
    /// Owning memory node.
    pub node: NodeId,
    /// Block identity (unique pool-wide).
    pub id: BlockId,
}

/// One memory node's free-block stack (one lock stripe of the pool).
#[derive(Debug)]
struct NodeState {
    free: Vec<BlockId>,
}

/// Per-application holdings, one entry per app under its name's shard.
#[derive(Debug, Default, Clone, Copy)]
struct AppHold {
    held: u64,
    peak: u64,
}

/// Point-in-time pool statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total blocks across all nodes.
    pub capacity_blocks: u64,
    /// Blocks currently allocated.
    pub allocated_blocks: u64,
    /// High-water mark of allocated blocks over the pool's lifetime.
    pub peak_allocated_blocks: u64,
    /// Block size.
    pub block_size: ByteSize,
}

/// A pool of memory blocks spread over `nodes` memory nodes.
///
/// All methods take `&self`; the pool is safe to share across threads.
#[derive(Debug)]
pub struct MemoryPool {
    block_size: ByteSize,
    capacity_blocks: u64,
    nodes: Vec<Mutex<NodeState>>,
    /// Rotating node selector: spreads allocations and decorrelates the
    /// stripes concurrent allocators start from.
    cursor: AtomicUsize,
    /// Blocks available for new reservations. Decremented *before* blocks
    /// are popped, incremented *after* freed blocks are pushed back, so a
    /// successful reservation is always backed by blocks in the stacks.
    free_count: AtomicU64,
    allocated: AtomicU64,
    peak_allocated: AtomicU64,
    apps: ShardedMap<String, AppHold>,
    quota: Option<u64>,
}

impl MemoryPool {
    /// Create a pool of `nodes` nodes, each holding `blocks_per_node`
    /// blocks of `block_size` bytes.
    pub fn new(nodes: usize, blocks_per_node: u64, block_size: ByteSize) -> Self {
        assert!(nodes > 0, "need at least one memory node");
        assert!(blocks_per_node > 0, "nodes must hold at least one block");
        assert!(block_size.as_u64() > 0, "block size must be positive");
        let mut next_block = 0u64;
        let nodes: Vec<Mutex<NodeState>> = (0..nodes)
            .map(|_| {
                let free: Vec<BlockId> = (0..blocks_per_node)
                    .map(|_| {
                        let id = BlockId(next_block);
                        next_block += 1;
                        id
                    })
                    .collect();
                Mutex::new(NodeState { free })
            })
            .collect();
        let capacity = nodes.len() as u64 * blocks_per_node;
        Self {
            block_size,
            capacity_blocks: capacity,
            nodes,
            cursor: AtomicUsize::new(0),
            free_count: AtomicU64::new(capacity),
            allocated: AtomicU64::new(0),
            peak_allocated: AtomicU64::new(0),
            apps: ShardedMap::new(),
            quota: None,
        }
    }

    /// Impose a per-application block quota.
    pub fn with_quota(mut self, blocks: u64) -> Self {
        self.quota = Some(blocks);
        self
    }

    /// Block size for this pool.
    pub fn block_size(&self) -> ByteSize {
        self.block_size
    }

    /// Blocks currently free pool-wide.
    pub fn free_blocks(&self) -> u64 {
        self.free_count.load(Ordering::Relaxed)
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            capacity_blocks: self.capacity_blocks,
            allocated_blocks: self.allocated.load(Ordering::Relaxed),
            peak_allocated_blocks: self.peak_allocated.load(Ordering::Relaxed),
            block_size: self.block_size,
        }
    }

    /// Blocks currently held by `app`.
    pub fn held_by(&self, app: &str) -> u64 {
        self.apps
            .with(app, |shard| shard.get(app).map(|h| h.held))
            .unwrap_or(0)
    }

    /// Peak blocks ever held by `app`.
    pub fn peak_held_by(&self, app: &str) -> u64 {
        self.apps
            .with(app, |shard| shard.get(app).map(|h| h.peak))
            .unwrap_or(0)
    }

    /// Sum over applications of their individual peaks — what static
    /// per-application provisioning would have had to reserve.
    pub fn sum_of_app_peaks(&self) -> u64 {
        let mut sum = 0;
        self.apps.for_each(|_, h| sum += h.peak);
        sum
    }

    /// Allocate `n` blocks for `app`, spread across memory nodes.
    ///
    /// # Errors
    /// [`JiffyError::QuotaExceeded`] if the app's quota would be breached,
    /// [`JiffyError::PoolExhausted`] if fewer than `n` blocks are free.
    /// Either way the allocation is all-or-nothing.
    pub fn allocate(&self, app: &str, n: u64) -> Result<Vec<BlockRef>> {
        if n == 0 {
            return Ok(Vec::new());
        }
        // Quota reservation under the app's own stripe — apps only
        // serialize against themselves.
        self.apps.with(app, |shard| {
            let hold = shard.entry(app.to_string()).or_default();
            if let Some(q) = self.quota {
                if hold.held + n > q {
                    return Err(JiffyError::QuotaExceeded {
                        app: app.to_string(),
                        held: hold.held,
                        quota: q,
                    });
                }
            }
            hold.held += n;
            Ok(())
        })?;
        // Claim n blocks from the global free count. A successful CAS
        // guarantees the node stacks collectively hold our n blocks.
        let mut cur = self.free_count.load(Ordering::Relaxed);
        loop {
            if cur < n {
                self.apps.with(app, |shard| {
                    shard.get_mut(app).expect("reserved above").held -= n;
                });
                return Err(JiffyError::PoolExhausted {
                    requested: n,
                    available: cur,
                });
            }
            match self.free_count.compare_exchange_weak(
                cur,
                cur - n,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        // Pop the claimed blocks round-robin across node stacks. The
        // rotation both spreads one app's blocks over nodes and starts
        // concurrent allocators on different stripes.
        let mut out = Vec::with_capacity(n as usize);
        while out.len() < n as usize {
            let idx = self.cursor.fetch_add(1, Ordering::Relaxed) % self.nodes.len();
            let mut node = self.nodes[idx].lock();
            if let Some(id) = node.free.pop() {
                out.push(BlockRef {
                    node: NodeId(idx as u64),
                    id,
                });
            }
        }
        let now_allocated = self.allocated.fetch_add(n, Ordering::Relaxed) + n;
        self.peak_allocated
            .fetch_max(now_allocated, Ordering::Relaxed);
        self.apps.with(app, |shard| {
            let hold = shard.get_mut(app).expect("reserved above");
            hold.peak = hold.peak.max(hold.held);
        });
        Ok(out)
    }

    /// Return blocks to the pool.
    ///
    /// # Panics
    /// If `app` does not hold that many blocks (an accounting bug, not a
    /// user error).
    pub fn free(&self, app: &str, blocks: &[BlockRef]) {
        if blocks.is_empty() {
            return;
        }
        let n = blocks.len() as u64;
        self.apps.with(app, |shard| {
            let hold = shard
                .get_mut(app)
                .unwrap_or_else(|| panic!("app {app} frees blocks it never allocated"));
            assert!(
                hold.held >= n,
                "app {app} frees {} blocks but holds {}",
                blocks.len(),
                hold.held
            );
            hold.held -= n;
        });
        for b in blocks {
            let mut node = self.nodes[b.node.raw() as usize].lock();
            debug_assert!(!node.free.contains(&b.id), "double free of {:?}", b.id);
            node.free.push(b.id);
        }
        self.allocated.fetch_sub(n, Ordering::Relaxed);
        // Publish the freed blocks last: once the count rises, the blocks
        // are already in the stacks for the next claimant.
        self.free_count.fetch_add(n, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> MemoryPool {
        MemoryPool::new(4, 8, ByteSize::kb(64))
    }

    #[test]
    fn allocation_spreads_across_nodes() {
        let p = pool();
        let blocks = p.allocate("a", 4).unwrap();
        let nodes: std::collections::HashSet<NodeId> = blocks.iter().map(|b| b.node).collect();
        assert_eq!(nodes.len(), 4, "4 blocks should land on 4 distinct nodes");
    }

    #[test]
    fn exhausts_then_errors() {
        let p = pool();
        let all = p.allocate("a", 32).unwrap();
        assert_eq!(all.len(), 32);
        let err = p.allocate("a", 1).unwrap_err();
        assert!(matches!(
            err,
            JiffyError::PoolExhausted { available: 0, .. }
        ));
    }

    #[test]
    fn free_returns_capacity() {
        let p = pool();
        let blocks = p.allocate("a", 10).unwrap();
        assert_eq!(p.free_blocks(), 22);
        p.free("a", &blocks);
        assert_eq!(p.free_blocks(), 32);
        assert_eq!(p.held_by("a"), 0);
        // Can re-allocate everything after the free.
        assert_eq!(p.allocate("b", 32).unwrap().len(), 32);
    }

    #[test]
    fn quota_is_enforced_per_app() {
        let p = MemoryPool::new(2, 16, ByteSize::kb(4)).with_quota(5);
        assert!(p.allocate("a", 5).is_ok());
        let err = p.allocate("a", 1).unwrap_err();
        assert!(matches!(err, JiffyError::QuotaExceeded { .. }));
        // Another app has its own quota.
        assert!(p.allocate("b", 5).is_ok());
    }

    #[test]
    fn peaks_track_multiplexing() {
        let p = pool();
        let a = p.allocate("a", 12).unwrap();
        p.free("a", &a);
        let b = p.allocate("b", 12).unwrap();
        p.free("b", &b);
        // Each app peaked at 12 but they never overlapped, so the pool's
        // own peak is 12 while static provisioning would need 24.
        assert_eq!(p.stats().peak_allocated_blocks, 12);
        assert_eq!(p.sum_of_app_peaks(), 24);
    }

    #[test]
    fn zero_allocation_is_noop() {
        let p = pool();
        assert!(p.allocate("a", 0).unwrap().is_empty());
        p.free("a", &[]);
        assert_eq!(p.stats().allocated_blocks, 0);
    }

    #[test]
    fn all_or_nothing_allocation() {
        let p = MemoryPool::new(1, 4, ByteSize::kb(4));
        p.allocate("a", 3).unwrap();
        assert!(p.allocate("b", 2).is_err());
        // The failed request must not have consumed the last free block.
        assert_eq!(p.free_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    fn freeing_unheld_blocks_panics() {
        let p = pool();
        let fake = BlockRef {
            node: NodeId(0),
            id: BlockId(0),
        };
        p.free("ghost", &[fake]);
    }

    #[test]
    fn quota_failure_leaves_holdings_untouched() {
        let p = MemoryPool::new(2, 16, ByteSize::kb(4)).with_quota(4);
        let held = p.allocate("a", 3).unwrap();
        assert!(p.allocate("a", 2).is_err());
        assert_eq!(p.held_by("a"), 3);
        assert_eq!(p.peak_held_by("a"), 3);
        p.free("a", &held);
        assert_eq!(p.held_by("a"), 0);
    }

    #[test]
    fn concurrent_allocate_free_conserves_blocks() {
        let p = std::sync::Arc::new(MemoryPool::new(4, 64, ByteSize::kb(4)));
        std::thread::scope(|s| {
            for t in 0..8 {
                let p = std::sync::Arc::clone(&p);
                s.spawn(move || {
                    let app = format!("app-{t}");
                    for _ in 0..200 {
                        if let Ok(blocks) = p.allocate(&app, 8) {
                            p.free(&app, &blocks);
                        }
                    }
                });
            }
        });
        assert_eq!(p.free_blocks(), 256);
        assert_eq!(p.stats().allocated_blocks, 0);
    }
}
