//! The shared block pool — Jiffy's first core insight.
//!
//! Memory across a set of memory nodes is carved into fixed-size blocks
//! (akin to OS pages). Applications allocate and free blocks as their
//! ephemeral working sets grow and shrink; because serverless state is
//! short-lived, the pool multiplexes blocks across applications in time and
//! its peak occupancy sits far below the sum of per-application peaks
//! (experiment E5 measures exactly this ratio).
//!
//! Concurrency: the pool is internally sharded, so allocation takes no
//! pool-wide lock. Each memory node keeps its own free-block stack behind
//! its own mutex; a rotating cursor spreads consecutive allocations across
//! nodes (so no node becomes a hotspot) while threads allocating
//! concurrently pop from different nodes without contending. Global
//! occupancy is a set of atomics — exhaustion is decided by a CAS
//! reservation against the free count, keeping allocation all-or-nothing
//! without a global critical section. Per-application holdings (the
//! quota/E5 accounting) live in a [`ShardedMap`] keyed by app name, so
//! different applications never serialize on each other.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::{Mutex, RwLock};
use taureau_core::bytesize::ByteSize;
use taureau_core::id::{BlockId, NodeId};
use taureau_core::sync::ShardedMap;

use crate::error::{JiffyError, Result};

/// A reference to an allocated block: which node it lives on and its id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRef {
    /// Owning memory node.
    pub node: NodeId,
    /// Block identity (unique pool-wide).
    pub id: BlockId,
}

/// Lifecycle of a memory node within the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodePhase {
    /// Serving allocations.
    Active,
    /// Leaving: free blocks removed, allocated blocks being migrated off.
    Draining,
    /// Gone. The slot stays in the vec so node indices remain stable.
    Retired,
}

/// One memory node's free-block stack (one lock stripe of the pool).
#[derive(Debug)]
struct NodeState {
    free: Vec<BlockId>,
    phase: NodePhase,
}

/// Per-application holdings, one entry per app under its name's shard.
#[derive(Debug, Default, Clone, Copy)]
struct AppHold {
    held: u64,
    peak: u64,
}

/// Point-in-time pool statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total blocks across all nodes.
    pub capacity_blocks: u64,
    /// Blocks currently allocated.
    pub allocated_blocks: u64,
    /// High-water mark of allocated blocks over the pool's lifetime.
    pub peak_allocated_blocks: u64,
    /// Block size.
    pub block_size: ByteSize,
}

/// A pool of memory blocks spread over `nodes` memory nodes.
///
/// All methods take `&self`; the pool is safe to share across threads.
#[derive(Debug)]
pub struct MemoryPool {
    block_size: ByteSize,
    capacity_blocks: AtomicU64,
    /// Node stripes. The vec only ever *grows* (retired nodes keep their
    /// slot so `BlockRef::node` indices stay stable); the `RwLock` is held
    /// shared on every data-path access and exclusively only by
    /// [`MemoryPool::add_node`]'s push.
    nodes: RwLock<Vec<Mutex<NodeState>>>,
    /// Next fresh block id (pool-wide unique across node joins).
    next_block: AtomicU64,
    /// Rotating node selector: spreads allocations and decorrelates the
    /// stripes concurrent allocators start from.
    cursor: AtomicUsize,
    /// Blocks available for new reservations. Decremented *before* blocks
    /// are popped, incremented *after* freed blocks are pushed back, so a
    /// successful reservation is always backed by blocks in the stacks.
    free_count: AtomicU64,
    allocated: AtomicU64,
    peak_allocated: AtomicU64,
    apps: ShardedMap<String, AppHold>,
    quota: Option<u64>,
}

impl MemoryPool {
    /// Create a pool of `nodes` nodes, each holding `blocks_per_node`
    /// blocks of `block_size` bytes.
    pub fn new(nodes: usize, blocks_per_node: u64, block_size: ByteSize) -> Self {
        assert!(nodes > 0, "need at least one memory node");
        assert!(blocks_per_node > 0, "nodes must hold at least one block");
        assert!(block_size.as_u64() > 0, "block size must be positive");
        let mut next_block = 0u64;
        let nodes: Vec<Mutex<NodeState>> = (0..nodes)
            .map(|_| {
                let free: Vec<BlockId> = (0..blocks_per_node)
                    .map(|_| {
                        let id = BlockId(next_block);
                        next_block += 1;
                        id
                    })
                    .collect();
                Mutex::new(NodeState {
                    free,
                    phase: NodePhase::Active,
                })
            })
            .collect();
        let capacity = nodes.len() as u64 * blocks_per_node;
        Self {
            block_size,
            capacity_blocks: AtomicU64::new(capacity),
            nodes: RwLock::new(nodes),
            next_block: AtomicU64::new(next_block),
            cursor: AtomicUsize::new(0),
            free_count: AtomicU64::new(capacity),
            allocated: AtomicU64::new(0),
            peak_allocated: AtomicU64::new(0),
            apps: ShardedMap::new(),
            quota: None,
        }
    }

    /// Impose a per-application block quota.
    pub fn with_quota(mut self, blocks: u64) -> Self {
        self.quota = Some(blocks);
        self
    }

    /// Block size for this pool.
    pub fn block_size(&self) -> ByteSize {
        self.block_size
    }

    /// Blocks currently free pool-wide.
    pub fn free_blocks(&self) -> u64 {
        self.free_count.load(Ordering::Relaxed)
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            capacity_blocks: self.capacity_blocks.load(Ordering::Relaxed),
            allocated_blocks: self.allocated.load(Ordering::Relaxed),
            peak_allocated_blocks: self.peak_allocated.load(Ordering::Relaxed),
            block_size: self.block_size,
        }
    }

    /// Node slots in the pool, including drained/retired ones (slot
    /// indices are stable for the pool's lifetime).
    pub fn node_count(&self) -> usize {
        self.nodes.read().len()
    }

    /// Nodes currently serving allocations.
    pub fn active_nodes(&self) -> usize {
        self.nodes
            .read()
            .iter()
            .filter(|n| n.lock().phase == NodePhase::Active)
            .count()
    }

    /// Whether `node` is draining (or already retired).
    pub fn is_draining(&self, node: NodeId) -> bool {
        let nodes = self.nodes.read();
        nodes
            .get(node.raw() as usize)
            .map(|n| n.lock().phase != NodePhase::Active)
            .unwrap_or(true)
    }

    /// Blocks currently held by `app`.
    pub fn held_by(&self, app: &str) -> u64 {
        self.apps
            .with(app, |shard| shard.get(app).map(|h| h.held))
            .unwrap_or(0)
    }

    /// Peak blocks ever held by `app`.
    pub fn peak_held_by(&self, app: &str) -> u64 {
        self.apps
            .with(app, |shard| shard.get(app).map(|h| h.peak))
            .unwrap_or(0)
    }

    /// Sum over applications of their individual peaks — what static
    /// per-application provisioning would have had to reserve.
    pub fn sum_of_app_peaks(&self) -> u64 {
        let mut sum = 0;
        self.apps.for_each(|_, h| sum += h.peak);
        sum
    }

    /// Allocate `n` blocks for `app`, spread across memory nodes.
    ///
    /// # Errors
    /// [`JiffyError::QuotaExceeded`] if the app's quota would be breached,
    /// [`JiffyError::PoolExhausted`] if fewer than `n` blocks are free.
    /// Either way the allocation is all-or-nothing.
    pub fn allocate(&self, app: &str, n: u64) -> Result<Vec<BlockRef>> {
        if n == 0 {
            return Ok(Vec::new());
        }
        // Quota reservation under the app's own stripe — apps only
        // serialize against themselves.
        self.apps.with(app, |shard| {
            let hold = shard.entry(app.to_string()).or_default();
            if let Some(q) = self.quota {
                if hold.held + n > q {
                    return Err(JiffyError::QuotaExceeded {
                        app: app.to_string(),
                        held: hold.held,
                        quota: q,
                    });
                }
            }
            hold.held += n;
            Ok(())
        })?;
        // Claim n blocks from the global free count, then pop them from
        // the node stacks. A decommission racing in between can remove
        // free blocks the reservation was counting on, so the pop phase
        // is bounded: on starvation it rolls the reservation back and
        // retries once against the post-drain state.
        let mut out = Vec::with_capacity(n as usize);
        for attempt in 0..2 {
            let mut cur = self.free_count.load(Ordering::Relaxed);
            loop {
                if cur < n {
                    self.apps.with(app, |shard| {
                        shard.get_mut(app).expect("reserved above").held -= n;
                    });
                    return Err(JiffyError::PoolExhausted {
                        requested: n,
                        available: cur,
                    });
                }
                match self.free_count.compare_exchange_weak(
                    cur,
                    cur - n,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
            // Pop the claimed blocks round-robin across active node
            // stacks. The rotation both spreads one app's blocks over
            // nodes and starts concurrent allocators on different stripes.
            if self.pop_reserved(n as usize, &mut out) {
                break;
            }
            // Starved: a concurrent drain removed blocks we reserved.
            // Undo and retry (or give up on the second starvation). Blocks
            // popped from a node that has since started draining don't go
            // back on its stack — they retire with the node (capacity
            // shrinks by one each, and their unit of the reservation is
            // not restored, since they no longer back any future claim).
            let mut vanished = 0u64;
            {
                let nodes = self.nodes.read();
                for b in out.drain(..) {
                    let mut node = nodes[b.node.raw() as usize].lock();
                    if node.phase == NodePhase::Active {
                        node.free.push(b.id);
                    } else {
                        vanished += 1;
                    }
                }
            }
            self.capacity_blocks.fetch_sub(vanished, Ordering::Relaxed);
            self.free_count.fetch_add(n - vanished, Ordering::Release);
            if attempt == 1 {
                self.apps.with(app, |shard| {
                    shard.get_mut(app).expect("reserved above").held -= n;
                });
                return Err(JiffyError::PoolExhausted {
                    requested: n,
                    available: self.free_count.load(Ordering::Relaxed),
                });
            }
        }
        let now_allocated = self.allocated.fetch_add(n, Ordering::Relaxed) + n;
        self.peak_allocated
            .fetch_max(now_allocated, Ordering::Relaxed);
        self.apps.with(app, |shard| {
            let hold = shard.get_mut(app).expect("reserved above");
            hold.peak = hold.peak.max(hold.held);
        });
        Ok(out)
    }

    /// Pop `want` reserved blocks from active node stacks into `out`.
    /// Returns `false` on starvation (a concurrent drain stole the
    /// reservation's backing blocks).
    fn pop_reserved(&self, want: usize, out: &mut Vec<BlockRef>) -> bool {
        let nodes = self.nodes.read();
        let mut misses = 0usize;
        let limit = nodes.len() * 64 + 256;
        while out.len() < want {
            let idx = self.cursor.fetch_add(1, Ordering::Relaxed) % nodes.len();
            let mut node = nodes[idx].lock();
            if node.phase == NodePhase::Active {
                if let Some(id) = node.free.pop() {
                    out.push(BlockRef {
                        node: NodeId(idx as u64),
                        id,
                    });
                    misses = 0;
                    continue;
                }
            }
            drop(node);
            misses += 1;
            if misses > limit {
                return false;
            }
        }
        true
    }

    /// Return blocks to the pool.
    ///
    /// # Panics
    /// If `app` does not hold that many blocks (an accounting bug, not a
    /// user error).
    pub fn free(&self, app: &str, blocks: &[BlockRef]) {
        if blocks.is_empty() {
            return;
        }
        let n = blocks.len() as u64;
        self.apps.with(app, |shard| {
            let hold = shard
                .get_mut(app)
                .unwrap_or_else(|| panic!("app {app} frees blocks it never allocated"));
            assert!(
                hold.held >= n,
                "app {app} frees {} blocks but holds {}",
                blocks.len(),
                hold.held
            );
            hold.held -= n;
        });
        // Blocks freed onto a draining/retired node retire with it: they
        // don't rejoin any free stack, and capacity shrinks instead of the
        // free count growing.
        let mut returned = 0u64;
        {
            let nodes = self.nodes.read();
            for b in blocks {
                let mut node = nodes[b.node.raw() as usize].lock();
                if node.phase == NodePhase::Active {
                    debug_assert!(!node.free.contains(&b.id), "double free of {:?}", b.id);
                    node.free.push(b.id);
                    returned += 1;
                }
            }
        }
        self.allocated.fetch_sub(n, Ordering::Relaxed);
        self.capacity_blocks
            .fetch_sub(n - returned, Ordering::Relaxed);
        // Publish the freed blocks last: once the count rises, the blocks
        // are already in the stacks for the next claimant.
        self.free_count.fetch_add(returned, Ordering::Release);
    }

    // -- cluster membership -------------------------------------------------

    /// Add a fresh memory node holding `blocks` blocks. Returns its id.
    ///
    /// The new node starts serving allocations immediately; this models a
    /// Jiffy memory node joining the cluster.
    pub fn add_node(&self, blocks: u64) -> NodeId {
        assert!(blocks > 0, "nodes must hold at least one block");
        let id = {
            let mut nodes = self.nodes.write();
            let first = self.next_block.fetch_add(blocks, Ordering::Relaxed);
            let free: Vec<BlockId> = (first..first + blocks).map(BlockId).collect();
            nodes.push(Mutex::new(NodeState {
                free,
                phase: NodePhase::Active,
            }));
            NodeId(nodes.len() as u64 - 1)
        };
        self.capacity_blocks.fetch_add(blocks, Ordering::Relaxed);
        self.free_count.fetch_add(blocks, Ordering::Release);
        id
    }

    /// Start decommissioning a node: its free blocks leave the pool at
    /// once, and no new allocations land on it. Allocated blocks stay
    /// readable and must be moved with [`MemoryPool::migrate_block`]
    /// before [`MemoryPool::finish_decommission`].
    ///
    /// Returns the number of free blocks drained.
    ///
    /// # Errors
    /// [`JiffyError::NodeUnavailable`] if the node is unknown or already
    /// draining, or if it is the last active node.
    pub fn begin_decommission(&self, node: NodeId) -> Result<u64> {
        let drained = {
            let nodes = self.nodes.read();
            let idx = node.raw() as usize;
            let state = nodes.get(idx).ok_or(JiffyError::NodeUnavailable(node))?;
            if nodes
                .iter()
                .filter(|n| n.lock().phase == NodePhase::Active)
                .count()
                <= 1
            {
                return Err(JiffyError::NodeUnavailable(node));
            }
            let mut state = state.lock();
            if state.phase != NodePhase::Active {
                return Err(JiffyError::NodeUnavailable(node));
            }
            state.phase = NodePhase::Draining;
            let k = state.free.len() as u64;
            state.free.clear();
            k
        };
        // Take the drained blocks out of the reservation count. In-flight
        // reservations backed by them will starve, roll back, and retry —
        // this wait absorbs their rollback credit.
        let mut remaining = drained;
        while remaining > 0 {
            let cur = self.free_count.load(Ordering::Relaxed);
            let take = cur.min(remaining);
            if take == 0 {
                std::thread::yield_now();
                continue;
            }
            if self
                .free_count
                .compare_exchange_weak(cur, cur - take, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                remaining -= take;
            }
        }
        self.capacity_blocks.fetch_sub(drained, Ordering::Relaxed);
        Ok(drained)
    }

    /// Move one allocated block off a draining node: allocates a
    /// replacement on an active node (no quota charge — the app's
    /// holdings don't change) and retires the old block. The caller owns
    /// copying the contents and swapping references.
    ///
    /// # Errors
    /// [`JiffyError::NodeUnavailable`] unless `from.node` is draining;
    /// [`JiffyError::PoolExhausted`] if no active node has a free block.
    pub fn migrate_block(&self, app: &str, from: BlockRef) -> Result<BlockRef> {
        {
            let nodes = self.nodes.read();
            let state = nodes
                .get(from.node.raw() as usize)
                .ok_or(JiffyError::NodeUnavailable(from.node))?;
            if state.lock().phase != NodePhase::Draining {
                return Err(JiffyError::NodeUnavailable(from.node));
            }
        }
        let _ = app; // holdings unchanged: one block replaces another
                     // Reserve one replacement block.
        let mut cur = self.free_count.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return Err(JiffyError::PoolExhausted {
                    requested: 1,
                    available: 0,
                });
            }
            match self.free_count.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        let mut out = Vec::with_capacity(1);
        if !self.pop_reserved(1, &mut out) {
            self.free_count.fetch_add(1, Ordering::Release);
            return Err(JiffyError::PoolExhausted {
                requested: 1,
                available: 0,
            });
        }
        // The old block retires with its node; `allocated` is unchanged
        // (one live block replaced another), capacity drops by the
        // retiree.
        self.capacity_blocks.fetch_sub(1, Ordering::Relaxed);
        Ok(out[0])
    }

    /// Finish decommissioning: mark the node retired. All its blocks must
    /// already have been migrated or freed.
    pub fn finish_decommission(&self, node: NodeId) {
        let nodes = self.nodes.read();
        if let Some(state) = nodes.get(node.raw() as usize) {
            let mut state = state.lock();
            if state.phase == NodePhase::Draining {
                state.phase = NodePhase::Retired;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> MemoryPool {
        MemoryPool::new(4, 8, ByteSize::kb(64))
    }

    #[test]
    fn allocation_spreads_across_nodes() {
        let p = pool();
        let blocks = p.allocate("a", 4).unwrap();
        let nodes: std::collections::HashSet<NodeId> = blocks.iter().map(|b| b.node).collect();
        assert_eq!(nodes.len(), 4, "4 blocks should land on 4 distinct nodes");
    }

    #[test]
    fn exhausts_then_errors() {
        let p = pool();
        let all = p.allocate("a", 32).unwrap();
        assert_eq!(all.len(), 32);
        let err = p.allocate("a", 1).unwrap_err();
        assert!(matches!(
            err,
            JiffyError::PoolExhausted { available: 0, .. }
        ));
    }

    #[test]
    fn free_returns_capacity() {
        let p = pool();
        let blocks = p.allocate("a", 10).unwrap();
        assert_eq!(p.free_blocks(), 22);
        p.free("a", &blocks);
        assert_eq!(p.free_blocks(), 32);
        assert_eq!(p.held_by("a"), 0);
        // Can re-allocate everything after the free.
        assert_eq!(p.allocate("b", 32).unwrap().len(), 32);
    }

    #[test]
    fn quota_is_enforced_per_app() {
        let p = MemoryPool::new(2, 16, ByteSize::kb(4)).with_quota(5);
        assert!(p.allocate("a", 5).is_ok());
        let err = p.allocate("a", 1).unwrap_err();
        assert!(matches!(err, JiffyError::QuotaExceeded { .. }));
        // Another app has its own quota.
        assert!(p.allocate("b", 5).is_ok());
    }

    #[test]
    fn peaks_track_multiplexing() {
        let p = pool();
        let a = p.allocate("a", 12).unwrap();
        p.free("a", &a);
        let b = p.allocate("b", 12).unwrap();
        p.free("b", &b);
        // Each app peaked at 12 but they never overlapped, so the pool's
        // own peak is 12 while static provisioning would need 24.
        assert_eq!(p.stats().peak_allocated_blocks, 12);
        assert_eq!(p.sum_of_app_peaks(), 24);
    }

    #[test]
    fn zero_allocation_is_noop() {
        let p = pool();
        assert!(p.allocate("a", 0).unwrap().is_empty());
        p.free("a", &[]);
        assert_eq!(p.stats().allocated_blocks, 0);
    }

    #[test]
    fn all_or_nothing_allocation() {
        let p = MemoryPool::new(1, 4, ByteSize::kb(4));
        p.allocate("a", 3).unwrap();
        assert!(p.allocate("b", 2).is_err());
        // The failed request must not have consumed the last free block.
        assert_eq!(p.free_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    fn freeing_unheld_blocks_panics() {
        let p = pool();
        let fake = BlockRef {
            node: NodeId(0),
            id: BlockId(0),
        };
        p.free("ghost", &[fake]);
    }

    #[test]
    fn quota_failure_leaves_holdings_untouched() {
        let p = MemoryPool::new(2, 16, ByteSize::kb(4)).with_quota(4);
        let held = p.allocate("a", 3).unwrap();
        assert!(p.allocate("a", 2).is_err());
        assert_eq!(p.held_by("a"), 3);
        assert_eq!(p.peak_held_by("a"), 3);
        p.free("a", &held);
        assert_eq!(p.held_by("a"), 0);
    }

    #[test]
    fn add_node_grows_capacity() {
        let p = MemoryPool::new(2, 4, ByteSize::kb(4));
        assert_eq!(p.node_count(), 2);
        let id = p.add_node(4);
        assert_eq!(id, NodeId(2));
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.stats().capacity_blocks, 12);
        // All 12 blocks are allocatable, with unique ids.
        let blocks = p.allocate("a", 12).unwrap();
        let ids: std::collections::HashSet<BlockId> = blocks.iter().map(|b| b.id).collect();
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn decommission_drains_free_blocks_and_migrates_allocated() {
        let p = MemoryPool::new(2, 8, ByteSize::kb(4));
        let blocks = p.allocate("a", 6).unwrap();
        let victim = NodeId(0);
        let on_victim: Vec<BlockRef> = blocks
            .iter()
            .copied()
            .filter(|b| b.node == victim)
            .collect();
        assert!(!on_victim.is_empty(), "round-robin puts blocks on node 0");
        p.begin_decommission(victim).unwrap();
        assert!(p.is_draining(victim));
        // No new allocations land on the draining node.
        for b in p.allocate("a", 2).unwrap() {
            assert_ne!(b.node, victim);
        }
        // Migrate each allocated block off; holdings stay constant.
        let held_before = p.held_by("a");
        for &b in &on_victim {
            let repl = p.migrate_block("a", b).unwrap();
            assert_ne!(repl.node, victim);
        }
        assert_eq!(p.held_by("a"), held_before);
        p.finish_decommission(victim);
        assert_eq!(p.active_nodes(), 1);
        // Capacity is now just the surviving node.
        assert_eq!(p.stats().capacity_blocks, 8);
    }

    #[test]
    fn cannot_decommission_last_active_node() {
        let p = MemoryPool::new(1, 4, ByteSize::kb(4));
        assert!(matches!(
            p.begin_decommission(NodeId(0)),
            Err(JiffyError::NodeUnavailable(_))
        ));
    }

    #[test]
    fn free_onto_draining_node_retires_blocks() {
        let p = MemoryPool::new(2, 4, ByteSize::kb(4));
        let blocks = p.allocate("a", 8).unwrap();
        p.begin_decommission(NodeId(0)).unwrap();
        p.free("a", &blocks);
        assert_eq!(p.held_by("a"), 0);
        assert_eq!(p.stats().allocated_blocks, 0);
        // Node 0's four blocks retired with it; node 1's four came back.
        assert_eq!(p.stats().capacity_blocks, 4);
        assert_eq!(p.free_blocks(), 4);
    }

    #[test]
    fn concurrent_allocate_free_conserves_blocks() {
        let p = std::sync::Arc::new(MemoryPool::new(4, 64, ByteSize::kb(4)));
        std::thread::scope(|s| {
            for t in 0..8 {
                let p = std::sync::Arc::clone(&p);
                s.spawn(move || {
                    let app = format!("app-{t}");
                    for _ in 0..200 {
                        if let Ok(blocks) = p.allocate(&app, 8) {
                            p.free(&app, &blocks);
                        }
                    }
                });
            }
        });
        assert_eq!(p.free_blocks(), 256);
        assert_eq!(p.stats().allocated_blocks, 0);
    }
}
