//! Baseline stores the paper positions Jiffy against.
//!
//! §4.4 names two alternatives and why each fails for ephemeral serverless
//! state:
//!
//! - **Persistent BaaS stores** (S3, Azure Blob, GCS): durable, but
//!   "unfortunately do not provide the required performance for such
//!   exchange". [`PersistentStore`] models one with S3-calibrated injected
//!   latencies (see `taureau_core::latency::profiles`); experiment E3
//!   measures the gap.
//! - **Global-address-space in-memory stores** (DSM systems, RAMCloud,
//!   FaRM): fast, but "adding/removing memory resources for an application
//!   requires re-partitioning data for the entire address-space".
//!   [`GlobalStore`] models one with a single modulo-partitioned keyspace
//!   shared by all tenants; experiment E4 measures how much *other*
//!   tenants' data moves when one tenant scales.

use std::collections::HashMap;

use parking_lot::Mutex;
use rand_chacha::ChaCha8Rng;
use taureau_core::clock::SharedClock;
use taureau_core::latency::{profiles, LatencyModel};
use taureau_core::rng::det_rng;

use taureau_core::hash::hash64;

const GLOBAL_SEED: u64 = 0x474c_4f42_414c; // "GLOBAL"

/// An S3-like blob store: correct and durable, but every operation pays a
/// persistent-storage latency.
pub struct PersistentStore {
    clock: SharedClock,
    read_latency: LatencyModel,
    write_latency: LatencyModel,
    state: Mutex<PersistentState>,
}

struct PersistentState {
    blobs: HashMap<Vec<u8>, Vec<u8>>,
    rng: ChaCha8Rng,
    reads: u64,
    writes: u64,
}

impl PersistentStore {
    /// Create with the standard S3-calibrated latency profiles.
    pub fn new(clock: SharedClock) -> Self {
        Self::with_latency(
            clock,
            profiles::persistent_read(),
            profiles::persistent_write(),
        )
    }

    /// Create with explicit latency models (tests use `LatencyModel::zero`).
    pub fn with_latency(
        clock: SharedClock,
        read_latency: LatencyModel,
        write_latency: LatencyModel,
    ) -> Self {
        Self {
            clock,
            read_latency,
            write_latency,
            state: Mutex::new(PersistentState {
                blobs: HashMap::new(),
                rng: det_rng(0x5353), // "SS"
                reads: 0,
                writes: 0,
            }),
        }
    }

    /// PUT a blob (pays write latency).
    pub fn put(&self, key: &[u8], value: &[u8]) {
        let delay = {
            let mut st = self.state.lock();
            st.writes += 1;
            st.blobs.insert(key.to_vec(), value.to_vec());
            self.write_latency.sample(&mut st.rng)
        };
        self.clock.sleep(delay);
    }

    /// GET a blob (pays read latency).
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let (delay, value) = {
            let mut st = self.state.lock();
            st.reads += 1;
            let v = st.blobs.get(key).cloned();
            (self.read_latency.sample(&mut st.rng), v)
        };
        self.clock.sleep(delay);
        value
    }

    /// DELETE a blob (pays write latency).
    pub fn delete(&self, key: &[u8]) -> bool {
        let (delay, existed) = {
            let mut st = self.state.lock();
            st.writes += 1;
            let e = st.blobs.remove(key).is_some();
            (self.write_latency.sample(&mut st.rng), e)
        };
        self.clock.sleep(delay);
        existed
    }

    /// (reads, writes) op counts, for billing comparisons.
    pub fn op_counts(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.reads, st.writes)
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.state.lock().blobs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A global-address-space in-memory store: one keyspace, modulo-partitioned
/// over `partitions` blocks, shared by every tenant.
///
/// Scaling the store (because *any* tenant needs more room) re-hashes the
/// entire keyspace. [`GlobalStore::scale_to`] returns how many bytes moved
/// in total and how many belonged to tenants *other* than the one that
/// asked — the isolation failure experiment E4 quantifies.
pub struct GlobalStore {
    state: Mutex<GlobalState>,
}

/// A partition: full key -> (owning tenant, value).
type GlobalPartition = HashMap<Vec<u8>, (String, Vec<u8>)>;

struct GlobalState {
    partitions: Vec<GlobalPartition>,
}

/// Result of a global re-partitioning event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepartitionReport {
    /// Bytes moved in total.
    pub total_moved: u64,
    /// Bytes moved that belonged to tenants other than the instigator.
    pub other_tenants_moved: u64,
    /// Keys moved in total.
    pub keys_moved: u64,
}

impl GlobalStore {
    /// Create with an initial partition count.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0);
        Self {
            state: Mutex::new(GlobalState {
                partitions: (0..partitions).map(|_| HashMap::new()).collect(),
            }),
        }
    }

    fn index(key: &[u8], n: usize) -> usize {
        (hash64(GLOBAL_SEED, key) % n as u64) as usize
    }

    /// Store a value for a tenant.
    pub fn put(&self, tenant: &str, key: &[u8], value: &[u8]) {
        let mut st = self.state.lock();
        let full_key = Self::full_key(tenant, key);
        let n = st.partitions.len();
        st.partitions[Self::index(&full_key, n)]
            .insert(full_key, (tenant.to_string(), value.to_vec()));
    }

    /// Read a tenant's value.
    pub fn get(&self, tenant: &str, key: &[u8]) -> Option<Vec<u8>> {
        let st = self.state.lock();
        let full_key = Self::full_key(tenant, key);
        let n = st.partitions.len();
        st.partitions[Self::index(&full_key, n)]
            .get(&full_key)
            .map(|(_, v)| v.clone())
    }

    fn full_key(tenant: &str, key: &[u8]) -> Vec<u8> {
        let mut k = Vec::with_capacity(tenant.len() + 1 + key.len());
        k.extend_from_slice(tenant.as_bytes());
        k.push(0);
        k.extend_from_slice(key);
        k
    }

    /// Current partition count.
    pub fn partitions(&self) -> usize {
        self.state.lock().partitions.len()
    }

    /// Total keys stored.
    pub fn len(&self) -> usize {
        self.state.lock().partitions.iter().map(HashMap::len).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-partition the whole keyspace to `target` partitions because
    /// `instigator` needed to scale. Every tenant's keys re-hash.
    pub fn scale_to(&self, instigator: &str, target: usize) -> RepartitionReport {
        assert!(target > 0);
        let mut st = self.state.lock();
        let n = st.partitions.len();
        if target == n {
            return RepartitionReport {
                total_moved: 0,
                other_tenants_moved: 0,
                keys_moved: 0,
            };
        }
        let old = std::mem::replace(
            &mut st.partitions,
            (0..target).map(|_| GlobalPartition::new()).collect(),
        );
        let mut report = RepartitionReport {
            total_moved: 0,
            other_tenants_moved: 0,
            keys_moved: 0,
        };
        for (old_idx, part) in old.into_iter().enumerate() {
            for (full_key, (tenant, value)) in part {
                let new_idx = Self::index(&full_key, target);
                if new_idx != old_idx {
                    let bytes = (full_key.len() + value.len()) as u64;
                    report.total_moved += bytes;
                    report.keys_moved += 1;
                    if tenant != instigator {
                        report.other_tenants_moved += bytes;
                    }
                }
                st.partitions[new_idx].insert(full_key, (tenant, value));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use taureau_core::clock::{Clock, VirtualClock};

    #[test]
    fn persistent_store_roundtrip_with_injected_latency() {
        let clock = VirtualClock::shared();
        let store = PersistentStore::new(clock.clone());
        let t0 = clock.now();
        store.put(b"k", b"v");
        assert!(clock.now() > t0, "write latency was injected");
        assert_eq!(store.get(b"k"), Some(b"v".to_vec()));
        assert_eq!(store.get(b"missing"), None);
        assert!(store.delete(b"k"));
        assert!(!store.delete(b"k"));
        assert_eq!(store.op_counts(), (2, 3));
    }

    #[test]
    fn persistent_latency_is_s3_class() {
        let clock = VirtualClock::shared();
        let store = PersistentStore::new(clock.clone());
        let t0 = clock.now();
        for i in 0..100u64 {
            store.put(&i.to_le_bytes(), b"x");
        }
        let elapsed = clock.now() - t0;
        let per_op = elapsed / 100;
        assert!(
            per_op > Duration::from_millis(5),
            "persistent writes too fast: {per_op:?}"
        );
    }

    #[test]
    fn global_store_roundtrip() {
        let g = GlobalStore::new(4);
        g.put("a", b"k", b"v1");
        g.put("b", b"k", b"v2"); // same key, different tenant
        assert_eq!(g.get("a", b"k"), Some(b"v1".to_vec()));
        assert_eq!(g.get("b", b"k"), Some(b"v2".to_vec()));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn global_scaling_moves_other_tenants_data() {
        let g = GlobalStore::new(4);
        for i in 0..500u64 {
            g.put("noisy", &i.to_le_bytes(), &[0u8; 32]);
            g.put("victim", &i.to_le_bytes(), &[1u8; 32]);
        }
        let report = g.scale_to("noisy", 8);
        assert!(report.keys_moved > 0);
        assert!(
            report.other_tenants_moved > 0,
            "global scaling must disturb the victim tenant"
        );
        // Roughly half the moved bytes belong to the victim (equal data).
        let share = report.other_tenants_moved as f64 / report.total_moved as f64;
        assert!((share - 0.5).abs() < 0.15, "victim share {share}");
        // Data survives re-partitioning.
        for i in 0..500u64 {
            assert_eq!(g.get("victim", &i.to_le_bytes()), Some(vec![1u8; 32]));
        }
    }

    #[test]
    fn global_scale_to_same_size_is_noop() {
        let g = GlobalStore::new(4);
        g.put("a", b"k", b"v");
        let r = g.scale_to("a", 4);
        assert_eq!(r.total_moved, 0);
        assert_eq!(r.keys_moved, 0);
    }
}
