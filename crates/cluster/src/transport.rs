//! The simulated network: an async message-passing transport with
//! injectable faults.
//!
//! Every inter-node interaction in the cluster rides on [`SimNet`]. The
//! network is a discrete-event simulation over virtual time: `send`
//! schedules an [`Envelope`] for future delivery, `advance` moves the
//! clock and moves due envelopes into per-node inboxes. Faults are
//! injected per directed link ([`LinkFaults`]): base latency, uniform
//! jitter, Bernoulli drops, Bernoulli duplication — plus whole-network
//! partitions ([`SimNet::partition`]). All randomness comes from one
//! seeded ChaCha8 stream ([`taureau_core::rng::det_rng`]), so a run is a
//! pure function of its seed and its fault schedule.
//!
//! Delivery guarantee: **per-link FIFO**. A link's envelopes are
//! delivered in send order (never reordered), even when jitter would
//! schedule a later send earlier — the schedule time is clamped to the
//! link's previous delivery time, exactly how a TCP connection turns
//! packet jitter into head-of-line blocking rather than reordering.
//! Drops remove an envelope entirely; duplicates arrive back-to-back
//! with the original. The property tests in `tests/properties.rs` pin
//! FIFO under arbitrary fault schedules.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use taureau_core::id::NodeId;
use taureau_core::rng::det_rng;
use taureau_core::trace::SpanContext;

/// One message in flight between two nodes.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// Per-link sequence number, assigned at send. Delivered envelopes on
    /// a link carry non-decreasing `seq` (repeats are duplicates).
    pub seq: u64,
    /// Request correlation id (echoed in responses by services).
    pub req: u64,
    /// Message kind tag, dispatched on by services (`"hb"`, `"pub"`, …).
    pub kind: String,
    /// Opaque body; services frame it with [`crate::wire`].
    pub body: Bytes,
    /// Causal trace context. Carrying it in the envelope (not the body)
    /// is what lets one trace follow a request across nodes: the receiver
    /// opens its handling span as a child of this context.
    pub ctx: Option<SpanContext>,
}

/// Fault model for one directed link.
#[derive(Debug, Clone, Copy)]
pub struct LinkFaults {
    /// Base one-way latency.
    pub latency: Duration,
    /// Uniform extra delay in `[0, jitter]`.
    pub jitter: Duration,
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a message is delivered twice.
    pub dup_p: f64,
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self {
            latency: Duration::from_micros(500),
            jitter: Duration::ZERO,
            drop_p: 0.0,
            dup_p: 0.0,
        }
    }
}

/// Counters for what the network did to traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Envelopes accepted by `send`.
    pub sent: u64,
    /// Envelopes placed into an inbox.
    pub delivered: u64,
    /// Envelopes dropped by link fault injection.
    pub dropped: u64,
    /// Extra copies created by duplication faults.
    pub duplicated: u64,
    /// Envelopes refused because sender and receiver are in different
    /// partition groups.
    pub partitioned: u64,
}

/// An in-flight envelope ordered by delivery time (then send order).
struct Flight {
    deliver_at: Duration,
    tie: u64,
    env: Envelope,
}

impl PartialEq for Flight {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.tie == other.tie
    }
}
impl Eq for Flight {}
impl PartialOrd for Flight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Flight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.tie).cmp(&(other.deliver_at, other.tie))
    }
}

struct NetState {
    now: Duration,
    rng: ChaCha8Rng,
    default_faults: LinkFaults,
    link_faults: HashMap<(NodeId, NodeId), LinkFaults>,
    /// Last scheduled delivery time per link — the FIFO clamp.
    last_sched: HashMap<(NodeId, NodeId), Duration>,
    /// Next per-link sequence number.
    next_seq: HashMap<(NodeId, NodeId), u64>,
    inflight: BinaryHeap<Reverse<Flight>>,
    inboxes: HashMap<NodeId, VecDeque<Envelope>>,
    /// Partition groups; `None` means fully connected. A node absent from
    /// every group can talk to no one.
    partition: Option<Vec<HashSet<NodeId>>>,
    tie: u64,
    stats: NetStats,
}

impl NetState {
    fn faults(&self, from: NodeId, to: NodeId) -> LinkFaults {
        self.link_faults
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_faults)
    }

    fn connected(&self, a: NodeId, b: NodeId) -> bool {
        match &self.partition {
            None => true,
            Some(groups) => groups.iter().any(|g| g.contains(&a) && g.contains(&b)),
        }
    }
}

/// The simulated network. Cheap interior mutability behind one mutex —
/// the fabric drives it single-threaded in virtual time; the lock exists
/// so service handles can share it.
pub struct SimNet {
    state: Mutex<NetState>,
}

impl SimNet {
    /// A fully connected network with default link faults, seeded
    /// deterministically.
    pub fn new(seed: u64) -> Self {
        Self {
            state: Mutex::new(NetState {
                now: Duration::ZERO,
                rng: det_rng(seed),
                default_faults: LinkFaults::default(),
                link_faults: HashMap::new(),
                last_sched: HashMap::new(),
                next_seq: HashMap::new(),
                inflight: BinaryHeap::new(),
                inboxes: HashMap::new(),
                partition: None,
                tie: 0,
                stats: NetStats::default(),
            }),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.state.lock().now
    }

    /// Replace the fault model applied to links without a specific
    /// override.
    pub fn set_default_faults(&self, faults: LinkFaults) {
        self.state.lock().default_faults = faults;
    }

    /// Override the fault model for one directed link.
    pub fn set_link_faults(&self, from: NodeId, to: NodeId, faults: LinkFaults) {
        self.state.lock().link_faults.insert((from, to), faults);
    }

    /// Split the network into groups: traffic crosses a group boundary
    /// only into the void. A node listed in no group is fully isolated.
    pub fn partition(&self, groups: &[&[NodeId]]) {
        self.state.lock().partition =
            Some(groups.iter().map(|g| g.iter().copied().collect()).collect());
    }

    /// Remove any partition (messages already lost stay lost).
    pub fn heal(&self) {
        self.state.lock().partition = None;
    }

    /// Whether two nodes can currently exchange messages.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.state.lock().connected(a, b)
    }

    /// Send an envelope. The `seq` field is assigned here (per link);
    /// whatever the caller put in it is overwritten. Returns the assigned
    /// sequence number, or `None` when a partition or drop fault consumed
    /// the message (the sender cannot distinguish these — by design).
    pub fn send(
        &self,
        from: NodeId,
        to: NodeId,
        req: u64,
        kind: impl Into<String>,
        body: Bytes,
        ctx: Option<SpanContext>,
    ) -> Option<u64> {
        let mut st = self.state.lock();
        st.stats.sent += 1;
        if !st.connected(from, to) {
            st.stats.partitioned += 1;
            return None;
        }
        let link = (from, to);
        let seq = {
            let c = st.next_seq.entry(link).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let faults = st.faults(from, to);
        if faults.drop_p > 0.0 && st.rng.gen_bool(faults.drop_p) {
            st.stats.dropped += 1;
            return Some(seq); // the link consumed it; the sender saw a successful send
        }
        let jitter = if faults.jitter.is_zero() {
            Duration::ZERO
        } else {
            let ns = st.rng.gen_range(0..=faults.jitter.as_nanos() as u64);
            Duration::from_nanos(ns)
        };
        // FIFO clamp: never schedule behind the link's previous delivery.
        let mut deliver_at = st.now + faults.latency + jitter;
        if let Some(&prev) = st.last_sched.get(&link) {
            deliver_at = deliver_at.max(prev);
        }
        st.last_sched.insert(link, deliver_at);
        let env = Envelope {
            from,
            to,
            seq,
            req,
            kind: kind.into(),
            body,
            ctx,
        };
        let duplicate = faults.dup_p > 0.0 && st.rng.gen_bool(faults.dup_p);
        let tie = st.tie;
        st.tie += if duplicate { 2 } else { 1 };
        if duplicate {
            st.stats.duplicated += 1;
            st.inflight.push(Reverse(Flight {
                deliver_at,
                tie: tie + 1,
                env: env.clone(),
            }));
        }
        st.inflight.push(Reverse(Flight {
            deliver_at,
            tie,
            env,
        }));
        Some(seq)
    }

    /// Advance virtual time by `d`, delivering everything due into
    /// inboxes in (delivery time, send order).
    pub fn advance(&self, d: Duration) {
        let mut st = self.state.lock();
        st.now += d;
        let now = st.now;
        while let Some(Reverse(head)) = st.inflight.peek() {
            if head.deliver_at > now {
                break;
            }
            let flight = st.inflight.pop().expect("peeked").0;
            st.stats.delivered += 1;
            st.inboxes
                .entry(flight.env.to)
                .or_default()
                .push_back(flight.env);
        }
    }

    /// Pop the next delivered envelope for a node.
    pub fn recv(&self, node: NodeId) -> Option<Envelope> {
        self.state.lock().inboxes.get_mut(&node)?.pop_front()
    }

    /// Drain every delivered envelope for a node.
    pub fn drain(&self, node: NodeId) -> Vec<Envelope> {
        match self.state.lock().inboxes.get_mut(&node) {
            Some(q) => q.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Discard a node's delivered-but-unread envelopes (a crashed node's
    /// socket buffers die with it).
    pub fn clear_inbox(&self, node: NodeId) {
        if let Some(q) = self.state.lock().inboxes.get_mut(&node) {
            q.clear();
        }
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> NetStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn send_simple(net: &SimNet, from: NodeId, to: NodeId, tag: u64) {
        net.send(from, to, tag, "t", Bytes::new(), None);
    }

    #[test]
    fn delivers_after_latency_in_order() {
        let net = SimNet::new(7);
        net.set_default_faults(LinkFaults {
            latency: ms(5),
            ..Default::default()
        });
        send_simple(&net, n(0), n(1), 10);
        send_simple(&net, n(0), n(1), 11);
        net.advance(ms(4));
        assert!(net.recv(n(1)).is_none(), "nothing before latency elapses");
        net.advance(ms(1));
        assert_eq!(net.recv(n(1)).unwrap().req, 10);
        assert_eq!(net.recv(n(1)).unwrap().req, 11);
    }

    #[test]
    fn jitter_cannot_reorder_a_link() {
        let net = SimNet::new(42);
        net.set_default_faults(LinkFaults {
            latency: ms(1),
            jitter: ms(50),
            ..Default::default()
        });
        for i in 0..100 {
            send_simple(&net, n(0), n(1), i);
        }
        net.advance(Duration::from_secs(1));
        let got: Vec<u64> = net.drain(n(1)).into_iter().map(|e| e.req).collect();
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "reordered: {got:?}");
    }

    #[test]
    fn drops_and_dups_are_counted() {
        let net = SimNet::new(3);
        net.set_default_faults(LinkFaults {
            latency: ms(1),
            drop_p: 0.5,
            dup_p: 0.5,
            ..Default::default()
        });
        for i in 0..200 {
            send_simple(&net, n(0), n(1), i);
        }
        net.advance(ms(10));
        let stats = net.stats();
        assert!(stats.dropped > 0 && stats.duplicated > 0);
        // Dups of dropped messages never exist: duplication applies only
        // to messages that survived the drop gate.
        assert_eq!(stats.delivered, 200 - stats.dropped + stats.duplicated);
    }

    #[test]
    fn partition_blocks_cross_group_traffic_and_heal_restores() {
        let net = SimNet::new(1);
        net.partition(&[&[n(0), n(1)], &[n(2)]]);
        assert!(net.send(n(0), n(2), 0, "t", Bytes::new(), None).is_none());
        assert!(net.send(n(0), n(1), 1, "t", Bytes::new(), None).is_some());
        net.heal();
        assert!(net.send(n(0), n(2), 2, "t", Bytes::new(), None).is_some());
        net.advance(ms(1));
        assert_eq!(net.drain(n(2)).len(), 1);
        assert_eq!(net.stats().partitioned, 1);
    }

    #[test]
    fn per_link_faults_override_default() {
        let net = SimNet::new(9);
        net.set_link_faults(
            n(0),
            n(1),
            LinkFaults {
                latency: ms(100),
                ..Default::default()
            },
        );
        send_simple(&net, n(0), n(1), 0); // slow link
        send_simple(&net, n(0), n(2), 1); // default link
        net.advance(ms(1));
        assert!(net.recv(n(1)).is_none());
        assert_eq!(net.recv(n(2)).unwrap().req, 1);
        net.advance(ms(100));
        assert_eq!(net.recv(n(1)).unwrap().req, 0);
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = |seed| {
            let net = SimNet::new(seed);
            net.set_default_faults(LinkFaults {
                latency: ms(1),
                jitter: ms(3),
                drop_p: 0.3,
                dup_p: 0.2,
            });
            for i in 0..100 {
                send_simple(&net, n(0), n(1), i);
            }
            net.advance(ms(100));
            net.drain(n(1))
                .into_iter()
                .map(|e| e.req)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should diverge");
    }
}
