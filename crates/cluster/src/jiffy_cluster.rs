//! Jiffy memory nodes mapped onto the fabric: elastic join/leave with
//! controller-driven block migration.
//!
//! The Jiffy controller (PR-scope: `taureau-jiffy`) already knows how to
//! grow the pool ([`Jiffy::add_memory_node`]) and gracefully drain a node
//! ([`Jiffy::decommission_memory_node`] — every application block it
//! hosts is copied to survivors before it retires). This module binds
//! those operations to fabric nodes and models the evacuation traffic:
//! one transfer envelope per migrated block from the leaving node to a
//! surviving peer, so the network sees (and can delay, drop-and-we-don't-
//! care — the copy already happened synchronously in the controller) the
//! bytes a real migration would move.

use std::collections::HashMap;

use taureau_core::id::NodeId;
use taureau_jiffy::{Jiffy, JiffyConfig, MigrationReport};

use crate::error::{ClusterError, Result};
use crate::fabric::{ClusterFabric, NodeRole};
use crate::transport::Envelope;
use crate::wire;

/// The clustered Jiffy tier: one shared controller, fabric-visible
/// memory nodes.
pub struct JiffyFabric {
    jiffy: Jiffy,
    /// fabric node → pool node.
    nodes: HashMap<NodeId, NodeId>,
    order: Vec<NodeId>,
    /// Transfer envelopes received per node (evacuation traffic sink).
    received_blocks: HashMap<NodeId, u64>,
}

impl JiffyFabric {
    /// Deploy a Jiffy controller whose initial pool nodes are fabric
    /// nodes. `cfg.memory_nodes` fabric nodes are created.
    pub fn new(fabric: &mut ClusterFabric, cfg: JiffyConfig) -> Self {
        let n = cfg.memory_nodes;
        let jiffy = Jiffy::new(cfg, fabric.clock());
        jiffy.set_tracer(fabric.tracer().clone());
        let mut nodes = HashMap::new();
        let mut order = Vec::new();
        for i in 0..n {
            let node = fabric.add_node(NodeRole::Memory);
            nodes.insert(node, NodeId(i as u64));
            order.push(node);
        }
        Self {
            jiffy,
            nodes,
            order,
            received_blocks: HashMap::new(),
        }
    }

    /// The shared controller.
    pub fn jiffy(&self) -> &Jiffy {
        &self.jiffy
    }

    /// Memory-node fabric nodes currently in the pool, in join order.
    pub fn memory_nodes(&self) -> &[NodeId] {
        &self.order
    }

    /// A fabric node joins the pool: new capacity serves immediately.
    pub fn join(&mut self, fabric: &mut ClusterFabric) -> NodeId {
        let node = fabric.add_node(NodeRole::Memory);
        let pool = self.jiffy.add_memory_node();
        self.nodes.insert(node, pool);
        self.order.push(node);
        node
    }

    /// A fabric node leaves gracefully: drain + migrate via the
    /// controller, emit one transfer envelope per moved block to a
    /// surviving peer, then kill the node. Returns what moved.
    pub fn leave(&mut self, fabric: &mut ClusterFabric, node: NodeId) -> Result<MigrationReport> {
        let &pool = self
            .nodes
            .get(&node)
            .ok_or_else(|| ClusterError::Remote(format!("{node} is not a memory node")))?;
        let report = self
            .jiffy
            .decommission_memory_node(pool)
            .map_err(|e| ClusterError::Remote(e.to_string()))?;
        self.order.retain(|&n| n != node);
        self.nodes.remove(&node);
        // Model the evacuation on the wire: moved blocks stream to the
        // surviving peers round-robin. The controller already copied the
        // data; these envelopes are the traffic shape, so link faults and
        // the experiment's latency accounting see the migration.
        let survivors: Vec<NodeId> = self
            .order
            .iter()
            .copied()
            .filter(|&n| fabric.is_alive(n))
            .collect();
        if !survivors.is_empty() {
            let block = self.jiffy.config().block_size.as_u64();
            for i in 0..report.blocks_moved {
                let to = survivors[(i % survivors.len() as u64) as usize];
                fabric.send(
                    node,
                    to,
                    0,
                    "xfer",
                    wire::enc(&[wire::u64_frame(block)]),
                    None,
                );
            }
        }
        fabric.kill(node);
        Ok(report)
    }

    /// Handle a transfer envelope on a surviving node (count it).
    pub fn handle(&mut self, _fabric: &ClusterFabric, env: &Envelope) {
        if env.kind == "xfer" {
            *self.received_blocks.entry(env.to).or_insert(0) += 1;
        }
    }

    /// Transfer envelopes each node has absorbed.
    pub fn received_blocks(&self, node: NodeId) -> u64 {
        self.received_blocks.get(&node).copied().unwrap_or(0)
    }
}
