//! The composed multi-node deployment a client talks to through the
//! network.
//!
//! [`ClusterStack`] wires every tier onto one [`ClusterFabric`]: brokers
//! and bookies ([`ClusterPulsar`]), FaaS workers ([`ClusterFaas`]),
//! Jiffy memory nodes ([`JiffyFabric`]), plus one client node. All
//! client operations are real RPCs: a request envelope crosses the
//! simulated network, a service node handles it, a response envelope
//! comes back — or doesn't, and the deadline fires. The pump loop
//! ([`ClusterStack::rpc`]) is the discrete-event scheduler: it ticks the
//! fabric, lets services drain their mailboxes, and watches the client
//! mailbox for the correlated response.
//!
//! Failure handling is end-to-end at-least-once: a timed-out or fenced
//! request triggers a maintenance round (failure detection has had time
//! to fire by then — the RPC deadline exceeds the membership timeout)
//! and a retry against the freshly-leased owner. Retried publishes can
//! duplicate (exactly like real Pulsar producers after an ownership
//! move); subscriptions absorb that as redelivery, never as loss.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;
use taureau_core::id::NodeId;
use taureau_core::trace::SpanContext;
use taureau_faas::{FunctionSpec, PlatformConfig};
use taureau_jiffy::{JiffyConfig, MigrationReport};
use taureau_pulsar::broker::PulsarConfig;
use taureau_pulsar::message::MessageId;

use taureau_monitor::HealthReport;

use crate::error::{ClusterError, Result};
use crate::faas_cluster::ClusterFaas;
use crate::fabric::{ClusterFabric, NodeRole};
use crate::jiffy_cluster::JiffyFabric;
use crate::membership::MembershipConfig;
use crate::obs::{ClusterObs, ObsConfig};
use crate::pulsar_cluster::{ClusterPulsar, MaintenanceReport};
use crate::transport::Envelope;
use crate::wire;

/// Sizing and tuning for a full deployment.
#[derive(Debug, Clone)]
pub struct ClusterStackConfig {
    /// Transport fault-stream seed (the whole run is deterministic in it).
    pub seed: u64,
    /// Broker node count.
    pub brokers: usize,
    /// Spare (cold standby) bookies beyond `pulsar.bookies`.
    pub spare_bookies: usize,
    /// FaaS worker node count.
    pub workers: usize,
    /// Pulsar tier config; `bookies` is the in-service bookie count.
    pub pulsar: PulsarConfig,
    /// FaaS tier config.
    pub faas: PlatformConfig,
    /// Jiffy tier config; `memory_nodes` fabric nodes are created.
    pub jiffy: JiffyConfig,
    /// Failure-detector tuning.
    pub membership: MembershipConfig,
    /// Pump tick granularity.
    pub tick: Duration,
    /// Per-attempt RPC deadline. Must exceed
    /// `membership.failure_timeout`, so that by the time an attempt
    /// gives up, detection has had a chance to notice a dead peer.
    pub rpc_timeout: Duration,
    /// Attempts per client operation (1 = no retry).
    pub rpc_attempts: u32,
    /// Deploy the observability plane ([`crate::obs::ClusterObs`]): a
    /// collector node plus per-node telemetry agents. Off by default —
    /// it adds a node to membership and telemetry traffic to the wire.
    pub observability: bool,
    /// Observability plane tuning (used when `observability` is set).
    pub obs: ObsConfig,
}

impl Default for ClusterStackConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            brokers: 3,
            spare_bookies: 1,
            workers: 2,
            pulsar: PulsarConfig::default(),
            faas: PlatformConfig::deterministic(),
            jiffy: JiffyConfig::default(),
            membership: MembershipConfig::default(),
            tick: Duration::from_millis(1),
            rpc_timeout: Duration::from_millis(250),
            rpc_attempts: 4,
            observability: false,
            obs: ObsConfig::default(),
        }
    }
}

/// A message as the client sees it after a `consume` RPC.
#[derive(Debug, Clone)]
pub struct ClusterMessage {
    /// Durable identity (pass back to [`ClusterStack::ack`]).
    pub id: MessageId,
    /// Payload bytes.
    pub payload: Bytes,
    /// The publish-side trace context recovered from the entry header —
    /// survives broker failover because it is stored with the entry.
    pub ctx: Option<SpanContext>,
}

/// The composed deployment.
pub struct ClusterStack {
    cfg: ClusterStackConfig,
    fabric: ClusterFabric,
    pulsar: ClusterPulsar,
    faas: ClusterFaas,
    jiffy: JiffyFabric,
    client: NodeId,
    obs: Option<ClusterObs>,
    next_req: u64,
    responses: HashMap<u64, Envelope>,
    worker_rr: usize,
}

impl ClusterStack {
    /// Deploy and run the fabric until membership converges (every node
    /// confirmed by heartbeats), so the first client op sees a settled
    /// view.
    pub fn new(cfg: ClusterStackConfig) -> Self {
        let mut fabric = ClusterFabric::with_membership(cfg.seed, cfg.membership);
        let pulsar = ClusterPulsar::new(
            &mut fabric,
            cfg.brokers,
            cfg.spare_bookies,
            cfg.pulsar.clone(),
        );
        let faas = ClusterFaas::new(&mut fabric, cfg.workers, cfg.faas.clone());
        let jiffy = JiffyFabric::new(&mut fabric, cfg.jiffy.clone());
        let client = fabric.add_node(NodeRole::Client);
        let obs = cfg
            .observability
            .then(|| ClusterObs::new(&mut fabric, cfg.obs.clone(), client));
        let warmup = cfg.membership.failure_timeout * 2;
        fabric.run_for(warmup, cfg.tick);
        Self {
            cfg,
            fabric,
            pulsar,
            faas,
            jiffy,
            client,
            obs,
            next_req: 1,
            responses: HashMap::new(),
            worker_rr: 0,
        }
    }

    // -- accessors -----------------------------------------------------------

    /// The underlying fabric (fault injection, clock, tracer).
    pub fn fabric(&self) -> &ClusterFabric {
        &self.fabric
    }

    /// Mutable fabric access (partitions, link faults).
    pub fn fabric_mut(&mut self) -> &mut ClusterFabric {
        &mut self.fabric
    }

    /// The Pulsar tier.
    pub fn pulsar(&self) -> &ClusterPulsar {
        &self.pulsar
    }

    /// The FaaS tier.
    pub fn faas(&self) -> &ClusterFaas {
        &self.faas
    }

    /// The Jiffy tier.
    pub fn jiffy(&self) -> &JiffyFabric {
        &self.jiffy
    }

    /// Mutable Jiffy tier (join/leave).
    pub fn jiffy_mut(&mut self) -> &mut JiffyFabric {
        &mut self.jiffy
    }

    /// The client's fabric node.
    pub fn client_node(&self) -> NodeId {
        self.client
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.fabric.now()
    }

    /// The observability plane, when deployed.
    pub fn obs(&self) -> Option<&ClusterObs> {
        self.obs.as_ref()
    }

    /// Mutable observability plane access (timelines, blackbox dumps).
    pub fn obs_mut(&mut self) -> Option<&mut ClusterObs> {
        self.obs.as_mut()
    }

    /// The single cluster-wide health report, merged from the collector
    /// node's state: per-`(op, node)` latency rows, telemetry-plane
    /// counters, and grey-failure flags as active alerts. `None` when the
    /// plane is not deployed.
    pub fn health_report(&self) -> Option<HealthReport> {
        let now = self.fabric.now();
        self.obs.as_ref().map(|o| o.health_report(now))
    }

    /// Pump the stack until every telemetry agent's final cumulative
    /// count has reached the collector (loss accounting is exact from
    /// then on), or `max` elapses. Returns whether sync was reached —
    /// it never will be while an agent's node is dead.
    pub fn drain_telemetry(&mut self, max: Duration) -> bool {
        let deadline = self.now() + max;
        loop {
            match &self.obs {
                None => return true,
                Some(obs) if obs.telemetry_synced() => return true,
                _ => {}
            }
            if self.now() >= deadline {
                return false;
            }
            self.step();
        }
    }

    // -- lifecycle -----------------------------------------------------------

    /// Kill a node, with role side effects (a bookie node's death crashes
    /// its bookie). Detection still takes the failure timeout.
    pub fn kill(&mut self, node: NodeId) {
        let role = self.fabric.role(node);
        self.pulsar.on_kill(node);
        self.fabric.kill(node);
        if let Some(obs) = &mut self.obs {
            let now = self.fabric.now();
            obs.on_kill(node, role, now);
        }
    }

    /// Revive a node, with role side effects (a bookie restarts with its
    /// surviving — and possibly fenced — ledger data).
    pub fn revive(&mut self, node: NodeId) {
        self.pulsar.on_revive(node);
        self.fabric.revive(node);
    }

    /// One maintenance round (failover + replacement + repair chunk).
    /// When a failover fires and the observability plane is deployed, the
    /// reconstructed timeline and collector trace are dumped to Jiffy
    /// `/blackbox/<incident>/` — the flight recorder writes while the
    /// incident is still hot.
    pub fn maintain(&mut self) -> MaintenanceReport {
        let report = self.pulsar.maintain(&mut self.fabric);
        if report.topics_failed_over > 0 {
            if let Some(obs) = &mut self.obs {
                // Pull the lease-move events the round just generated
                // into the plane before dumping.
                obs.step(&self.fabric, &mut self.pulsar);
                let now = self.fabric.now();
                obs.dump_failover(self.jiffy.jiffy(), now);
            }
        }
        report
    }

    /// Run maintenance rounds (interleaved with fabric time) until no
    /// ledger is under-replicated, or `max_rounds` elapse. Returns the
    /// rounds used.
    pub fn repair_until_replicated(&mut self, max_rounds: usize) -> usize {
        for round in 0..max_rounds {
            if self.pulsar.underreplicated() == 0 {
                return round;
            }
            self.step();
            self.maintain();
        }
        max_rounds
    }

    /// Advance one tick: fabric time + network, then let every service
    /// node drain its mailbox. Client responses land in the correlation
    /// table.
    pub fn step(&mut self) {
        self.fabric.tick(self.cfg.tick);
        let now = self.fabric.now();
        let roles: Vec<(NodeId, NodeRole)> = (0..)
            .map(NodeId)
            .map_while(|n| self.fabric.role(n).map(|r| (n, r)))
            .collect();
        for (node, role) in roles {
            if !self.fabric.is_alive(node) {
                continue;
            }
            let mail = self.fabric.mail(node);
            for env in mail {
                match role {
                    NodeRole::Broker => self.pulsar.handle(&self.fabric, &env),
                    NodeRole::Worker => self.faas.handle(&self.fabric, &env),
                    NodeRole::Memory => self.jiffy.handle(&self.fabric, &env),
                    NodeRole::Client => {
                        if env.kind == "resp" {
                            self.responses.insert(env.req, env);
                        }
                    }
                    NodeRole::Bookie => {} // bookie I/O is modeled in-process
                    NodeRole::Collector => {
                        if let Some(obs) = &mut self.obs {
                            obs.ingest(&env, now);
                        }
                    }
                }
            }
        }
        // The plane ticks after service mail: route freshly-recorded
        // spans/control events to agents and flush due batches.
        if let Some(obs) = &mut self.obs {
            obs.step(&self.fabric, &mut self.pulsar);
        }
    }

    /// Run the pump for a duration without issuing requests.
    pub fn run_for(&mut self, d: Duration) {
        let end = self.now() + d;
        while self.now() < end {
            self.step();
        }
    }

    // -- RPC core ------------------------------------------------------------

    /// One request/response exchange with a service node. Returns the
    /// decoded `ok` frames, [`ClusterError::Remote`] for a service `err`,
    /// or [`ClusterError::Unreachable`] on deadline.
    ///
    /// Every exchange is also a latency sample for the grey-failure
    /// detector: the client-observed round trip (success or not) is
    /// recorded on the client's telemetry agent.
    pub fn rpc(
        &mut self,
        to: NodeId,
        kind: &str,
        frames: &[Bytes],
        ctx: Option<SpanContext>,
    ) -> Result<Vec<Bytes>> {
        let role = self.fabric.role(to);
        let t0 = self.now();
        let result = self.rpc_inner(to, kind, frames, ctx);
        if let (Some(obs), Some(role)) = (&mut self.obs, role) {
            let now = self.fabric.now();
            obs.record_rpc(now, to, role, now - t0, result.is_ok());
        }
        result
    }

    fn rpc_inner(
        &mut self,
        to: NodeId,
        kind: &str,
        frames: &[Bytes],
        ctx: Option<SpanContext>,
    ) -> Result<Vec<Bytes>> {
        let req = self.next_req;
        self.next_req += 1;
        if !self
            .fabric
            .send(self.client, to, req, kind, wire::enc(frames), ctx)
        {
            return Err(ClusterError::Unreachable(to));
        }
        let deadline = self.now() + self.cfg.rpc_timeout;
        loop {
            self.step();
            if let Some(env) = self.responses.remove(&req) {
                let mut frames = wire::dec(&env.body)?;
                if frames.is_empty() {
                    return Err(ClusterError::Wire("empty response".into()));
                }
                let status = frames.remove(0);
                return match &status[..] {
                    b"ok" => Ok(frames),
                    b"err" => Err(ClusterError::Remote(
                        frames
                            .first()
                            .map(|f| String::from_utf8_lossy(f).to_string())
                            .unwrap_or_default(),
                    )),
                    _ => Err(ClusterError::Wire("bad status frame".into())),
                };
            }
            if self.now() >= deadline {
                return Err(ClusterError::Unreachable(to));
            }
        }
    }

    /// Whether an error should trigger maintenance + retry (the owner
    /// died or was deposed) rather than surfacing to the caller.
    fn is_failover_error(e: &ClusterError) -> bool {
        match e {
            ClusterError::Unreachable(_) => true,
            ClusterError::Remote(msg) => msg.contains("fenced"),
            _ => false,
        }
    }

    fn with_owner_retry<T>(
        &mut self,
        topic: &str,
        mut op: impl FnMut(&mut Self, NodeId) -> Result<T>,
    ) -> Result<T> {
        let mut last = ClusterError::NoCandidates(topic.to_string());
        for _ in 0..self.cfg.rpc_attempts.max(1) {
            self.maintain();
            let owner = match self.pulsar.owner(topic) {
                Ok(o) => o,
                Err(e) => {
                    last = e;
                    self.run_for(self.cfg.membership.failure_timeout);
                    continue;
                }
            };
            match op(self, owner) {
                Ok(v) => return Ok(v),
                Err(e) if Self::is_failover_error(&e) => {
                    last = e;
                    // Give detection time to catch up before re-leasing.
                    self.run_for(self.cfg.membership.failure_timeout);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    // -- client operations ---------------------------------------------------

    /// Create a topic (metadata write through any live broker).
    pub fn create_topic(&mut self, topic: &str, partitions: u32) -> Result<()> {
        self.pulsar.create_topic(&self.fabric, topic, partitions)
    }

    /// Register a function on every FaaS worker.
    pub fn register_function(&self, spec: FunctionSpec) -> Result<()> {
        self.faas.register(spec)
    }

    /// Publish to a topic through its owning broker, failing over (and
    /// possibly duplicating — at-least-once) when the owner dies mid-op.
    pub fn publish(
        &mut self,
        topic: &str,
        payload: &[u8],
        ctx: Option<SpanContext>,
    ) -> Result<MessageId> {
        let topic_f = Bytes::copy_from_slice(topic.as_bytes());
        let payload = Bytes::copy_from_slice(payload);
        self.with_owner_retry(topic, |this, owner| {
            let frames = this.rpc(owner, "pub", &[topic_f.clone(), payload.clone()], ctx)?;
            wire::dec_msg_id(
                frames
                    .first()
                    .ok_or_else(|| ClusterError::Wire("publish response missing id".into()))?,
            )
        })
    }

    /// Receive up to `max` messages from a subscription through the
    /// owning broker.
    pub fn consume(
        &mut self,
        topic: &str,
        sub: &str,
        max: usize,
        ctx: Option<SpanContext>,
    ) -> Result<Vec<ClusterMessage>> {
        let topic_f = Bytes::copy_from_slice(topic.as_bytes());
        let sub_f = Bytes::copy_from_slice(sub.as_bytes());
        let frames = self.with_owner_retry(topic, |this, owner| {
            this.rpc(
                owner,
                "recv",
                &[
                    topic_f.clone(),
                    sub_f.clone(),
                    Bytes::copy_from_slice(&wire::u64_frame(max as u64)),
                ],
                ctx,
            )
        })?;
        if frames.len() % 3 != 0 {
            return Err(ClusterError::Wire("recv frames not a multiple of 3".into()));
        }
        frames
            .chunks(3)
            .map(|c| {
                Ok(ClusterMessage {
                    id: wire::dec_msg_id(&c[0])?,
                    payload: c[1].clone(),
                    ctx: SpanContext::from_bytes(&c[2]),
                })
            })
            .collect()
    }

    /// Acknowledge one message on a subscription.
    pub fn ack(
        &mut self,
        topic: &str,
        sub: &str,
        id: MessageId,
        ctx: Option<SpanContext>,
    ) -> Result<()> {
        let topic_f = Bytes::copy_from_slice(topic.as_bytes());
        let sub_f = Bytes::copy_from_slice(sub.as_bytes());
        let id_f = Bytes::copy_from_slice(&wire::enc_msg_id(&id));
        self.with_owner_retry(topic, |this, owner| {
            this.rpc(
                owner,
                "ack",
                &[topic_f.clone(), sub_f.clone(), id_f.clone()],
                ctx,
            )
            .map(|_| ())
        })
    }

    /// Invoke a function on a live worker, walking the worker ring on
    /// unreachability.
    pub fn invoke(
        &mut self,
        function: &str,
        payload: &[u8],
        ctx: Option<SpanContext>,
    ) -> Result<Bytes> {
        let fn_f = Bytes::copy_from_slice(function.as_bytes());
        let payload = Bytes::copy_from_slice(payload);
        self.worker_rr = self.worker_rr.wrapping_add(1);
        let route = self.faas.route(&self.fabric, self.worker_rr);
        if route.is_empty() {
            return Err(ClusterError::NoCandidates(format!("fn/{function}")));
        }
        let mut last = ClusterError::NoCandidates(format!("fn/{function}"));
        for worker in route {
            match self.rpc(worker, "invoke", &[fn_f.clone(), payload.clone()], ctx) {
                Ok(frames) => {
                    return Ok(frames.into_iter().next().unwrap_or_default());
                }
                Err(e) if Self::is_failover_error(&e) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Gracefully remove a memory node (controller migration + modeled
    /// transfer traffic + node kill).
    pub fn leave_memory_node(&mut self, node: NodeId) -> Result<MigrationReport> {
        self.jiffy.leave(&mut self.fabric, node)
    }

    /// Add a memory node to the Jiffy pool.
    pub fn join_memory_node(&mut self) -> NodeId {
        self.jiffy.join(&mut self.fabric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn stack() -> ClusterStack {
        ClusterStack::new(ClusterStackConfig::default())
    }

    #[test]
    fn publish_consume_ack_invoke_end_to_end() {
        let mut s = stack();
        s.create_topic("orders", 1).unwrap();
        s.register_function(FunctionSpec::new("echo", "tenant-a", |ctx| {
            Ok(ctx.payload.to_vec())
        }))
        .unwrap();
        let mut ids = Vec::new();
        for i in 0..10u64 {
            ids.push(s.publish("orders", &i.to_le_bytes(), None).unwrap());
        }
        let msgs = s.consume("orders", "workers", 16, None).unwrap();
        assert_eq!(msgs.len(), 10);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(&m.payload[..], &(i as u64).to_le_bytes());
            let out = s.invoke("echo", &m.payload, m.ctx).unwrap();
            assert_eq!(&out[..], &m.payload[..]);
            s.ack("orders", "workers", m.id, None).unwrap();
        }
        assert!(s.consume("orders", "workers", 16, None).unwrap().is_empty());
    }

    #[test]
    fn rpc_latency_is_virtual_network_time() {
        let mut s = stack();
        s.create_topic("t", 1).unwrap();
        let before = s.now();
        s.publish("t", b"x", None).unwrap();
        let elapsed = s.now() - before;
        // At least one round trip of the default 500us link latency, and
        // nowhere near the rpc timeout.
        assert!(elapsed >= Duration::from_micros(1000), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(50), "{elapsed:?}");
    }

    #[test]
    fn broker_kill_fails_over_without_entry_loss() {
        let mut s = stack();
        s.create_topic("stream", 1).unwrap();
        let mut published = Vec::new();
        for i in 0..20u64 {
            s.publish("stream", &i.to_le_bytes(), None).unwrap();
            published.push(i);
        }
        let owner = s.pulsar.owner("stream").unwrap();
        s.kill(owner);
        // Keep publishing through the failover: retries ride out detection.
        for i in 20..40u64 {
            s.publish("stream", &i.to_le_bytes(), None).unwrap();
            published.push(i);
        }
        let new_owner = s.pulsar.owner("stream").unwrap();
        assert_ne!(new_owner, owner, "lease must have moved");
        // Every published value arrives at least once (dups allowed).
        let mut got = BTreeSet::new();
        loop {
            let msgs = s.consume("stream", "s", 64, None).unwrap();
            if msgs.is_empty() {
                break;
            }
            for m in msgs {
                let mut b = [0u8; 8];
                b.copy_from_slice(&m.payload[..8]);
                got.insert(u64::from_le_bytes(b));
                s.ack("stream", "s", m.id, None).unwrap();
            }
        }
        for v in published {
            assert!(got.contains(&v), "entry {v} lost in failover");
        }
    }

    #[test]
    fn bookie_kill_triggers_replacement_and_repair() {
        let mut s = stack();
        s.create_topic("t", 1).unwrap();
        for i in 0..50u64 {
            s.publish("t", &i.to_le_bytes(), None).unwrap();
        }
        let bookie_node = s.pulsar.bookie_nodes()[0];
        s.kill(bookie_node);
        assert!(
            s.pulsar.underreplicated() > 0,
            "kill must create repair debt"
        );
        let rounds = s.repair_until_replicated(200);
        assert!(rounds < 200, "repair never converged");
        assert_eq!(s.pulsar.underreplicated(), 0);
        // The stream still reads back completely.
        let msgs = s.consume("t", "s", 64, None).unwrap();
        assert_eq!(msgs.len(), 50);
    }

    #[test]
    fn memory_node_leaves_with_data_intact() {
        let mut s = stack();
        let kv = s.jiffy().jiffy().create_kv("/app/state", 2).unwrap();
        for i in 0..16u64 {
            kv.put(&i.to_le_bytes(), &[9u8; 32]).unwrap();
        }
        let joined = s.join_memory_node();
        let leaving = s.jiffy().memory_nodes()[0];
        let report = s.leave_memory_node(leaving).unwrap();
        assert!(report.freed_blocks + report.blocks_moved > 0);
        assert!(!s.fabric().is_alive(leaving));
        assert!(s.fabric().is_alive(joined));
        // Transfer traffic reached the survivors.
        s.run_for(Duration::from_millis(20));
        for i in 0..16u64 {
            assert_eq!(
                kv.get(&i.to_le_bytes()).unwrap().as_deref(),
                Some(&[9u8; 32][..])
            );
        }
    }
}
