//! Cluster-layer error types.

use taureau_core::id::NodeId;

/// Errors surfaced by the cluster fabric and the clustered services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A request to this node got no response before its deadline — the
    /// node is dead, partitioned away, or the reply was dropped. The
    /// caller cannot tell which (that is the FLP/failure-detector reality
    /// this layer models); retrying after a [`crate::stack::ClusterStack`]
    /// maintenance round is the intended recovery.
    Unreachable(NodeId),
    /// No live candidate node can own this resource (every replica of the
    /// service role is down).
    NoCandidates(String),
    /// The remote service executed the request and failed; the message is
    /// the remote error's rendering.
    Remote(String),
    /// A reply frame could not be decoded (framing bug or truncation).
    Wire(String),
    /// The underlying Pulsar layer failed locally (before any RPC).
    Pulsar(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Unreachable(n) => write!(f, "node {n} unreachable before deadline"),
            ClusterError::NoCandidates(r) => write!(f, "no live candidates to own {r}"),
            ClusterError::Remote(e) => write!(f, "remote error: {e}"),
            ClusterError::Wire(e) => write!(f, "wire decode error: {e}"),
            ClusterError::Pulsar(e) => write!(f, "pulsar error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, ClusterError>;
