//! Pulsar mapped onto the fabric: a fleet of stateless brokers over a
//! shared bookie fleet, with lease-fenced topic ownership, failover, and
//! background ledger re-replication.
//!
//! The deployment shape is the paper's §4.3 split taken literally:
//!
//! - Every broker node runs its own [`PulsarCluster`] instance (its own
//!   in-memory topic cache), but all of them share one bookie fleet and
//!   one metadata store. A topic's durable state is *only* what lives in
//!   those shared layers.
//! - The control plane leases each topic to exactly one broker
//!   ([`crate::membership::ControlPlane::ensure_lease`]). Each broker's
//!   fence check points at that lease table, so a broker that lost its
//!   lease — however convinced it still is — gets `PulsarError::Fenced`
//!   on every publish/dispatch/ack, while ledger-level fencing
//!   ([`BookKeeper::recover_and_close`]) cuts off its in-flight appends.
//! - When a bookie node dies, [`ClusterPulsar::maintain`] activates a
//!   spare and re-replicates the dead bookie's ledger entries onto it in
//!   bounded chunks per round — background repair that restores the
//!   replication factor while the cluster keeps serving.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use taureau_core::id::{LedgerId, NodeId};
use taureau_pulsar::bookie::Bookie;
use taureau_pulsar::broker::{Consumer, PulsarCluster, PulsarConfig, SubscriptionMode};
use taureau_pulsar::ledger::BookKeeper;
use taureau_pulsar::metadata::MetadataStore;

use crate::error::{ClusterError, Result};
use crate::fabric::{ClusterFabric, NodeRole};
use crate::membership::ControlPlane;
use crate::transport::Envelope;
use crate::wire;

/// Trace system label for cluster-layer spans.
pub const TRACE_SYSTEM: &str = "taureau-cluster";

/// Lease-table key for a topic.
pub fn topic_resource(topic: &str) -> String {
    format!("topic/{topic}")
}

/// What one maintenance round did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Topics whose lease moved to a new broker this round.
    pub topics_failed_over: u64,
    /// Dead bookies for which a spare was activated this round.
    pub bookies_replaced: u64,
    /// Ledgers re-replicated this round.
    pub ledgers_repaired: u64,
    /// Entries copied onto replacement bookies this round.
    pub entries_recopied: u64,
    /// Ledgers still queued for repair after this round.
    pub repair_backlog: u64,
}

/// Control/data-plane happenings the observability plane ships to the
/// collector: lease moves, consumer rebuilds, fence rejections, bookie
/// replacement, and re-replication progress. [`ClusterPulsar`] appends
/// them as they happen; [`ClusterPulsar::drain_obs_events`] hands them to
/// the telemetry agents, which stamp and batch them like any other event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PulsarObsEvent {
    /// A lease was (re)assigned: `resource` now owned by `owner` at
    /// `epoch` (the fence token).
    LeaseMoved {
        /// Lease-table key, e.g. `topic/jobs`.
        resource: String,
        /// New owner broker.
        owner: NodeId,
        /// Fencing epoch of the new lease.
        epoch: u64,
    },
    /// A broker (re)built a consumer handle for a subscription — after
    /// failover this is the subscription-rebuild phase completing.
    ConsumerRebuilt {
        /// Topic subscribed.
        topic: String,
        /// Broker that built the handle.
        node: NodeId,
    },
    /// A broker's request was rejected by the lease fence.
    Fenced {
        /// Topic the stale broker tried to serve.
        topic: String,
        /// The fenced (stale) broker.
        node: NodeId,
    },
    /// A dead bookie was swapped for a spare.
    BookieReplaced {
        /// Fabric node of the dead bookie.
        dead: NodeId,
        /// Fabric node of the activated spare.
        target: NodeId,
    },
    /// One maintenance round of background re-replication.
    RepairProgress {
        /// Ledgers re-replicated this round.
        ledgers: u64,
        /// Entries copied this round.
        entries: u64,
        /// Ledgers still queued after this round.
        backlog: u64,
    },
}

/// An in-progress bookie replacement.
struct RepairJob {
    dead: usize,
    target: usize,
    queue: VecDeque<LedgerId>,
}

/// The clustered Pulsar deployment.
pub struct ClusterPulsar {
    brokers: HashMap<NodeId, PulsarCluster>,
    broker_order: Vec<NodeId>,
    /// Fabric node of every bookie, in bookie-index order.
    bookie_nodes: Vec<NodeId>,
    bookies: Arc<Vec<Arc<Bookie>>>,
    /// Admin-plane BookKeeper view over the shared fleet.
    bk: BookKeeper,
    control: Arc<Mutex<ControlPlane>>,
    /// Bookie indices currently serving ensembles.
    active: HashSet<usize>,
    /// Cold standby bookie indices (crashed until activated).
    spares: Vec<usize>,
    /// Bookie indices replaced and permanently retired.
    retired: HashSet<usize>,
    repair: Option<RepairJob>,
    /// Ledgers repaired per maintenance round (the "background" knob:
    /// repair bandwidth, not repair-all-at-once).
    pub repair_chunk: usize,
    /// Broker-side consumer handles, rebuilt lazily after failover.
    consumers: HashMap<(NodeId, String, String), Consumer>,
    /// Pending observability events (drained by the telemetry plane).
    obs_events: Vec<PulsarObsEvent>,
}

impl ClusterPulsar {
    /// Deploy `n_brokers` broker nodes and `cfg.bookies + spares` bookie
    /// nodes onto the fabric. Spares start crashed (cold standby): ledger
    /// ensembles never include them until a replacement activates them.
    pub fn new(
        fabric: &mut ClusterFabric,
        n_brokers: usize,
        spares: usize,
        mut cfg: PulsarConfig,
    ) -> Self {
        let in_service = cfg.bookies;
        let total = in_service + spares;
        cfg.bookies = total;
        let bookies: Arc<Vec<Arc<Bookie>>> =
            Arc::new((0..total).map(|i| Arc::new(Bookie::new(i))).collect());
        let meta = Arc::new(MetadataStore::new());
        let control = fabric.control();
        let clock = fabric.clock();
        let tracer = fabric.tracer().clone();

        let mut brokers = HashMap::new();
        let mut broker_order = Vec::new();
        for _ in 0..n_brokers {
            let node = fabric.add_node(NodeRole::Broker);
            let broker = PulsarCluster::with_shared(
                cfg.clone(),
                clock.clone(),
                bookies.clone(),
                meta.clone(),
            );
            broker.set_tracer(tracer.clone());
            let cp = control.clone();
            broker.set_fence_check(Arc::new(move |topic: &str| {
                cp.lock().holds(&topic_resource(topic), node)
            }));
            broker_order.push(node);
            brokers.insert(node, broker);
        }

        let mut bookie_nodes = Vec::new();
        for (i, bookie) in bookies.iter().enumerate() {
            let node = fabric.add_node(NodeRole::Bookie);
            bookie_nodes.push(node);
            if i >= in_service {
                bookie.crash();
                fabric.kill(node);
            }
        }

        let bk = BookKeeper::new(bookies.clone(), meta.clone());
        Self {
            brokers,
            broker_order,
            bookie_nodes,
            bookies,
            bk,
            control,
            active: (0..in_service).collect(),
            spares: (in_service..total).rev().collect(),
            retired: HashSet::new(),
            repair: None,
            repair_chunk: 4,
            consumers: HashMap::new(),
            obs_events: Vec::new(),
        }
    }

    /// Take the observability events accumulated since the last drain.
    pub fn drain_obs_events(&mut self) -> Vec<PulsarObsEvent> {
        std::mem::take(&mut self.obs_events)
    }

    /// Broker fabric nodes, in creation order.
    pub fn broker_nodes(&self) -> &[NodeId] {
        &self.broker_order
    }

    /// Bookie fabric nodes, in bookie-index order (spares included).
    pub fn bookie_nodes(&self) -> &[NodeId] {
        &self.bookie_nodes
    }

    /// The broker instance running on a node.
    pub fn broker(&self, node: NodeId) -> Option<&PulsarCluster> {
        self.brokers.get(&node)
    }

    /// The bookie index served by a fabric node, if it is a bookie node.
    pub fn bookie_index(&self, node: NodeId) -> Option<usize> {
        self.bookie_nodes.iter().position(|&n| n == node)
    }

    /// Crash side effects for a fabric-level kill: a dead bookie node
    /// takes its bookie process down with it. (Brokers are stateless —
    /// their death needs no side effect; that is the point.)
    pub fn on_kill(&self, node: NodeId) {
        if let Some(idx) = self.bookie_index(node) {
            self.bookies[idx].crash();
        }
    }

    /// Restart side effects for a fabric-level revive.
    pub fn on_revive(&self, node: NodeId) {
        if let Some(idx) = self.bookie_index(node) {
            self.bookies[idx].restart();
        }
    }

    /// Create a topic through any live broker (topic creation is a
    /// metadata write; no lease needed).
    pub fn create_topic(&self, fabric: &ClusterFabric, topic: &str, partitions: u32) -> Result<()> {
        let node = self
            .broker_order
            .iter()
            .copied()
            .find(|&b| fabric.is_alive(b))
            .ok_or_else(|| ClusterError::NoCandidates(topic_resource(topic)))?;
        self.brokers[&node]
            .create_topic(topic, partitions)
            .map_err(|e| ClusterError::Pulsar(e.to_string()))
    }

    /// The broker currently leasing a topic, acquiring a lease if none.
    pub fn owner(&self, topic: &str) -> Result<NodeId> {
        self.control
            .lock()
            .ensure_lease(&topic_resource(topic), &self.broker_order)
            .map(|l| l.owner)
            .ok_or_else(|| ClusterError::NoCandidates(topic_resource(topic)))
    }

    /// Ledgers whose ensembles contain a dead bookie (the repair debt).
    pub fn underreplicated(&self) -> usize {
        self.bk.underreplicated_ledgers().len()
    }

    /// Admin-plane BookKeeper view (tests and experiments).
    pub fn bookkeeper(&self) -> &BookKeeper {
        &self.bk
    }

    /// Handle one service envelope addressed to a broker node, sending
    /// the response back over the fabric. Unknown kinds are dropped.
    pub fn handle(&mut self, fabric: &ClusterFabric, env: &Envelope) {
        let node = env.to;
        let Some(broker) = self.brokers.get(&node) else {
            return;
        };
        let tracer = broker.tracer();
        let name = format!("cluster.{}", env.kind);
        let mut span = tracer.span_child_of(TRACE_SYSTEM, &name, env.ctx);
        span.attr("node", node.raw());
        let reply = match env.kind.as_str() {
            "pub" => Self::handle_publish(broker, &env.body),
            "recv" => self.handle_receive(node, &env.body),
            "ack" => self.handle_ack(node, &env.body),
            _ => return,
        };
        let body = match reply {
            Ok(frames) => {
                let mut all: Vec<Bytes> = vec![Bytes::from_static(b"ok")];
                all.extend(frames);
                wire::enc(&all)
            }
            Err(e) => {
                span.attr("outcome", "error");
                let msg = e.to_string();
                // A fence rejection is a first-class incident signal: the
                // topic (first request frame) was served by a deposed
                // broker. Stale-lease windows show up on the timeline.
                if msg.to_ascii_lowercase().contains("fenced") {
                    if let Some(topic) = wire::dec(&env.body)
                        .ok()
                        .and_then(|f| f.into_iter().next())
                        .and_then(|f| wire::as_str(&f).ok())
                    {
                        self.obs_events.push(PulsarObsEvent::Fenced { topic, node });
                    }
                }
                wire::enc(&[Bytes::from_static(b"err"), Bytes::from(msg)])
            }
        };
        fabric.send(node, env.from, env.req, "resp", body, span.context());
    }

    fn handle_publish(broker: &PulsarCluster, body: &Bytes) -> Result<Vec<Bytes>> {
        let frames = wire::dec_n(body, 2)?;
        let topic = wire::as_str(&frames[0])?;
        let id = broker
            .producer(&topic)
            .and_then(|p| p.send(&frames[1]))
            .map_err(|e| ClusterError::Remote(e.to_string()))?;
        Ok(vec![Bytes::copy_from_slice(&wire::enc_msg_id(&id))])
    }

    fn consumer(&mut self, node: NodeId, topic: &str, sub: &str) -> Result<&mut Consumer> {
        let key = (node, topic.to_string(), sub.to_string());
        if !self.consumers.contains_key(&key) {
            let c = self.brokers[&node]
                .subscribe(topic, sub, SubscriptionMode::Shared)
                .map_err(|e| ClusterError::Remote(e.to_string()))?;
            self.consumers.insert(key.clone(), c);
            self.obs_events.push(PulsarObsEvent::ConsumerRebuilt {
                topic: topic.to_string(),
                node,
            });
        }
        Ok(self.consumers.get_mut(&key).expect("just inserted"))
    }

    fn handle_receive(&mut self, node: NodeId, body: &Bytes) -> Result<Vec<Bytes>> {
        let frames = wire::dec_n(body, 3)?;
        let topic = wire::as_str(&frames[0])?;
        let sub = wire::as_str(&frames[1])?;
        let max = wire::as_u64(&frames[2])? as usize;
        let consumer = self.consumer(node, &topic, &sub)?;
        let msgs = match consumer.receive_batch(max) {
            Ok(m) => m,
            Err(e) => {
                // A fenced consumer handle is useless; drop it so a
                // post-failover retry rebuilds from metadata.
                self.consumers.remove(&(node, topic, sub));
                return Err(ClusterError::Remote(e.to_string()));
            }
        };
        // Per message: id, payload, ctx (empty frame when untraced).
        let mut out = Vec::with_capacity(msgs.len() * 3);
        for m in msgs {
            out.push(Bytes::copy_from_slice(&wire::enc_msg_id(&m.id)));
            out.push(m.payload);
            out.push(match m.ctx {
                Some(c) => Bytes::copy_from_slice(&c.to_bytes()),
                None => Bytes::new(),
            });
        }
        Ok(out)
    }

    fn handle_ack(&mut self, node: NodeId, body: &Bytes) -> Result<Vec<Bytes>> {
        let frames = wire::dec_n(body, 3)?;
        let topic = wire::as_str(&frames[0])?;
        let sub = wire::as_str(&frames[1])?;
        let id = wire::dec_msg_id(&frames[2])?;
        let consumer = self.consumer(node, &topic, &sub)?;
        consumer
            .ack(id)
            .map_err(|e| ClusterError::Remote(e.to_string()))?;
        Ok(Vec::new())
    }

    /// One maintenance round: fail over topics off dead brokers, replace
    /// dead bookies with spares, and advance background re-replication by
    /// at most [`ClusterPulsar::repair_chunk`] ledgers.
    pub fn maintain(&mut self, fabric: &mut ClusterFabric) -> MaintenanceReport {
        let mut report = MaintenanceReport::default();

        // 1. Topic failover: any leased topic whose owner the view lost
        // gets a new owner (epoch bump — the fence). The old owner's
        // cached topic state is stale by construction; drop every
        // non-owner's cache so a bounced broker reloads from metadata.
        let moved: Vec<(String, NodeId, u64)> = {
            let mut cp = self.control.lock();
            let resources: Vec<String> = cp
                .resources()
                .into_iter()
                .filter(|r| r.starts_with("topic/"))
                .collect();
            resources
                .into_iter()
                .filter_map(|res| {
                    let prev = cp.lease(&res);
                    let next = cp.ensure_lease(&res, &self.broker_order);
                    match (prev, next) {
                        (Some(p), Some(n)) if p != n => Some((res, n.owner, n.epoch)),
                        (None, Some(n)) => Some((res, n.owner, n.epoch)),
                        _ => None,
                    }
                })
                .collect()
        };
        for (res, new_owner, epoch) in moved {
            let topic = res.trim_start_matches("topic/").to_string();
            report.topics_failed_over += 1;
            self.obs_events.push(PulsarObsEvent::LeaseMoved {
                resource: res.clone(),
                owner: new_owner,
                epoch,
            });
            for (&node, broker) in &self.brokers {
                if node != new_owner {
                    broker.unload_topic(&topic);
                }
            }
            self.consumers
                .retain(|(node, t, _), _| !(*t == topic && *node != new_owner));
        }

        // 2. Bookie replacement: pair each newly-dead active bookie with
        // a spare. The spare node revives (heartbeats resume), its bookie
        // restarts empty, and the dead bookie's ledgers queue for repair.
        if self.repair.is_none() {
            let dead: Option<usize> = self
                .active
                .iter()
                .copied()
                .find(|&i| !self.bookies[i].is_alive() && !self.retired.contains(&i));
            if let Some(dead_idx) = dead {
                if let Some(target) = self.spares.pop() {
                    let target_node = self.bookie_nodes[target];
                    fabric.revive(target_node);
                    self.bookies[target].restart();
                    self.active.remove(&dead_idx);
                    self.retired.insert(dead_idx);
                    self.active.insert(target);
                    report.bookies_replaced += 1;
                    self.obs_events.push(PulsarObsEvent::BookieReplaced {
                        dead: self.bookie_nodes[dead_idx],
                        target: target_node,
                    });
                    self.repair = Some(RepairJob {
                        dead: dead_idx,
                        target,
                        queue: self.bk.ledgers_on(dead_idx).into(),
                    });
                }
            }
        }

        // 3. Background re-replication, `repair_chunk` ledgers per round.
        if let Some(job) = &mut self.repair {
            for _ in 0..self.repair_chunk {
                let Some(ledger) = job.queue.pop_front() else {
                    break;
                };
                match self.bk.rereplicate_ledger(ledger, job.dead, job.target) {
                    Ok(copied) => {
                        report.ledgers_repaired += 1;
                        report.entries_recopied += copied;
                    }
                    Err(_) => {
                        // Requeue at the back: quorum may return as other
                        // repairs land.
                        job.queue.push_back(ledger);
                        break;
                    }
                }
            }
            report.repair_backlog = job.queue.len() as u64;
            if job.queue.is_empty() {
                self.repair = None;
            }
            self.obs_events.push(PulsarObsEvent::RepairProgress {
                ledgers: report.ledgers_repaired,
                entries: report.entries_recopied,
                backlog: report.repair_backlog,
            });
        }
        report
    }
}
