//! Membership and placement: heartbeat failure detection plus
//! epoch-fenced ownership leases.
//!
//! Each node runs a [`MemberAgent`] that gossips heartbeats over the
//! [`crate::transport::SimNet`] and judges peers by silence: a peer
//! unheard for longer than [`MembershipConfig::failure_timeout`] is
//! suspected dead. The fabric feeds a designated observer's view into the
//! [`ControlPlane`], which owns the resource→node lease table.
//!
//! Fencing is the core safety idea (it is how real BookKeeper + Pulsar
//! avoid split-brain): every lease carries an **epoch** that bumps on
//! each reassignment. A deposed owner — dead, partitioned away, or merely
//! slow — may still believe it owns the resource, but its epoch is stale,
//! and both the broker-level fence check and the bookie-level ledger
//! fence reject its writes. Detection can be wrong (a slow node looks
//! dead); fencing makes wrong detection safe rather than fatal.

use std::collections::{BTreeSet, HashMap};
use std::time::Duration;

use bytes::Bytes;
use taureau_core::hash::fnv;
use taureau_core::id::NodeId;

use crate::transport::SimNet;

/// Envelope kind used by heartbeats.
pub const HEARTBEAT_KIND: &str = "hb";

/// Failure-detector tuning.
#[derive(Debug, Clone, Copy)]
pub struct MembershipConfig {
    /// How often each node heartbeats every peer.
    pub heartbeat_every: Duration,
    /// Silence longer than this marks a peer dead.
    pub failure_timeout: Duration,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        Self {
            heartbeat_every: Duration::from_millis(20),
            failure_timeout: Duration::from_millis(100),
        }
    }
}

/// One node's view of the cluster, driven by heartbeats it receives.
#[derive(Debug)]
pub struct MemberAgent {
    node: NodeId,
    cfg: MembershipConfig,
    peers: Vec<NodeId>,
    last_heard: HashMap<NodeId, Duration>,
    last_beat: Option<Duration>,
}

impl MemberAgent {
    /// Agent for `node` with no peers yet.
    pub fn new(node: NodeId, cfg: MembershipConfig) -> Self {
        Self {
            node,
            cfg,
            peers: Vec::new(),
            last_heard: HashMap::new(),
            last_beat: None,
        }
    }

    /// This agent's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Replace the peer set (the fabric calls this as nodes join). New
    /// peers start with a full grace period: they are "heard" now, so a
    /// join does not instantly read as a death.
    pub fn set_peers(&mut self, peers: Vec<NodeId>, now: Duration) {
        for &p in &peers {
            self.last_heard.entry(p).or_insert(now);
        }
        self.peers = peers;
    }

    /// Send a round of heartbeats if one is due.
    pub fn maybe_heartbeat(&mut self, now: Duration, net: &SimNet) {
        let due = match self.last_beat {
            None => true,
            Some(t) => now >= t + self.cfg.heartbeat_every,
        };
        if !due {
            return;
        }
        self.last_beat = Some(now);
        for &p in &self.peers {
            net.send(self.node, p, 0, HEARTBEAT_KIND, Bytes::new(), None);
        }
    }

    /// Record a heartbeat (or any traffic — all traffic proves liveness)
    /// from a peer.
    pub fn observe(&mut self, from: NodeId, now: Duration) {
        self.last_heard.insert(from, now);
    }

    /// Peers this node currently believes are alive, plus itself.
    pub fn view(&self, now: Duration) -> BTreeSet<NodeId> {
        let mut v: BTreeSet<NodeId> = self
            .peers
            .iter()
            .copied()
            .filter(|p| {
                self.last_heard
                    .get(p)
                    .is_some_and(|&t| now.saturating_sub(t) <= self.cfg.failure_timeout)
            })
            .collect();
        v.insert(self.node);
        v
    }
}

/// An ownership lease: who owns a resource, fenced by which epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Current owner.
    pub owner: NodeId,
    /// Fencing epoch — bumped on every reassignment. Anything stamped
    /// with an older epoch is a zombie and must be rejected.
    pub epoch: u64,
}

/// The placement service: the lease table plus the authoritative view.
///
/// Modeled as a single logical service (real deployments put this in
/// ZooKeeper/etcd; its internal consensus is out of scope for the paper's
/// serverless-stack argument, so it is reliable here by construction).
#[derive(Debug, Default)]
pub struct ControlPlane {
    epoch: u64,
    view: BTreeSet<NodeId>,
    leases: HashMap<String, Lease>,
}

impl ControlPlane {
    /// Empty control plane at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current cluster epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The authoritative membership view.
    pub fn view(&self) -> &BTreeSet<NodeId> {
        &self.view
    }

    /// Install a new membership view. Returns `true` when it differs from
    /// the previous one (which bumps the cluster epoch).
    pub fn update_view(&mut self, view: BTreeSet<NodeId>) -> bool {
        if view == self.view {
            return false;
        }
        self.view = view;
        self.epoch += 1;
        true
    }

    /// Whether the authoritative view considers a node alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.view.contains(&node)
    }

    /// Ensure `resource` has a live owner among `candidates`, reassigning
    /// (with an epoch bump) if the current owner is dead or missing.
    /// Placement is deterministic: the resource name hashes to a slot in
    /// the sorted live-candidate list, so different resources spread over
    /// the fleet but every caller computes the same owner.
    pub fn ensure_lease(&mut self, resource: &str, candidates: &[NodeId]) -> Option<Lease> {
        if let Some(l) = self.leases.get(resource) {
            if self.view.contains(&l.owner) && candidates.contains(&l.owner) {
                return Some(*l);
            }
        }
        let mut live: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|c| self.view.contains(c))
            .collect();
        if live.is_empty() {
            self.leases.remove(resource);
            return None;
        }
        live.sort_unstable();
        let pick = live[(fnv(resource.as_bytes()) as usize) % live.len()];
        self.epoch += 1;
        let lease = Lease {
            owner: pick,
            epoch: self.epoch,
        };
        self.leases.insert(resource.to_string(), lease);
        Some(lease)
    }

    /// The current lease for a resource, if any.
    pub fn lease(&self, resource: &str) -> Option<Lease> {
        self.leases.get(resource).copied()
    }

    /// Whether `node` holds the live lease on `resource`. This is what
    /// broker fence checks consult: a deposed owner fails it even if its
    /// local state still says otherwise.
    pub fn holds(&self, resource: &str, node: NodeId) -> bool {
        self.leases
            .get(resource)
            .is_some_and(|l| l.owner == node && self.view.contains(&node))
    }

    /// Resources currently leased, sorted (for deterministic iteration).
    pub fn resources(&self) -> Vec<String> {
        let mut v: Vec<String> = self.leases.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn silence_marks_peer_dead_and_traffic_revives() {
        let cfg = MembershipConfig::default();
        let mut a = MemberAgent::new(n(0), cfg);
        a.set_peers(vec![n(1), n(2)], ms(0));
        a.observe(n(1), ms(0));
        a.observe(n(2), ms(0));
        assert_eq!(a.view(ms(50)).len(), 3);
        // Only node 1 keeps talking.
        a.observe(n(1), ms(120));
        let v = a.view(ms(150));
        assert!(v.contains(&n(0)) && v.contains(&n(1)) && !v.contains(&n(2)));
        // Node 2 comes back.
        a.observe(n(2), ms(200));
        assert_eq!(a.view(ms(210)).len(), 3);
    }

    #[test]
    fn lease_reassignment_bumps_epoch_and_deposes_old_owner() {
        let mut cp = ControlPlane::new();
        cp.update_view([n(0), n(1), n(2)].into_iter().collect());
        let brokers = [n(0), n(1), n(2)];
        let l1 = cp.ensure_lease("topic/a", &brokers).unwrap();
        assert!(cp.holds("topic/a", l1.owner));
        // Owner dies: view shrinks, lease moves, epoch strictly grows.
        cp.update_view(brokers.into_iter().filter(|&b| b != l1.owner).collect());
        assert!(!cp.holds("topic/a", l1.owner), "dead owner must not hold");
        let l2 = cp.ensure_lease("topic/a", &brokers).unwrap();
        assert_ne!(l2.owner, l1.owner);
        assert!(l2.epoch > l1.epoch);
        assert!(cp.holds("topic/a", l2.owner));
        // The old owner reappearing does not get the lease back.
        cp.update_view(brokers.into_iter().collect());
        let l3 = cp.ensure_lease("topic/a", &brokers).unwrap();
        assert_eq!(l3, l2);
    }

    #[test]
    fn no_live_candidates_leaves_resource_unowned() {
        let mut cp = ControlPlane::new();
        cp.update_view([n(5)].into_iter().collect());
        assert!(cp.ensure_lease("topic/x", &[n(0), n(1)]).is_none());
        assert!(cp.lease("topic/x").is_none());
    }

    #[test]
    fn placement_spreads_resources_deterministically() {
        let mut cp = ControlPlane::new();
        cp.update_view([n(0), n(1), n(2), n(3)].into_iter().collect());
        let brokers = [n(0), n(1), n(2), n(3)];
        let owners: BTreeSet<NodeId> = (0..32)
            .map(|i| {
                cp.ensure_lease(&format!("topic/t{i}"), &brokers)
                    .unwrap()
                    .owner
            })
            .collect();
        assert!(owners.len() > 1, "32 topics should spread past one broker");
        // Re-asking is stable.
        let again = cp.ensure_lease("topic/t0", &brokers).unwrap();
        assert_eq!(again, cp.ensure_lease("topic/t0", &brokers).unwrap());
    }
}
