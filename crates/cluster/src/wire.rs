//! Tiny length-prefixed framing for envelope bodies.
//!
//! Services exchange requests as a flat list of byte frames (`u32`
//! little-endian length before each frame). Decoding is zero-copy:
//! frames are [`Bytes::slice`] views into the envelope body, so a
//! payload travels client → broker → bookie without being copied out of
//! its original allocation — the same discipline the PR-5 zero-copy work
//! established for ledger entries.

use bytes::Bytes;

use crate::error::{ClusterError, Result};

/// Encode frames into one body.
pub fn enc<T: AsRef<[u8]>>(frames: &[T]) -> Bytes {
    let total: usize = frames.iter().map(|f| 4 + f.as_ref().len()).sum();
    let mut out = Vec::with_capacity(total);
    for f in frames {
        let f = f.as_ref();
        out.extend_from_slice(&(f.len() as u32).to_le_bytes());
        out.extend_from_slice(f);
    }
    Bytes::from(out)
}

/// Decode a body into its frames (zero-copy slices).
pub fn dec(body: &Bytes) -> Result<Vec<Bytes>> {
    let mut frames = Vec::new();
    let mut off = 0usize;
    let buf = body.as_ref();
    while off < buf.len() {
        if off + 4 > buf.len() {
            return Err(ClusterError::Wire("truncated frame length".into()));
        }
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes")) as usize;
        off += 4;
        if off + len > buf.len() {
            return Err(ClusterError::Wire("truncated frame body".into()));
        }
        frames.push(body.slice(off..off + len));
        off += len;
    }
    Ok(frames)
}

/// Expect exactly `n` frames.
pub fn dec_n(body: &Bytes, n: usize) -> Result<Vec<Bytes>> {
    let frames = dec(body)?;
    if frames.len() != n {
        return Err(ClusterError::Wire(format!(
            "expected {n} frames, got {}",
            frames.len()
        )));
    }
    Ok(frames)
}

/// Decode a frame as UTF-8.
pub fn as_str(frame: &Bytes) -> Result<String> {
    std::str::from_utf8(frame)
        .map(|s| s.to_string())
        .map_err(|_| ClusterError::Wire("frame is not utf-8".into()))
}

/// Decode a frame as a little-endian `u64`.
pub fn as_u64(frame: &Bytes) -> Result<u64> {
    let arr: [u8; 8] = frame
        .as_ref()
        .try_into()
        .map_err(|_| ClusterError::Wire("frame is not a u64".into()))?;
    Ok(u64::from_le_bytes(arr))
}

/// Encode a `u64` frame.
pub fn u64_frame(v: u64) -> [u8; 8] {
    v.to_le_bytes()
}

/// Wire form of a [`taureau_pulsar::message::MessageId`]:
/// `partition, ledger, entry, batch_index, batch_size` packed
/// little-endian.
pub fn enc_msg_id(id: &taureau_pulsar::message::MessageId) -> [u8; 28] {
    let mut out = [0u8; 28];
    out[..4].copy_from_slice(&id.partition.to_le_bytes());
    out[4..12].copy_from_slice(&id.ledger.raw().to_le_bytes());
    out[12..20].copy_from_slice(&id.entry.to_le_bytes());
    out[20..24].copy_from_slice(&id.batch_index.to_le_bytes());
    out[24..28].copy_from_slice(&id.batch_size.to_le_bytes());
    out
}

/// Decode a [`taureau_pulsar::message::MessageId`] frame.
pub fn dec_msg_id(frame: &Bytes) -> Result<taureau_pulsar::message::MessageId> {
    let b: &[u8] = frame.as_ref();
    if b.len() != 28 {
        return Err(ClusterError::Wire(
            "message id frame must be 28 bytes".into(),
        ));
    }
    Ok(taureau_pulsar::message::MessageId {
        partition: u32::from_le_bytes(b[..4].try_into().expect("4")),
        ledger: taureau_core::id::LedgerId(u64::from_le_bytes(b[4..12].try_into().expect("8"))),
        entry: u64::from_le_bytes(b[12..20].try_into().expect("8")),
        batch_index: u32::from_le_bytes(b[20..24].try_into().expect("4")),
        batch_size: u32::from_le_bytes(b[24..28].try_into().expect("4")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_frames() {
        let body = enc(&[b"hello".as_ref(), b"", b"world"]);
        let frames = dec(&body).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(&frames[0][..], b"hello");
        assert!(frames[1].is_empty());
        assert_eq!(&frames[2][..], b"world");
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let body = enc(&[b"hello".as_ref()]);
        let cut = body.slice(0..body.len() - 1);
        assert!(matches!(dec(&cut), Err(ClusterError::Wire(_))));
        let cut = body.slice(0..2);
        assert!(matches!(dec(&cut), Err(ClusterError::Wire(_))));
    }

    #[test]
    fn msg_id_roundtrip() {
        let id = taureau_pulsar::message::MessageId {
            partition: 3,
            ledger: taureau_core::id::LedgerId(77),
            entry: 12,
            batch_index: 2,
            batch_size: 5,
        };
        let enc = enc_msg_id(&id);
        assert_eq!(dec_msg_id(&Bytes::copy_from_slice(&enc)).unwrap(), id);
    }
}
