//! The cluster observability plane: per-node telemetry agents, a
//! collector node, HLC-merged timelines, failure reconstruction with
//! MTTD/MTTR attribution, and grey-failure detection.
//!
//! Everything the single-process monitor takes for granted breaks on a
//! cluster: there is no shared tracer ring to scrape, node clocks are
//! skewed, and the telemetry itself rides the same faulty network as the
//! data plane. This module models that honestly:
//!
//! - A [`TelemetryAgent`] on every service node (brokers, workers, memory
//!   nodes, the client — not bookies, whose I/O is modeled in-process)
//!   stamps each event with a hybrid logical clock
//!   ([`HlcStamp`](taureau_core::trace::HlcStamp)) read off a
//!   deterministically *skewed* local clock, batches events, and ships
//!   them to the collector node over the [`SimNet`](crate::transport) —
//!   subject to the same latency, drop, duplication, and partition faults
//!   as data traffic. Batches carry a sequence number and a cumulative
//!   event count so the collector can account for loss exactly.
//! - The [`Collector`] merges every agent's stream into one HLC-ordered
//!   timeline, folds per-`(node, op)` latency sketches for the cluster
//!   [`HealthReport`], detects dropped batches by sequence/cumulative-count
//!   gaps, and runs the grey-failure detector: a node whose client-observed
//!   RPC p50 exceeds [`ObsConfig::grey_ratio`] × the fleet median of its
//!   role group is flagged *slow-but-alive* — before (or without) the
//!   heartbeat failure detector ever firing.
//! - [`FailureTimeline::reconstruct`] folds membership transitions, lease
//!   moves, fence rejections, consumer rebuilds, bookie replacement, and
//!   re-replication progress into per-incident records. Every unavailable
//!   microsecond is assigned to exactly one phase — detection, re-lease,
//!   subscription rebuild, re-replication drain — with the remainder
//!   explicitly unattributed, so "explained ≤ wall" holds by construction
//!   (the same discipline as the dispatch profiler in `taureau-prof`).
//!
//! The plane's own loss is a first-class measurement: `sent`, `received`,
//! and gap-detected `dropped` counters reconcile exactly once the agents
//! have synced (empty batches carrying the final cumulative count), even
//! under injected drops.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Duration;

use bytes::Bytes;
use taureau_core::id::NodeId;
use taureau_core::trace::{
    suppress_telemetry, HlcClock, HlcStamp, SpanId, SpanRecord, TelemetryEvent, TelemetrySink,
    TraceId,
};
use taureau_jiffy::{Jiffy, JiffyError};
use taureau_monitor::wire as telwire;
use taureau_monitor::{render_trace_json, HealthReport, OpHealth, SpanEvent};
use taureau_sketches::KllSketch;

use crate::fabric::{ClusterFabric, NodeRole};
use crate::pulsar_cluster::{ClusterPulsar, PulsarObsEvent};
use crate::transport::Envelope;

/// Envelope kind used by telemetry batches on the fabric.
pub const TELEMETRY_KIND: &str = "telem";

/// Batch frame magic byte.
const MAGIC: u8 = b'O';
/// Batch frame version.
const VERSION: u8 = 1;

// -- configuration -----------------------------------------------------------

/// Tuning for the observability plane.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Events per batch before an early flush.
    pub batch_max: usize,
    /// Flush cadence for partially-filled batches.
    pub flush_every: Duration,
    /// Cadence of empty "sync" batches (they carry only the cumulative
    /// sent count, letting the collector finalize loss accounting).
    pub sync_every: Duration,
    /// Maximum per-node clock skew, microseconds. Each node gets a
    /// deterministic skew in `[0, skew_max_us]` added to its physical
    /// clock reads — HLC ordering must survive it.
    pub skew_max_us: u64,
    /// Minimum successful RPC samples per target before the grey detector
    /// will judge it.
    pub grey_min_samples: u64,
    /// A node is grey when its RPC p50 exceeds this multiple of the fleet
    /// median p50 within its role group.
    pub grey_ratio: f64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            batch_max: 64,
            flush_every: Duration::from_millis(5),
            sync_every: Duration::from_millis(25),
            skew_max_us: 500,
            grey_min_samples: 20,
            grey_ratio: 3.0,
        }
    }
}

/// Deterministic per-node clock skew in `[0, max_us]` — the fabric has
/// one virtual clock, so skew is modeled at the observation layer.
fn node_skew_us(node: NodeId, max_us: u64) -> u64 {
    if max_us == 0 {
        return 0;
    }
    (node.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % (max_us + 1)
}

fn role_code(role: NodeRole) -> u8 {
    match role {
        NodeRole::Broker => 0,
        NodeRole::Bookie => 1,
        NodeRole::Memory => 2,
        NodeRole::Worker => 3,
        NodeRole::Client => 4,
        NodeRole::Collector => 5,
    }
}

fn role_name(code: u8) -> &'static str {
    match code {
        0 => "broker",
        1 => "bookie",
        2 => "memory",
        3 => "worker",
        4 => "client",
        _ => "collector",
    }
}

// -- event model -------------------------------------------------------------

/// One observability event, as recorded on some node.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A finished span (re-encoded for the wire hop).
    Span(SpanEvent),
    /// A counter delta from an instrumented subsystem.
    Metric {
        /// Metric name.
        name: String,
        /// Increment.
        delta: u64,
    },
    /// The recording node's membership view gained or lost a peer.
    Membership {
        /// The peer that changed state.
        peer: u64,
        /// `true` = the peer (re)appeared, `false` = it vanished.
        up: bool,
    },
    /// A lease was (re)assigned.
    Lease {
        /// Lease-table key, e.g. `topic/jobs`.
        resource: String,
        /// New owner node.
        owner: u64,
        /// Fencing epoch.
        epoch: u64,
    },
    /// A stale broker was rejected by the lease fence.
    Fence {
        /// Topic the deposed broker tried to serve.
        topic: String,
        /// The fenced broker.
        node: u64,
    },
    /// A broker (re)built a consumer handle — subscription rebuild done.
    Rebuild {
        /// Topic subscribed.
        topic: String,
        /// Broker that rebuilt.
        node: u64,
    },
    /// A dead bookie was swapped for a spare.
    BookieReplaced {
        /// Dead bookie's fabric node.
        dead: u64,
        /// Activated spare's fabric node.
        target: u64,
    },
    /// One round of background re-replication.
    Repair {
        /// Ledgers repaired this round.
        ledgers: u64,
        /// Entries copied this round.
        entries: u64,
        /// Ledgers still queued.
        backlog: u64,
    },
    /// One client-observed RPC (successful ones feed the grey detector).
    Rpc {
        /// Target node.
        target: u64,
        /// Target's role ([`role_code`]).
        role: u8,
        /// Observed round-trip latency, microseconds.
        latency_us: u64,
        /// Whether the RPC succeeded.
        ok: bool,
    },
}

/// An event with its origin node and HLC stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedEvent {
    /// Node the event was recorded on.
    pub node: NodeId,
    /// HLC stamp assigned at record time on that node.
    pub hlc: HlcStamp,
    /// The event itself.
    pub event: ObsEvent,
}

// -- wire format -------------------------------------------------------------
//
// batch := MAGIC VERSION node:u64 batch_seq:u64 cum_events:u64 count:u32
//          (hlc:20B tag:u8 payload)*
//
// Strings are u16-length-prefixed UTF-8; spans embed the taureau-monitor
// span frame with a u32 length prefix. Decoders are total: malformed
// batches decode to `None` and are counted, never panicked on.

const TAG_SPAN: u8 = b'S';
const TAG_METRIC: u8 = b'M';
const TAG_MEMBERSHIP: u8 = b'V';
const TAG_LEASE: u8 = b'L';
const TAG_FENCE: u8 = b'F';
const TAG_REBUILD: u8 = b'C';
const TAG_BOOKIE: u8 = b'B';
const TAG_REPAIR: u8 = b'R';
const TAG_RPC: u8 = b'Q';

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u16(&mut self) -> Option<u16> {
        let bytes = self.buf.get(self.pos..self.pos + 2)?;
        self.pos += 2;
        Some(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        let bytes: [u8; 4] = self.buf.get(self.pos..self.pos + 4)?.try_into().ok()?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes: [u8; 8] = self.buf.get(self.pos..self.pos + 8)?.try_into().ok()?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes))
    }

    fn bytes(&mut self, len: usize) -> Option<&'a [u8]> {
        let bytes = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(bytes)
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        String::from_utf8(self.bytes(len)?.to_vec()).ok()
    }
}

/// Decoded batch header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchHeader {
    /// Sending agent's node.
    pub node: NodeId,
    /// Per-agent batch sequence number (gap ⇒ dropped batch).
    pub batch_seq: u64,
    /// Agent's cumulative events handed to the network, *including* this
    /// batch — the collector reconciles loss against it.
    pub cum_events: u64,
    /// Events in this batch (0 for a pure sync batch).
    pub count: u32,
}

/// Encode one telemetry batch.
pub fn encode_batch(header: BatchHeader, events: &[(HlcStamp, ObsEvent)]) -> Bytes {
    debug_assert_eq!(header.count as usize, events.len());
    let mut out = Vec::with_capacity(32 + events.len() * 48);
    out.push(MAGIC);
    out.push(VERSION);
    put_u64(&mut out, header.node.raw());
    put_u64(&mut out, header.batch_seq);
    put_u64(&mut out, header.cum_events);
    put_u32(&mut out, events.len() as u32);
    for (hlc, ev) in events {
        out.extend_from_slice(&hlc.to_bytes());
        match ev {
            ObsEvent::Span(span) => {
                out.push(TAG_SPAN);
                let frame = telwire::encode_span(span);
                put_u32(&mut out, frame.len() as u32);
                out.extend_from_slice(&frame);
            }
            ObsEvent::Metric { name, delta } => {
                out.push(TAG_METRIC);
                put_str(&mut out, name);
                put_u64(&mut out, *delta);
            }
            ObsEvent::Membership { peer, up } => {
                out.push(TAG_MEMBERSHIP);
                put_u64(&mut out, *peer);
                out.push(u8::from(*up));
            }
            ObsEvent::Lease {
                resource,
                owner,
                epoch,
            } => {
                out.push(TAG_LEASE);
                put_str(&mut out, resource);
                put_u64(&mut out, *owner);
                put_u64(&mut out, *epoch);
            }
            ObsEvent::Fence { topic, node } => {
                out.push(TAG_FENCE);
                put_str(&mut out, topic);
                put_u64(&mut out, *node);
            }
            ObsEvent::Rebuild { topic, node } => {
                out.push(TAG_REBUILD);
                put_str(&mut out, topic);
                put_u64(&mut out, *node);
            }
            ObsEvent::BookieReplaced { dead, target } => {
                out.push(TAG_BOOKIE);
                put_u64(&mut out, *dead);
                put_u64(&mut out, *target);
            }
            ObsEvent::Repair {
                ledgers,
                entries,
                backlog,
            } => {
                out.push(TAG_REPAIR);
                put_u64(&mut out, *ledgers);
                put_u64(&mut out, *entries);
                put_u64(&mut out, *backlog);
            }
            ObsEvent::Rpc {
                target,
                role,
                latency_us,
                ok,
            } => {
                out.push(TAG_RPC);
                put_u64(&mut out, *target);
                out.push(*role);
                put_u64(&mut out, *latency_us);
                out.push(u8::from(*ok));
            }
        }
    }
    Bytes::from(out)
}

/// Decode one telemetry batch; `None` on any malformation.
pub fn decode_batch(buf: &[u8]) -> Option<(BatchHeader, Vec<(HlcStamp, ObsEvent)>)> {
    let mut r = Reader { buf, pos: 0 };
    if r.u8()? != MAGIC || r.u8()? != VERSION {
        return None;
    }
    let header = BatchHeader {
        node: NodeId(r.u64()?),
        batch_seq: r.u64()?,
        cum_events: r.u64()?,
        count: r.u32()?,
    };
    let mut events = Vec::with_capacity(header.count as usize);
    for _ in 0..header.count {
        let hlc = HlcStamp::from_bytes(r.bytes(HlcStamp::WIRE_LEN)?)?;
        let event = match r.u8()? {
            TAG_SPAN => {
                let len = r.u32()? as usize;
                ObsEvent::Span(telwire::decode_span(r.bytes(len)?)?)
            }
            TAG_METRIC => ObsEvent::Metric {
                name: r.str()?,
                delta: r.u64()?,
            },
            TAG_MEMBERSHIP => ObsEvent::Membership {
                peer: r.u64()?,
                up: r.u8()? != 0,
            },
            TAG_LEASE => ObsEvent::Lease {
                resource: r.str()?,
                owner: r.u64()?,
                epoch: r.u64()?,
            },
            TAG_FENCE => ObsEvent::Fence {
                topic: r.str()?,
                node: r.u64()?,
            },
            TAG_REBUILD => ObsEvent::Rebuild {
                topic: r.str()?,
                node: r.u64()?,
            },
            TAG_BOOKIE => ObsEvent::BookieReplaced {
                dead: r.u64()?,
                target: r.u64()?,
            },
            TAG_REPAIR => ObsEvent::Repair {
                ledgers: r.u64()?,
                entries: r.u64()?,
                backlog: r.u64()?,
            },
            TAG_RPC => ObsEvent::Rpc {
                target: r.u64()?,
                role: r.u8()?,
                latency_us: r.u64()?,
                ok: r.u8()? != 0,
            },
            _ => return None,
        };
        events.push((hlc, event));
    }
    Some((header, events))
}

// -- telemetry agent ---------------------------------------------------------

/// The per-node telemetry shipper: stamps events with the node's skewed
/// HLC, buffers them, and flushes batches to the collector over the
/// fabric network.
pub struct TelemetryAgent {
    node: NodeId,
    hlc: HlcClock,
    skew_us: u64,
    pending: Vec<(HlcStamp, ObsEvent)>,
    batch_max: usize,
    flush_every: Duration,
    sync_every: Duration,
    last_flush: Duration,
    last_sync: Duration,
    next_batch_seq: u64,
    events_sent: u64,
    batches_sent: u64,
    pending_lost: u64,
    last_view: Option<BTreeSet<NodeId>>,
}

impl TelemetryAgent {
    fn new(node: NodeId, cfg: &ObsConfig) -> Self {
        Self {
            node,
            hlc: HlcClock::new(node.raw()),
            skew_us: node_skew_us(node, cfg.skew_max_us),
            pending: Vec::new(),
            batch_max: cfg.batch_max.max(1),
            flush_every: cfg.flush_every,
            sync_every: cfg.sync_every,
            last_flush: Duration::ZERO,
            last_sync: Duration::ZERO,
            next_batch_seq: 0,
            events_sent: 0,
            batches_sent: 0,
            pending_lost: 0,
            last_view: None,
        }
    }

    /// The node this agent runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This node's modeled clock skew, microseconds.
    pub fn skew_us(&self) -> u64 {
        self.skew_us
    }

    /// Events handed to the network so far (counted at send time — the
    /// sender cannot know what the network then drops).
    pub fn events_sent(&self) -> u64 {
        self.events_sent
    }

    /// Events discarded with the process on a crash, before ever being
    /// handed to the network.
    pub fn pending_lost(&self) -> u64 {
        self.pending_lost
    }

    /// The node's physical clock reading: fabric time plus modeled skew.
    fn local_us(&self, now: Duration) -> u64 {
        now.as_micros() as u64 + self.skew_us
    }

    /// Stamp and buffer one event.
    pub fn record(&mut self, now: Duration, event: ObsEvent) {
        let hlc = self.hlc.tick(self.local_us(now));
        self.pending.push((hlc, event));
    }

    /// Diff the node's membership view against the last one, recording
    /// up/down transitions. The first view is the baseline (no events).
    fn observe_view(&mut self, now: Duration, view: &BTreeSet<NodeId>) {
        if let Some(prev) = &self.last_view {
            let mut transitions = Vec::new();
            for &peer in view.difference(prev) {
                transitions.push((peer.raw(), true));
            }
            for &peer in prev.difference(view) {
                transitions.push((peer.raw(), false));
            }
            for (peer, up) in transitions {
                self.record(now, ObsEvent::Membership { peer, up });
            }
        }
        self.last_view = Some(view.clone());
    }

    /// Crash side effect: buffered events die with the process.
    fn on_kill(&mut self) {
        self.pending_lost += self.pending.len() as u64;
        self.pending.clear();
        self.last_view = None;
    }

    fn send_batch(
        &mut self,
        fabric: &ClusterFabric,
        collector: NodeId,
        events: &[(HlcStamp, ObsEvent)],
    ) {
        let header = BatchHeader {
            node: self.node,
            batch_seq: self.next_batch_seq,
            cum_events: self.events_sent + events.len() as u64,
            count: events.len() as u32,
        };
        let body = encode_batch(header, events);
        // Counted as sent whether or not the network later drops it —
        // exactly the asymmetry the collector's gap detection reconciles.
        fabric.send(self.node, collector, 0, TELEMETRY_KIND, body, None);
        self.next_batch_seq += 1;
        self.events_sent += events.len() as u64;
        self.batches_sent += 1;
    }

    /// Flush due batches (size- or time-triggered), plus periodic empty
    /// sync batches so the collector can finalize loss accounting.
    fn flush(&mut self, fabric: &ClusterFabric, collector: NodeId, now: Duration) {
        while self.pending.len() >= self.batch_max {
            let batch: Vec<_> = self.pending.drain(..self.batch_max).collect();
            self.send_batch(fabric, collector, &batch);
            self.last_flush = now;
            self.last_sync = now;
        }
        if !self.pending.is_empty() && now >= self.last_flush + self.flush_every {
            let batch = std::mem::take(&mut self.pending);
            self.send_batch(fabric, collector, &batch);
            self.last_flush = now;
            self.last_sync = now;
        }
        if self.pending.is_empty()
            && self.events_sent > 0
            && now >= self.last_sync + self.sync_every
        {
            self.send_batch(fabric, collector, &[]);
            self.last_sync = now;
        }
    }
}

// -- collector ---------------------------------------------------------------

/// Per-agent receive ledger.
#[derive(Debug, Clone, Copy, Default)]
struct AgentLedger {
    /// Events received (batches deduplicated by sequence number).
    received: u64,
    /// Highest `cum_events` seen from the agent.
    last_cum: u64,
    /// Highest batch sequence processed.
    last_seq: Option<u64>,
    /// Duplicate batches discarded.
    dup_batches: u64,
}

/// Per-`(node, op)` latency aggregation for the cluster health report.
struct OpAgg {
    sketch: KllSketch,
    count: u64,
    errors: u64,
    max_us: f64,
}

/// The collector node's state: merged events, loss ledgers, per-node
/// aggregates, and the grey-failure detector.
pub struct Collector {
    node: NodeId,
    hlc: HlcClock,
    skew_us: u64,
    events: Vec<StampedEvent>,
    events_received: u64,
    batches_received: u64,
    decode_errors: u64,
    agents: HashMap<NodeId, AgentLedger>,
    op_stats: BTreeMap<(u64, String), OpAgg>,
    rpc_sketches: BTreeMap<(u8, u64), KllSketch>,
    grey_min_samples: u64,
    grey_ratio: f64,
    /// node → first time the detector flagged it.
    grey_flags: BTreeMap<u64, Duration>,
}

/// The grey detector's current judgement of one RPC target.
#[derive(Debug, Clone, PartialEq)]
pub struct GreyVerdict {
    /// The judged node.
    pub node: NodeId,
    /// Its role group name (e.g. `broker`).
    pub role: &'static str,
    /// Successful RPC samples folded for it.
    pub samples: u64,
    /// Its p50 RPC latency, microseconds.
    pub p50_us: f64,
    /// The fleet median p50 within its role group, microseconds.
    pub fleet_median_us: f64,
    /// Whether it currently exceeds the grey threshold.
    pub slow: bool,
    /// When the detector first flagged it, if ever.
    pub first_flagged: Option<Duration>,
}

impl Collector {
    fn new(node: NodeId, cfg: &ObsConfig) -> Self {
        Self {
            node,
            hlc: HlcClock::new(node.raw()),
            skew_us: node_skew_us(node, cfg.skew_max_us),
            events: Vec::new(),
            events_received: 0,
            batches_received: 0,
            decode_errors: 0,
            agents: HashMap::new(),
            op_stats: BTreeMap::new(),
            rpc_sketches: BTreeMap::new(),
            grey_min_samples: cfg.grey_min_samples,
            grey_ratio: cfg.grey_ratio,
            grey_flags: BTreeMap::new(),
        }
    }

    /// The collector's fabric node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Total events received (after batch dedup).
    pub fn events_received(&self) -> u64 {
        self.events_received
    }

    /// Batches processed (duplicates excluded).
    pub fn batches_received(&self) -> u64 {
        self.batches_received
    }

    /// Batches that failed to decode.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Events known lost: for each agent, the highest cumulative sent
    /// count it reported minus what actually arrived. Exact once the
    /// agents have synced (see [`ClusterObs::telemetry_synced`]).
    pub fn detected_dropped(&self) -> u64 {
        self.agents
            .values()
            .map(|l| l.last_cum.saturating_sub(l.received))
            .sum()
    }

    /// Ingest one telemetry envelope (non-telemetry kinds are ignored).
    pub fn ingest(&mut self, env: &Envelope, now: Duration) {
        if env.kind != TELEMETRY_KIND {
            return;
        }
        let Some((header, events)) = decode_batch(&env.body) else {
            self.decode_errors += 1;
            return;
        };
        let ledger = self.agents.entry(header.node).or_default();
        // Per-link delivery is FIFO, so a duplicate (same seq) or stale
        // batch always arrives at-or-after the original: drop it.
        if ledger.last_seq.is_some_and(|s| header.batch_seq <= s) {
            ledger.dup_batches += 1;
            return;
        }
        ledger.last_seq = Some(header.batch_seq);
        ledger.last_cum = ledger.last_cum.max(header.cum_events);
        ledger.received += events.len() as u64;
        self.batches_received += 1;
        self.events_received += events.len() as u64;
        let local_us = now.as_micros() as u64 + self.skew_us;
        for (hlc, event) in events {
            // Fold the remote stamp into the collector clock: collector-
            // local annotations order after everything they've seen.
            self.hlc.observe(local_us, hlc);
            self.fold(header.node, hlc, &event, now);
            self.events.push(StampedEvent {
                node: header.node,
                hlc,
                event,
            });
        }
        self.update_grey(now);
    }

    fn fold(&mut self, node: NodeId, _hlc: HlcStamp, event: &ObsEvent, _now: Duration) {
        match event {
            ObsEvent::Span(span) => {
                let key = (node.raw(), span.name.clone());
                let agg = self.op_stats.entry(key).or_insert_with(|| OpAgg {
                    sketch: KllSketch::new(200),
                    count: 0,
                    errors: 0,
                    max_us: 0.0,
                });
                let latency = span.duration_us() as f64;
                agg.sketch.update(latency);
                agg.count += 1;
                agg.max_us = agg.max_us.max(latency);
                if span.attr("outcome") == Some("error") {
                    agg.errors += 1;
                }
            }
            // Only successful RPCs feed the sketches: timeouts to a
            // *dead* node are the heartbeat detector's business; grey
            // means slow-but-answering.
            ObsEvent::Rpc {
                target,
                role,
                latency_us,
                ok: true,
            } => {
                self.rpc_sketches
                    .entry((*role, *target))
                    .or_insert_with(|| KllSketch::new(200))
                    .update(*latency_us as f64);
            }
            _ => {}
        }
    }

    /// Re-judge every RPC target against its role group's fleet median,
    /// recording first-flag times.
    fn update_grey(&mut self, now: Duration) {
        for (node, slow) in self.grey_judgements() {
            if slow {
                self.grey_flags.entry(node).or_insert(now);
            }
        }
    }

    /// `(node, currently-slow)` for every judgeable target.
    fn grey_judgements(&self) -> Vec<(u64, bool)> {
        let mut out = Vec::new();
        let roles: BTreeSet<u8> = self.rpc_sketches.keys().map(|&(r, _)| r).collect();
        for role in roles {
            let group: Vec<(u64, f64)> = self
                .rpc_sketches
                .range((role, 0)..=(role, u64::MAX))
                .filter(|(_, s)| s.total() >= self.grey_min_samples)
                .filter_map(|(&(_, n), s)| s.quantile(0.5).map(|p50| (n, p50)))
                .collect();
            // A median needs a fleet: under 3 judgeable peers there is no
            // "normal" to deviate from.
            if group.len() < 3 {
                continue;
            }
            let mut p50s: Vec<f64> = group.iter().map(|&(_, p)| p).collect();
            p50s.sort_by(|a, b| a.total_cmp(b));
            let median = p50s[p50s.len() / 2];
            for (node, p50) in group {
                out.push((node, median > 0.0 && p50 >= self.grey_ratio * median));
            }
        }
        out
    }

    /// Current verdict for every judgeable RPC target, grouped by role.
    pub fn grey_verdicts(&self) -> Vec<GreyVerdict> {
        let judgements: BTreeMap<u64, bool> = self.grey_judgements().into_iter().collect();
        let mut out = Vec::new();
        for (&(role, node), sketch) in &self.rpc_sketches {
            let Some(p50) = sketch.quantile(0.5) else {
                continue;
            };
            let group_p50s: Vec<f64> = self
                .rpc_sketches
                .range((role, 0)..=(role, u64::MAX))
                .filter(|(_, s)| s.total() >= self.grey_min_samples)
                .filter_map(|(_, s)| s.quantile(0.5))
                .collect();
            let median = {
                let mut p = group_p50s.clone();
                p.sort_by(|a, b| a.total_cmp(b));
                if p.is_empty() {
                    0.0
                } else {
                    p[p.len() / 2]
                }
            };
            out.push(GreyVerdict {
                node: NodeId(node),
                role: role_name(role),
                samples: sketch.total(),
                p50_us: p50,
                fleet_median_us: median,
                slow: judgements.get(&node).copied().unwrap_or(false),
                first_flagged: self.grey_flags.get(&node).copied(),
            });
        }
        out
    }

    /// Nodes ever flagged grey, with first-flag times.
    pub fn grey_flags(&self) -> &BTreeMap<u64, Duration> {
        &self.grey_flags
    }

    /// All merged events, HLC-ordered (the one timeline every observer
    /// agrees on).
    pub fn events(&self) -> Vec<StampedEvent> {
        let mut out = self.events.clone();
        out.sort_by_key(|e| e.hlc);
        out
    }

    /// Reassemble collector-captured spans as [`SpanRecord`]s so
    /// `taureau-prof` can stitch cross-node traces. Subsystem names are
    /// re-interned ([`SpanRecord::system`] is `&'static str`); unknown
    /// systems and attribute keys fall back to `"remote"`.
    pub fn span_records(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for ev in &self.events {
            if let ObsEvent::Span(span) = &ev.event {
                out.push(span_record_from_event(span));
            }
        }
        out.sort_by_key(|s| (s.trace_id.0, s.start));
        out
    }

    /// Cluster-wide health snapshot: per-`(op, node)` latency/error rows,
    /// telemetry-plane counters, and grey flags as active alerts.
    pub fn health_report(&self, now: Duration) -> HealthReport {
        let mut ops = Vec::new();
        for ((node, name), agg) in &self.op_stats {
            ops.push(OpHealth {
                op: name.clone(),
                node: Some(*node),
                count: agg.count,
                p50_us: agg.sketch.quantile(0.50).unwrap_or(0.0),
                p90_us: agg.sketch.quantile(0.90).unwrap_or(0.0),
                p99_us: agg.sketch.quantile(0.99).unwrap_or(0.0),
                max_us: agg.max_us,
                error_rate: if agg.count == 0 {
                    0.0
                } else {
                    agg.errors as f64 / agg.count as f64
                },
            });
        }
        ops.sort_by(|a, b| (&a.op, a.node).cmp(&(&b.op, b.node)));
        let active_alerts = self
            .grey_flags
            .keys()
            .map(|n| format!("grey-node-{n}"))
            .collect();
        HealthReport {
            at: now,
            ops,
            top_functions: Vec::new(),
            counters: vec![
                (
                    "cluster.telemetry_events_received".into(),
                    self.events_received,
                ),
                (
                    "cluster.telemetry_batches_received".into(),
                    self.batches_received,
                ),
                (
                    "cluster.telemetry_dropped_detected".into(),
                    self.detected_dropped(),
                ),
                ("cluster.telemetry_decode_errors".into(), self.decode_errors),
            ],
            active_alerts,
            alerts: Vec::new(),
            histogram_summaries: Vec::new(),
            cold_start_rate: 0.0,
            decode_errors: self.decode_errors,
        }
    }
}

/// Re-intern a wire span into a [`SpanRecord`] (static-str fields).
fn span_record_from_event(span: &SpanEvent) -> SpanRecord {
    fn intern_system(s: &str) -> &'static str {
        match s {
            "taureau-cluster" => "taureau-cluster",
            "taureau-pulsar" => "taureau-pulsar",
            "taureau-faas" => "taureau-faas",
            "taureau-jiffy" => "taureau-jiffy",
            "taureau-bench" => "taureau-bench",
            "taureau-dag" => "taureau-dag",
            _ => "remote",
        }
    }
    fn intern_key(s: &str) -> Option<&'static str> {
        Some(match s {
            "node" => "node",
            "outcome" => "outcome",
            "function" => "function",
            "topic" => "topic",
            "kind" => "kind",
            "request" => "request",
            "bytes" => "bytes",
            _ => return None,
        })
    }
    SpanRecord {
        trace_id: TraceId(span.trace_id),
        span_id: SpanId(span.span_id),
        parent: span.parent.map(SpanId),
        name: span.name.clone(),
        system: intern_system(&span.system),
        start: Duration::from_micros(span.start_us),
        end: Duration::from_micros(span.end_us),
        attrs: span
            .attrs
            .iter()
            .filter_map(|(k, v)| intern_key(k).map(|k| (k, v.clone())))
            .collect(),
    }
}

// -- failure timeline --------------------------------------------------------

/// What kind of node an incident took down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// A broker crash: unavailability until lease + subscription recover.
    Broker,
    /// A bookie crash: durability debt until re-replication drains.
    Bookie,
}

/// Ground truth about one injected fault, supplied by the harness: when
/// the node died and when the *client* first saw the affected workload
/// succeed again. The reconstruction fills in everything between.
#[derive(Debug, Clone)]
pub struct IncidentSpec {
    /// Incident label, e.g. `kill-1`.
    pub id: String,
    /// The node that died.
    pub node: NodeId,
    /// What kind of node it was.
    pub kind: IncidentKind,
    /// Fault injection time.
    pub fault_at: Duration,
    /// Client-observed recovery time.
    pub recovered_at: Duration,
}

/// The phases an unavailability window is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OutagePhase {
    /// Fault → first membership-down report (or in-process crash signal).
    Detection,
    /// Detection → lease moved / bookie replaced.
    Release,
    /// Release → consumer handle rebuilt on the new owner.
    SubscriptionRebuild,
    /// Rebuild/replacement → re-replication backlog drained.
    RereplicationDrain,
    /// Remainder of the window no boundary event explains.
    Unattributed,
}

impl std::fmt::Display for OutagePhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OutagePhase::Detection => "detection",
            OutagePhase::Release => "re-lease",
            OutagePhase::SubscriptionRebuild => "sub-rebuild",
            OutagePhase::RereplicationDrain => "rerepl-drain",
            OutagePhase::Unattributed => "unattributed",
        })
    }
}

/// One reconstructed incident: boundaries, phases, MTTD/MTTR.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Harness label.
    pub id: String,
    /// The dead node.
    pub node: NodeId,
    /// Node kind.
    pub kind: IncidentKind,
    /// Fault injection time (ground truth).
    pub fault_at: Duration,
    /// Client-observed recovery (ground truth).
    pub recovered_at: Duration,
    /// First failure-detection signal, if captured.
    pub detected_at: Option<Duration>,
    /// Lease move / bookie replacement, if captured.
    pub released_at: Option<Duration>,
    /// Subscription rebuild on the new owner, if captured.
    pub rebuilt_at: Option<Duration>,
    /// Re-replication backlog drained, if captured.
    pub drained_at: Option<Duration>,
    /// Phase attribution. Sums to exactly the wall window; the
    /// [`OutagePhase::Unattributed`] entry absorbs what no event explains.
    pub phases: Vec<(OutagePhase, Duration)>,
}

impl Incident {
    /// Total unavailability window (fault → client-observed recovery).
    pub fn wall(&self) -> Duration {
        self.recovered_at.saturating_sub(self.fault_at)
    }

    /// Mean-time-to-detect: fault → first detection signal.
    pub fn mttd(&self) -> Option<Duration> {
        self.detected_at.map(|d| d.saturating_sub(self.fault_at))
    }

    /// Mean-time-to-recover: the full wall window.
    pub fn mttr(&self) -> Duration {
        self.wall()
    }

    /// Time attributed to a named phase (never the whole window unless
    /// events cover it).
    pub fn phase(&self, phase: OutagePhase) -> Duration {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|&(_, d)| d)
            .unwrap_or(Duration::ZERO)
    }

    /// Explained time: everything except [`OutagePhase::Unattributed`].
    /// `explained() ≤ wall()` by construction.
    pub fn explained(&self) -> Duration {
        self.phases
            .iter()
            .filter(|(p, _)| *p != OutagePhase::Unattributed)
            .map(|&(_, d)| d)
            .sum()
    }

    /// Explained fraction of the wall window (1.0 for a zero window).
    pub fn explained_fraction(&self) -> f64 {
        let wall = self.wall().as_nanos();
        if wall == 0 {
            return 1.0;
        }
        self.explained().as_nanos() as f64 / wall as f64
    }
}

/// Per-incident reconstruction over the collector's merged event stream.
#[derive(Debug, Clone, Default)]
pub struct FailureTimeline {
    /// Reconstructed incidents, in spec order.
    pub incidents: Vec<Incident>,
}

impl FailureTimeline {
    /// Fold the HLC-ordered event stream into one record per spec.
    ///
    /// Boundary events are searched within each incident's window and
    /// clamped monotonic into `[fault_at, recovered_at]`, so phase widths
    /// are non-negative and sum exactly to the wall window — a missing
    /// boundary collapses its phase to zero and leaves the remainder
    /// unattributed rather than inventing an explanation.
    pub fn reconstruct(events: &[StampedEvent], specs: &[IncidentSpec]) -> Self {
        let mut sorted: Vec<&StampedEvent> = events.iter().collect();
        sorted.sort_by_key(|e| e.hlc);
        let incidents = specs
            .iter()
            .map(|spec| Self::reconstruct_one(&sorted, spec))
            .collect();
        Self { incidents }
    }

    fn reconstruct_one(sorted: &[&StampedEvent], spec: &IncidentSpec) -> Incident {
        let t0 = spec.fault_at;
        let t_end = spec.recovered_at.max(t0);
        let window = |e: &&&StampedEvent| {
            let t = e.hlc.time();
            t >= t0 && t <= t_end + Duration::from_millis(2)
        };
        let dead = spec.node.raw();
        // First membership-down report for the dead node from any agent.
        let mut detected_at = sorted
            .iter()
            .filter(window)
            .find(|e| matches!(&e.event, ObsEvent::Membership { peer, up: false } if *peer == dead))
            .map(|e| e.hlc.time());
        let (released_at, rebuilt_at, drained_at) = match spec.kind {
            IncidentKind::Broker => {
                let released = sorted
                    .iter()
                    .filter(window)
                    .find(|e| matches!(&e.event, ObsEvent::Lease { owner, .. } if *owner != dead))
                    .map(|e| e.hlc.time());
                let rebuilt = sorted
                    .iter()
                    .filter(window)
                    .filter(|e| released.is_none_or(|r| e.hlc.time() >= r))
                    .find(|e| matches!(&e.event, ObsEvent::Rebuild { node, .. } if *node != dead))
                    .map(|e| e.hlc.time());
                (released, rebuilt, None)
            }
            IncidentKind::Bookie => {
                let replaced = sorted
                    .iter()
                    .filter(window)
                    .find(|e| {
                        matches!(&e.event, ObsEvent::BookieReplaced { dead: d, .. } if *d == dead)
                    })
                    .map(|e| e.hlc.time());
                // The storage tier notices a crashed bookie at write time
                // (in-process signal) — often before heartbeats expire.
                // Replacement implies detection.
                if let Some(r) = replaced {
                    detected_at = Some(detected_at.map_or(r, |d| d.min(r)));
                }
                let drained = sorted
                    .iter()
                    .filter(window)
                    .filter(|e| replaced.is_none_or(|r| e.hlc.time() >= r))
                    .find(|e| matches!(&e.event, ObsEvent::Repair { backlog: 0, .. }))
                    .map(|e| e.hlc.time());
                (replaced, None, drained)
            }
        };
        // Clamp boundaries monotonic into the window: a missing boundary
        // inherits the previous one (zero-width phase).
        let clamp = |t: Option<Duration>, prev: Duration| -> Duration {
            t.map_or(prev, |t| t.clamp(prev, t_end))
        };
        let b_detect = clamp(detected_at, t0);
        let b_release = clamp(released_at, b_detect);
        let b_rebuild = clamp(rebuilt_at, b_release);
        let b_drain = clamp(drained_at, b_rebuild);
        let phases = vec![
            (OutagePhase::Detection, b_detect - t0),
            (OutagePhase::Release, b_release - b_detect),
            (OutagePhase::SubscriptionRebuild, b_rebuild - b_release),
            (OutagePhase::RereplicationDrain, b_drain - b_rebuild),
            (OutagePhase::Unattributed, t_end - b_drain),
        ];
        Incident {
            id: spec.id.clone(),
            node: spec.node,
            kind: spec.kind,
            fault_at: t0,
            recovered_at: t_end,
            detected_at,
            released_at,
            rebuilt_at,
            drained_at,
            phases,
        }
    }

    /// Mean MTTD over incidents that captured a detection signal.
    pub fn mean_mttd(&self) -> Option<Duration> {
        let samples: Vec<Duration> = self.incidents.iter().filter_map(|i| i.mttd()).collect();
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().sum::<Duration>() / samples.len() as u32)
    }

    /// Mean MTTR over all incidents.
    pub fn mean_mttr(&self) -> Option<Duration> {
        if self.incidents.is_empty() {
            return None;
        }
        Some(
            self.incidents.iter().map(|i| i.mttr()).sum::<Duration>() / self.incidents.len() as u32,
        )
    }

    /// The worst explained fraction across incidents (1.0 when empty).
    pub fn min_explained_fraction(&self) -> f64 {
        self.incidents
            .iter()
            .map(|i| i.explained_fraction())
            .fold(1.0, f64::min)
    }

    /// Human-readable incident report (see DESIGN.md §12 for a guided
    /// read-through).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for inc in &self.incidents {
            let _ = writeln!(
                out,
                "incident {} — {} node n{} down at {:.3}s, recovered {:.3}s",
                inc.id,
                match inc.kind {
                    IncidentKind::Broker => "broker",
                    IncidentKind::Bookie => "bookie",
                },
                inc.node.raw(),
                inc.fault_at.as_secs_f64(),
                inc.recovered_at.as_secs_f64(),
            );
            let _ = writeln!(
                out,
                "  MTTD {}  MTTR {:.1}ms  explained {:.1}%",
                inc.mttd().map_or("n/a".to_string(), |d| format!(
                    "{:.1}ms",
                    d.as_secs_f64() * 1e3
                )),
                inc.mttr().as_secs_f64() * 1e3,
                inc.explained_fraction() * 100.0,
            );
            for (phase, width) in &inc.phases {
                if width.is_zero() {
                    continue;
                }
                let wall = inc.wall().max(Duration::from_nanos(1));
                let _ = writeln!(
                    out,
                    "    {:<13} {:>9.1}ms  {:>5.1}%",
                    phase.to_string(),
                    width.as_secs_f64() * 1e3,
                    width.as_nanos() as f64 / wall.as_nanos() as f64 * 100.0,
                );
            }
        }
        out
    }
}

// -- the plane ---------------------------------------------------------------

/// End-to-end loss reconciliation for the telemetry plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossAccounting {
    /// Events handed to the network by all agents.
    pub sent: u64,
    /// Events that arrived at the collector (deduplicated).
    pub received: u64,
    /// Events the collector knows were lost (cumulative-count gaps).
    pub dropped: u64,
    /// Events still buffered on agents (not yet handed to the network).
    pub pending: u64,
    /// Events that died with crashed processes before sending.
    pub pending_lost: u64,
    /// Batches handed to the network.
    pub batches_sent: u64,
    /// Batches processed by the collector.
    pub batches_received: u64,
}

impl LossAccounting {
    /// Whether the books balance exactly: every sent event is either
    /// received or detected-dropped. Requires agents to have synced.
    pub fn exact(&self) -> bool {
        self.sent == self.received + self.dropped
    }
}

/// A fault noted by the stack (used for failover-triggered blackbox
/// dumps; experiments build their own [`IncidentSpec`]s with measured
/// recovery times).
#[derive(Debug, Clone, Copy)]
struct RecordedFault {
    node: NodeId,
    kind: IncidentKind,
    at: Duration,
}

/// The whole observability plane: one agent per service node, one
/// collector node, and the glue that routes tracer output, control-plane
/// events, and membership transitions into agents each tick.
pub struct ClusterObs {
    cfg: ObsConfig,
    collector_node: NodeId,
    client: NodeId,
    agents: BTreeMap<NodeId, TelemetryAgent>,
    collector: Collector,
    sink: TelemetrySink,
    faults: Vec<RecordedFault>,
    dumped_incidents: usize,
    dump_errors: u64,
}

impl ClusterObs {
    /// Attach the plane to a fabric: adds the collector node, creates an
    /// agent for every broker/worker/memory node and the client, and
    /// hooks the fabric tracer's telemetry sink. Call before the stack
    /// starts serving (the collector node must join membership warm-up).
    pub fn new(fabric: &mut ClusterFabric, cfg: ObsConfig, client: NodeId) -> Self {
        let collector_node = fabric.add_node(NodeRole::Collector);
        let mut agents = BTreeMap::new();
        for role in [
            NodeRole::Broker,
            NodeRole::Worker,
            NodeRole::Memory,
            NodeRole::Client,
        ] {
            for node in fabric.nodes_with_role(role) {
                agents.insert(node, TelemetryAgent::new(node, &cfg));
            }
        }
        let sink = TelemetrySink::new(1 << 16);
        fabric.tracer().set_telemetry(sink.clone());
        let collector = Collector::new(collector_node, &cfg);
        Self {
            cfg,
            collector_node,
            client,
            agents,
            collector,
            sink,
            faults: Vec::new(),
            dumped_incidents: 0,
            dump_errors: 0,
        }
    }

    /// The plane's configuration.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// The collector's fabric node.
    pub fn collector_node(&self) -> NodeId {
        self.collector_node
    }

    /// The collector's merged state.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// One node's agent, if it runs one.
    pub fn agent(&self, node: NodeId) -> Option<&TelemetryAgent> {
        self.agents.get(&node)
    }

    /// Route an event to a node's agent (unknown/agent-less nodes fall
    /// back to the client agent — the admin plane's point of view).
    fn record_on(&mut self, node: NodeId, now: Duration, event: ObsEvent) {
        let target = if self.agents.contains_key(&node) {
            node
        } else {
            self.client
        };
        if let Some(agent) = self.agents.get_mut(&target) {
            agent.record(now, event);
        }
    }

    /// One plane tick, run after the stack routes service mail: drains
    /// the tracer sink to the owning nodes' agents, drains control-plane
    /// events, diffs membership views, and flushes due batches.
    pub fn step(&mut self, fabric: &ClusterFabric, pulsar: &mut ClusterPulsar) {
        let now = fabric.now();
        // 1. Locally-traced spans/metrics → the node that recorded them
        // (cluster spans carry a `node` attr; unattributed spans are the
        // client/admin's).
        for ev in self.sink.drain(usize::MAX) {
            match ev {
                TelemetryEvent::Span(record) => {
                    let node = record
                        .attrs
                        .iter()
                        .find(|(k, _)| *k == "node")
                        .and_then(|(_, v)| v.parse::<u64>().ok())
                        .map(NodeId)
                        .unwrap_or(self.client);
                    let span = SpanEvent::from_record(&record);
                    self.record_on(node, now, ObsEvent::Span(span));
                }
                TelemetryEvent::Metric { name, delta } => {
                    self.record_on(self.client, now, ObsEvent::Metric { name, delta });
                }
            }
        }
        // 2. Pulsar control/data-plane events → the node they happened on
        // (bookie-tier events route to the admin/client agent).
        for ev in pulsar.drain_obs_events() {
            let (node, event) = match ev {
                PulsarObsEvent::LeaseMoved {
                    resource,
                    owner,
                    epoch,
                } => (
                    owner,
                    ObsEvent::Lease {
                        resource,
                        owner: owner.raw(),
                        epoch,
                    },
                ),
                PulsarObsEvent::ConsumerRebuilt { topic, node } => (
                    node,
                    ObsEvent::Rebuild {
                        topic,
                        node: node.raw(),
                    },
                ),
                PulsarObsEvent::Fenced { topic, node } => (
                    node,
                    ObsEvent::Fence {
                        topic,
                        node: node.raw(),
                    },
                ),
                PulsarObsEvent::BookieReplaced { dead, target } => (
                    self.client,
                    ObsEvent::BookieReplaced {
                        dead: dead.raw(),
                        target: target.raw(),
                    },
                ),
                PulsarObsEvent::RepairProgress {
                    ledgers,
                    entries,
                    backlog,
                } => (
                    self.client,
                    ObsEvent::Repair {
                        ledgers,
                        entries,
                        backlog,
                    },
                ),
            };
            self.record_on(node, now, event);
        }
        // 3. Membership transitions, as each node's own detector sees
        // them (the collector keeps the *first* report — min detection).
        for (node, view) in fabric.member_views() {
            if let Some(agent) = self.agents.get_mut(&node) {
                agent.observe_view(now, &view);
            }
        }
        // 4. Ship what's due.
        for agent in self.agents.values_mut() {
            if fabric.is_alive(agent.node()) {
                agent.flush(fabric, self.collector_node, now);
            }
        }
    }

    /// Ingest an envelope delivered to the collector node.
    pub fn ingest(&mut self, env: &Envelope, now: Duration) {
        self.collector.ingest(env, now);
    }

    /// Record one client-observed RPC (feeds the grey detector via the
    /// client's agent, like any other event — telemetry about the network
    /// rides the network).
    pub fn record_rpc(
        &mut self,
        now: Duration,
        target: NodeId,
        role: NodeRole,
        latency: Duration,
        ok: bool,
    ) {
        self.record_on(
            self.client,
            now,
            ObsEvent::Rpc {
                target: target.raw(),
                role: role_code(role),
                latency_us: latency.as_micros() as u64,
                ok,
            },
        );
    }

    /// Crash side effect: the node's buffered telemetry dies with it.
    pub fn on_kill(&mut self, node: NodeId, role: Option<NodeRole>, now: Duration) {
        if let Some(agent) = self.agents.get_mut(&node) {
            agent.on_kill();
        }
        match role {
            Some(NodeRole::Broker) => self.faults.push(RecordedFault {
                node,
                kind: IncidentKind::Broker,
                at: now,
            }),
            Some(NodeRole::Bookie) => self.faults.push(RecordedFault {
                node,
                kind: IncidentKind::Bookie,
                at: now,
            }),
            _ => {}
        }
    }

    /// End-to-end loss reconciliation right now.
    pub fn loss_accounting(&self) -> LossAccounting {
        let sent: u64 = self.agents.values().map(|a| a.events_sent).sum();
        let pending: u64 = self.agents.values().map(|a| a.pending.len() as u64).sum();
        let pending_lost: u64 = self.agents.values().map(|a| a.pending_lost).sum();
        let batches_sent: u64 = self.agents.values().map(|a| a.batches_sent).sum();
        LossAccounting {
            sent,
            received: self.collector.events_received(),
            dropped: self.collector.detected_dropped(),
            pending,
            pending_lost,
            batches_sent,
            batches_received: self.collector.batches_received(),
        }
    }

    /// Whether every agent's final cumulative count has reached the
    /// collector — the point at which [`LossAccounting::exact`] is
    /// guaranteed. Dead agents can never sync; revive them first.
    pub fn telemetry_synced(&self) -> bool {
        self.agents
            .values()
            .all(|a| a.events_sent == self.collector.agents.get(&a.node).map_or(0, |l| l.last_cum))
    }

    /// Reconstruct the failure timeline for harness-supplied incidents.
    pub fn timeline(&self, specs: &[IncidentSpec]) -> FailureTimeline {
        FailureTimeline::reconstruct(&self.collector.events(), specs)
    }

    /// Cluster health snapshot (collector state + plane counters).
    pub fn health_report(&self, now: Duration) -> HealthReport {
        self.collector.health_report(now)
    }

    /// Failed blackbox writes.
    pub fn dump_errors(&self) -> u64 {
        self.dump_errors
    }

    /// Dump the reconstructed timeline + collector trace to Jiffy
    /// `/blackbox/<incident>/` — called by the stack when a failover
    /// fires. Recovery times are provisional (`now`): the flight recorder
    /// writes what it knows at dump time. Returns the incident id, or
    /// `None` when there is nothing new to dump.
    pub fn dump_failover(&mut self, jiffy: &Jiffy, now: Duration) -> Option<String> {
        if self.faults.len() <= self.dumped_incidents {
            return None;
        }
        let id = format!("incident-{}", self.dumped_incidents + 1);
        self.dumped_incidents = self.faults.len();
        let specs: Vec<IncidentSpec> = self
            .faults
            .iter()
            .enumerate()
            .map(|(i, f)| IncidentSpec {
                id: format!("fault-{}", i + 1),
                node: f.node,
                kind: f.kind,
                fault_at: f.at,
                recovered_at: now,
            })
            .collect();
        let timeline = self.timeline(&specs);
        let loss = self.loss_accounting();
        let mut summary = timeline.render_text();
        summary.push_str(&format!(
            "telemetry: sent={} received={} dropped={} pending={} pending_lost={}\n",
            loss.sent, loss.received, loss.dropped, loss.pending, loss.pending_lost
        ));
        for verdict in self.collector.grey_verdicts() {
            if verdict.slow {
                summary.push_str(&format!(
                    "grey: {} n{} p50 {:.0}us vs fleet median {:.0}us\n",
                    verdict.role,
                    verdict.node.raw(),
                    verdict.p50_us,
                    verdict.fleet_median_us
                ));
            }
        }
        let trace_json = render_trace_json(&self.collector.span_records());
        // Blackbox writes over an instrumented Jiffy must not emit
        // telemetry about themselves.
        let result = suppress_telemetry(|| -> Result<(), JiffyError> {
            let base = format!("/blackbox/{id}");
            jiffy
                .create_file(format!("{base}/timeline.txt").as_str())?
                .append(summary.as_bytes())?;
            jiffy
                .create_file(format!("{base}/trace.json").as_str())?
                .append(trace_json.as_bytes())?;
            Ok(())
        });
        if result.is_err() {
            self.dump_errors += 1;
            return None;
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(node: u64, us: u64) -> HlcStamp {
        HlcStamp {
            physical_us: us,
            logical: 0,
            node,
        }
    }

    fn ev(node: u64, us: u64, event: ObsEvent) -> StampedEvent {
        StampedEvent {
            node: NodeId(node),
            hlc: stamp(node, us),
            event,
        }
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn batch_wire_roundtrip_and_total_decode() {
        let events = vec![
            (
                stamp(3, 1_000),
                ObsEvent::Span(SpanEvent {
                    trace_id: 7,
                    span_id: 8,
                    parent: Some(6),
                    system: "taureau-cluster".into(),
                    name: "cluster.pub".into(),
                    start_us: 900,
                    end_us: 1_000,
                    attrs: vec![("node".into(), "3".into())],
                }),
            ),
            (
                stamp(3, 1_001),
                ObsEvent::Metric {
                    name: "pulsar.publishes".into(),
                    delta: 2,
                },
            ),
            (stamp(3, 1_002), ObsEvent::Membership { peer: 5, up: false }),
            (
                stamp(3, 1_003),
                ObsEvent::Lease {
                    resource: "topic/t".into(),
                    owner: 2,
                    epoch: 9,
                },
            ),
            (
                stamp(3, 1_004),
                ObsEvent::Fence {
                    topic: "t".into(),
                    node: 1,
                },
            ),
            (
                stamp(3, 1_005),
                ObsEvent::Rebuild {
                    topic: "t".into(),
                    node: 2,
                },
            ),
            (
                stamp(3, 1_006),
                ObsEvent::BookieReplaced { dead: 6, target: 7 },
            ),
            (
                stamp(3, 1_007),
                ObsEvent::Repair {
                    ledgers: 4,
                    entries: 64,
                    backlog: 0,
                },
            ),
            (
                stamp(3, 1_008),
                ObsEvent::Rpc {
                    target: 2,
                    role: 0,
                    latency_us: 1_500,
                    ok: true,
                },
            ),
        ];
        let header = BatchHeader {
            node: NodeId(3),
            batch_seq: 11,
            cum_events: 120,
            count: events.len() as u32,
        };
        let bytes = encode_batch(header, &events);
        let (h2, e2) = decode_batch(&bytes).expect("roundtrip");
        assert_eq!(h2, header);
        assert_eq!(e2, events);
        // Total decoders: truncation and garbage yield None, not panics.
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(decode_batch(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        assert!(decode_batch(b"not a batch").is_none());
    }

    #[test]
    fn gap_detection_makes_loss_accounting_exact() {
        let cfg = ObsConfig::default();
        let mut collector = Collector::new(NodeId(9), &cfg);
        let agent = NodeId(1);
        let deliver = |c: &mut Collector, seq: u64, cum: u64, n: usize| {
            let events: Vec<(HlcStamp, ObsEvent)> = (0..n)
                .map(|i| {
                    (
                        stamp(1, 1_000 + seq * 100 + i as u64),
                        ObsEvent::Membership { peer: 2, up: true },
                    )
                })
                .collect();
            let header = BatchHeader {
                node: agent,
                batch_seq: seq,
                cum_events: cum,
                count: n as u32,
            };
            let body = encode_batch(header, &events);
            let env = Envelope {
                from: agent,
                to: NodeId(9),
                seq,
                req: 0,
                kind: TELEMETRY_KIND.to_string(),
                body,
                ctx: None,
            };
            c.ingest(&env, ms(seq + 1));
        };
        // Batches 0 (3 events) and 2 (4 events) arrive; batch 1 (5
        // events) was dropped by the network; batch 2 is duplicated.
        deliver(&mut collector, 0, 3, 3);
        deliver(&mut collector, 2, 12, 4);
        deliver(&mut collector, 2, 12, 4); // dup: ignored
        assert_eq!(collector.events_received(), 7);
        assert_eq!(collector.detected_dropped(), 5);
        // A final sync batch (0 events, cum still 12) changes nothing —
        // the books already balance: 12 sent = 7 received + 5 dropped.
        deliver(&mut collector, 3, 12, 0);
        assert_eq!(collector.detected_dropped(), 5);
        assert_eq!(collector.batches_received(), 3);
    }

    #[test]
    fn grey_detector_flags_slow_node_only() {
        let cfg = ObsConfig::default();
        let mut collector = Collector::new(NodeId(9), &cfg);
        // Role 0 fleet: nodes 0..4 at ~1ms p50, node 3 at ~9ms.
        for round in 0..30u64 {
            let seq = round;
            let events: Vec<(HlcStamp, ObsEvent)> = (0..5u64)
                .map(|n| {
                    (
                        stamp(4, 10_000 + round * 50 + n),
                        ObsEvent::Rpc {
                            target: n,
                            role: 0,
                            latency_us: if n == 3 { 9_000 } else { 1_000 + n * 20 },
                            ok: true,
                        },
                    )
                })
                .collect();
            let header = BatchHeader {
                node: NodeId(4),
                batch_seq: seq,
                cum_events: (seq + 1) * 5,
                count: 5,
            };
            let env = Envelope {
                from: NodeId(4),
                to: NodeId(9),
                seq,
                req: 0,
                kind: TELEMETRY_KIND.to_string(),
                body: encode_batch(header, &events),
                ctx: None,
            };
            collector.ingest(&env, ms(round + 1));
        }
        let verdicts = collector.grey_verdicts();
        let slow: Vec<u64> = verdicts
            .iter()
            .filter(|v| v.slow)
            .map(|v| v.node.raw())
            .collect();
        assert_eq!(slow, vec![3], "verdicts: {verdicts:?}");
        assert!(collector.grey_flags().contains_key(&3));
        assert!(verdicts.iter().all(|v| v.role == "broker"));
        // Healthy nodes were never flagged.
        for v in &verdicts {
            if v.node.raw() != 3 {
                assert!(v.first_flagged.is_none(), "{v:?}");
            }
        }
    }

    #[test]
    fn timeline_attribution_explained_is_bounded_by_wall() {
        // Broker incident: kill at 100ms, detected 180ms, lease 320ms,
        // rebuild 340ms, client recovery 345ms.
        let events = vec![
            ev(2, 180_000, ObsEvent::Membership { peer: 1, up: false }),
            ev(
                2,
                320_000,
                ObsEvent::Lease {
                    resource: "topic/t".into(),
                    owner: 2,
                    epoch: 3,
                },
            ),
            ev(
                2,
                340_000,
                ObsEvent::Rebuild {
                    topic: "t".into(),
                    node: 2,
                },
            ),
        ];
        let spec = IncidentSpec {
            id: "kill-1".into(),
            node: NodeId(1),
            kind: IncidentKind::Broker,
            fault_at: ms(100),
            recovered_at: ms(345),
        };
        let timeline = FailureTimeline::reconstruct(&events, &[spec]);
        let inc = &timeline.incidents[0];
        assert_eq!(inc.mttd(), Some(ms(80)));
        assert_eq!(inc.mttr(), ms(245));
        assert_eq!(inc.phase(OutagePhase::Detection), ms(80));
        assert_eq!(inc.phase(OutagePhase::Release), ms(140));
        assert_eq!(inc.phase(OutagePhase::SubscriptionRebuild), ms(20));
        assert_eq!(inc.phase(OutagePhase::Unattributed), ms(5));
        assert!(inc.explained() <= inc.wall());
        let total: Duration = inc.phases.iter().map(|&(_, d)| d).sum();
        assert_eq!(total, inc.wall(), "phases must partition the window");
        assert!((inc.explained_fraction() - 240.0 / 245.0).abs() < 1e-9);
        let text = timeline.render_text();
        assert!(text.contains("kill-1"));
        assert!(text.contains("re-lease"));
    }

    #[test]
    fn timeline_missing_events_stay_unattributed() {
        // No boundary events captured at all: nothing explained, nothing
        // invented.
        let spec = IncidentSpec {
            id: "kill-2".into(),
            node: NodeId(1),
            kind: IncidentKind::Broker,
            fault_at: ms(100),
            recovered_at: ms(400),
        };
        let timeline = FailureTimeline::reconstruct(&[], &[spec]);
        let inc = &timeline.incidents[0];
        assert_eq!(inc.explained(), Duration::ZERO);
        assert_eq!(inc.phase(OutagePhase::Unattributed), ms(300));
        assert_eq!(inc.explained_fraction(), 0.0);
        assert!(inc.mttd().is_none());
    }

    #[test]
    fn timeline_bookie_uses_replacement_as_detection() {
        // The storage tier replaced the bookie (write-time crash signal)
        // before heartbeats expired; repair drains at 500ms.
        let events = vec![
            ev(4, 150_000, ObsEvent::BookieReplaced { dead: 6, target: 7 }),
            ev(4, 210_000, ObsEvent::Membership { peer: 6, up: false }),
            ev(
                4,
                300_000,
                ObsEvent::Repair {
                    ledgers: 4,
                    entries: 40,
                    backlog: 8,
                },
            ),
            ev(
                4,
                500_000,
                ObsEvent::Repair {
                    ledgers: 4,
                    entries: 40,
                    backlog: 0,
                },
            ),
        ];
        let spec = IncidentSpec {
            id: "bookie-1".into(),
            node: NodeId(6),
            kind: IncidentKind::Bookie,
            fault_at: ms(120),
            recovered_at: ms(500),
        };
        let timeline = FailureTimeline::reconstruct(&events, &[spec]);
        let inc = &timeline.incidents[0];
        assert_eq!(inc.mttd(), Some(ms(30)), "replacement implies detection");
        assert_eq!(inc.phase(OutagePhase::Detection), ms(30));
        assert_eq!(inc.phase(OutagePhase::RereplicationDrain), ms(350));
        assert_eq!(inc.phase(OutagePhase::Unattributed), Duration::ZERO);
        assert!((inc.explained_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn span_records_reassemble_for_prof() {
        let span = SpanEvent {
            trace_id: 1,
            span_id: 2,
            parent: None,
            system: "taureau-faas".into(),
            name: "faas.invoke".into(),
            start_us: 100,
            end_us: 300,
            attrs: vec![
                ("function".into(), "thumb".into()),
                ("weird-key".into(), "dropped".into()),
            ],
        };
        let record = span_record_from_event(&span);
        assert_eq!(record.system, "taureau-faas");
        assert_eq!(record.trace_id, TraceId(1));
        assert_eq!(record.attrs, vec![("function", "thumb".to_string())]);
        let unknown = SpanEvent {
            system: "someday-system".into(),
            ..span
        };
        assert_eq!(span_record_from_event(&unknown).system, "remote");
    }

    #[test]
    fn node_skew_is_deterministic_and_bounded() {
        for n in 0..64u64 {
            let s = node_skew_us(NodeId(n), 500);
            assert!(s <= 500);
            assert_eq!(s, node_skew_us(NodeId(n), 500));
        }
        // Not all equal (otherwise skew tests nothing).
        let distinct: BTreeSet<u64> = (0..16).map(|n| node_skew_us(NodeId(n), 500)).collect();
        assert!(distinct.len() > 4);
        assert_eq!(node_skew_us(NodeId(3), 0), 0);
    }
}
