//! The cluster fabric: nodes, roles, and the virtual-time tick loop that
//! glues transport, membership, and the control plane together.
//!
//! The fabric owns the shared [`VirtualClock`] and the [`SimNet`] and
//! advances them in lock-step, so service-observed latency (clock reads)
//! and network delivery (net schedule) agree on what "now" means. Each
//! `tick`:
//!
//! 1. every live node's [`MemberAgent`] heartbeats if due,
//! 2. the net advances, delivering due envelopes,
//! 3. delivered envelopes are routed — heartbeats into the receiving
//!    agent, everything else into the node's service mailbox,
//! 4. the observer's membership view feeds the [`ControlPlane`], bumping
//!    the cluster epoch on change.
//!
//! Killing a node stops its heartbeats and discards its mail (crashed
//! processes do not drain sockets); the rest of the cluster finds out the
//! only way it can — silence past the failure timeout.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use taureau_core::clock::{Clock, SharedClock, VirtualClock};
use taureau_core::id::NodeId;
use taureau_core::trace::{SpanContext, Tracer};

use crate::membership::{ControlPlane, MemberAgent, MembershipConfig, HEARTBEAT_KIND};
use crate::transport::{Envelope, SimNet};

/// What a node does for a living. Roles drive lease candidacy (topics go
/// to brokers) and the stack's crash side effects (killing a bookie node
/// crashes its `Bookie`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Pulsar broker (stateless serving layer; lease candidate).
    Broker,
    /// BookKeeper storage node.
    Bookie,
    /// Jiffy memory node.
    Memory,
    /// FaaS worker host.
    Worker,
    /// Client / load generator.
    Client,
    /// Telemetry collector (the observability plane's sink node).
    Collector,
}

struct NodeInfo {
    role: NodeRole,
    alive: bool,
    agent: MemberAgent,
    mail: VecDeque<Envelope>,
}

/// The simulated cluster of nodes. Single-threaded driver over virtual
/// time; deterministic given the seed and the kill/fault schedule.
pub struct ClusterFabric {
    clock: Arc<VirtualClock>,
    net: SimNet,
    mcfg: MembershipConfig,
    nodes: Vec<NodeInfo>,
    control: Arc<Mutex<ControlPlane>>,
    tracer: Tracer,
}

impl ClusterFabric {
    /// Empty fabric with the default failure detector.
    pub fn new(seed: u64) -> Self {
        Self::with_membership(seed, MembershipConfig::default())
    }

    /// Empty fabric with explicit failure-detector tuning.
    pub fn with_membership(seed: u64, mcfg: MembershipConfig) -> Self {
        let clock = VirtualClock::shared();
        let shared: SharedClock = clock.clone();
        let tracer = Tracer::new(shared);
        Self {
            clock,
            net: SimNet::new(seed),
            mcfg,
            nodes: Vec::new(),
            control: Arc::new(Mutex::new(ControlPlane::new())),
            tracer,
        }
    }

    /// The shared virtual clock (hand this to services so their latency
    /// measurements live in fabric time).
    pub fn clock(&self) -> Arc<VirtualClock> {
        self.clock.clone()
    }

    /// The network, for fault injection.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// The shared control plane (lease table + authoritative view).
    pub fn control(&self) -> Arc<Mutex<ControlPlane>> {
        self.control.clone()
    }

    /// The fabric-wide tracer. All services share it so one trace can
    /// cross nodes.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.clock.now()
    }

    /// Add a node. It knows every existing node as a peer (full-mesh
    /// heartbeating) and vice versa.
    pub fn add_node(&mut self, role: NodeRole) -> NodeId {
        let id = NodeId(self.nodes.len() as u64);
        let now = self.now();
        let mut agent = MemberAgent::new(id, self.mcfg);
        let peers: Vec<NodeId> = (0..self.nodes.len() as u64).map(NodeId).collect();
        agent.set_peers(peers, now);
        self.nodes.push(NodeInfo {
            role,
            alive: true,
            agent,
            mail: VecDeque::new(),
        });
        let all: Vec<NodeId> = (0..self.nodes.len() as u64).map(NodeId).collect();
        for (i, n) in self.nodes.iter_mut().enumerate() {
            let peers: Vec<NodeId> = all
                .iter()
                .copied()
                .filter(|&p| p != NodeId(i as u64))
                .collect();
            n.agent.set_peers(peers, now);
        }
        id
    }

    /// All nodes with a role, in id order.
    pub fn nodes_with_role(&self, role: NodeRole) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.role == role)
            .map(|(i, _)| NodeId(i as u64))
            .collect()
    }

    /// A node's role.
    pub fn role(&self, node: NodeId) -> Option<NodeRole> {
        self.nodes.get(node.raw() as usize).map(|n| n.role)
    }

    /// Whether the node is actually up (ground truth — the failure
    /// detector's *belief* lives in the control plane view).
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.get(node.raw() as usize).is_some_and(|n| n.alive)
    }

    /// Crash a node: heartbeats stop, queued and in-flight mail to it is
    /// lost, services must stop answering for it. Detection is *not*
    /// instantaneous — peers notice after the failure timeout.
    pub fn kill(&mut self, node: NodeId) {
        if let Some(n) = self.nodes.get_mut(node.raw() as usize) {
            n.alive = false;
            n.mail.clear();
        }
        self.net.clear_inbox(node);
    }

    /// Bring a crashed node back (a replacement process on the same
    /// address). Peers re-admit it as soon as heartbeats resume.
    pub fn revive(&mut self, node: NodeId) {
        if let Some(n) = self.nodes.get_mut(node.raw() as usize) {
            n.alive = true;
        }
    }

    /// Send a service message from one node to another. Dead senders
    /// cannot send. Returns whether the network accepted it (a partition
    /// refuses at the edge; drops downstream are invisible here).
    pub fn send(
        &self,
        from: NodeId,
        to: NodeId,
        req: u64,
        kind: impl Into<String>,
        body: Bytes,
        ctx: Option<SpanContext>,
    ) -> bool {
        if !self.is_alive(from) {
            return false;
        }
        self.net.send(from, to, req, kind, body, ctx).is_some()
    }

    /// Each live node's current *local* membership view — the peers it
    /// believes alive right now, from its own heartbeat evidence. This is
    /// per-node belief, not the authoritative control-plane view: the
    /// observability agents diff it tick to tick to report membership
    /// transitions as each node sees them.
    pub fn member_views(&self) -> Vec<(NodeId, BTreeSet<NodeId>)> {
        let now = self.now();
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| (NodeId(i as u64), n.agent.view(now)))
            .collect()
    }

    /// Drain a node's service mailbox (dead nodes yield nothing).
    pub fn mail(&mut self, node: NodeId) -> Vec<Envelope> {
        match self.nodes.get_mut(node.raw() as usize) {
            Some(n) if n.alive => n.mail.drain(..).collect(),
            _ => Vec::new(),
        }
    }

    /// Advance the cluster by `dt`: heartbeats, network delivery, mail
    /// routing, membership + epoch maintenance. Returns `true` when the
    /// authoritative view changed this tick.
    pub fn tick(&mut self, dt: Duration) -> bool {
        let now = self.now();
        for n in self.nodes.iter_mut() {
            if n.alive {
                n.agent.maybe_heartbeat(now, &self.net);
            }
        }
        self.clock.advance(dt);
        self.net.advance(dt);
        let now = self.now();
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u64);
            let delivered = self.net.drain(id);
            let n = &mut self.nodes[i];
            if !n.alive {
                continue; // a dead node's NIC drops everything on the floor
            }
            for env in delivered {
                // Any traffic proves the sender was alive when it sent.
                n.agent.observe(env.from, now);
                if env.kind != HEARTBEAT_KIND {
                    n.mail.push_back(env);
                }
            }
        }
        // The authoritative view is the union of what live nodes see of
        // each other: node X is in the view iff some live node heard from
        // it recently (X's own vote does not keep it alive — a partitioned
        // node always believes in itself).
        let mut view: BTreeSet<NodeId> = BTreeSet::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            let id = NodeId(i as u64);
            for p in n.agent.view(now) {
                if p != id {
                    view.insert(p);
                }
            }
            view.insert(id); // live nodes are candidates for others to confirm
        }
        // Intersect with "someone else heard from it" for clusters > 1.
        if self.nodes.iter().filter(|n| n.alive).count() > 1 {
            let mut confirmed: BTreeSet<NodeId> = BTreeSet::new();
            for (i, n) in self.nodes.iter().enumerate() {
                if !n.alive {
                    continue;
                }
                let id = NodeId(i as u64);
                for p in n.agent.view(now) {
                    if p != id {
                        confirmed.insert(p);
                    }
                }
            }
            view = confirmed;
        }
        self.control.lock().update_view(view)
    }

    /// Run `tick` repeatedly with the given step until `total` has
    /// elapsed.
    pub fn run_for(&mut self, total: Duration, step: Duration) {
        let end = self.now() + total;
        while self.now() < end {
            self.tick(step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn heartbeats_converge_to_full_view() {
        let mut f = ClusterFabric::new(1);
        for _ in 0..4 {
            f.add_node(NodeRole::Broker);
        }
        f.run_for(ms(200), ms(5));
        let cp = f.control();
        let view = cp.lock().view().clone();
        assert_eq!(view.len(), 4, "view: {view:?}");
    }

    #[test]
    fn kill_is_detected_after_timeout_and_revive_readmits() {
        let mut f = ClusterFabric::new(2);
        let nodes: Vec<NodeId> = (0..3).map(|_| f.add_node(NodeRole::Broker)).collect();
        f.run_for(ms(200), ms(5));
        f.kill(nodes[1]);
        // Not yet detected: view still includes the corpse briefly.
        f.tick(ms(5));
        f.run_for(ms(300), ms(5));
        assert!(!f.control().lock().is_alive(nodes[1]));
        assert!(f.control().lock().is_alive(nodes[0]));
        let epoch_after_death = f.control().lock().epoch();
        f.revive(nodes[1]);
        f.run_for(ms(200), ms(5));
        assert!(f.control().lock().is_alive(nodes[1]));
        assert!(f.control().lock().epoch() > epoch_after_death);
    }

    #[test]
    fn service_mail_routes_and_dies_with_the_node() {
        let mut f = ClusterFabric::new(3);
        let a = f.add_node(NodeRole::Client);
        let b = f.add_node(NodeRole::Broker);
        assert!(f.send(a, b, 7, "pub", Bytes::from_static(b"x"), None));
        f.run_for(ms(10), ms(1));
        let mail = f.mail(b);
        assert_eq!(mail.len(), 1);
        assert_eq!(mail[0].req, 7);
        assert_eq!(mail[0].kind, "pub");
        // Mail sent to a node killed before delivery is lost.
        assert!(f.send(a, b, 8, "pub", Bytes::new(), None));
        f.kill(b);
        f.run_for(ms(10), ms(1));
        assert!(f.mail(b).is_empty());
        // Dead nodes cannot send.
        assert!(!f.send(b, a, 9, "resp", Bytes::new(), None));
    }

    #[test]
    fn virtual_clock_and_net_move_together() {
        let mut f = ClusterFabric::new(4);
        f.add_node(NodeRole::Client);
        let before = f.now();
        f.tick(ms(25));
        assert_eq!(f.now(), before + ms(25));
        assert_eq!(f.net().now(), f.now());
    }
}
