//! `taureau-cluster`: a simulated multi-node fabric for the Le Taureau
//! stack — fault-injectable transport, heartbeat membership with
//! epoch-fenced leases, and clustered Pulsar / Jiffy / FaaS services
//! with failover and background re-replication.
//!
//! The paper's serverless argument is an argument about *fleets*: Pulsar
//! brokers are stateless so any of them can serve a topic after a crash
//! (§4.3); BookKeeper keeps entries available because replicas outlive
//! any single bookie; Jiffy capacity grows and shrinks with memory
//! nodes. The single-process crates model each subsystem's logic; this
//! crate adds the missing dimension — **which node** runs what, what
//! happens when that node dies, and what the wire between nodes does to
//! latency and delivery.
//!
//! Layering, bottom up:
//!
//! - [`transport`]: [`transport::SimNet`] — deterministic virtual-time
//!   message passing with per-link latency/jitter/drop/dup faults and
//!   partitions. Per-link FIFO is guaranteed and property-tested.
//! - [`membership`]: heartbeat failure detection
//!   ([`membership::MemberAgent`]) and the lease table
//!   ([`membership::ControlPlane`]) whose epochs fence deposed owners.
//! - [`fabric`]: [`fabric::ClusterFabric`] — nodes with roles, the tick
//!   loop, kill/revive.
//! - [`pulsar_cluster`], [`jiffy_cluster`], [`faas_cluster`]: the
//!   subsystems mapped onto fabric nodes, with failover, block
//!   migration, and worker routing respectively.
//! - [`stack`]: [`stack::ClusterStack`] — the composed deployment a
//!   client talks to through the network, used by experiment e28 and the
//!   `stack_cluster` integration tests.
//! - [`obs`]: the cluster observability plane — per-node telemetry
//!   agents shipping HLC-stamped batches over the faulty network to a
//!   collector node, failure-timeline reconstruction with MTTD/MTTR
//!   phase attribution, grey-failure detection, and exact telemetry
//!   loss accounting. Used by experiment e29.

pub mod error;
pub mod faas_cluster;
pub mod fabric;
pub mod jiffy_cluster;
pub mod membership;
pub mod obs;
pub mod pulsar_cluster;
pub mod stack;
pub mod transport;
pub mod wire;

pub use error::ClusterError;
pub use faas_cluster::ClusterFaas;
pub use fabric::{ClusterFabric, NodeRole};
pub use jiffy_cluster::JiffyFabric;
pub use membership::{ControlPlane, Lease, MemberAgent, MembershipConfig};
pub use obs::{
    ClusterObs, Collector, FailureTimeline, GreyVerdict, Incident, IncidentKind, IncidentSpec,
    LossAccounting, ObsConfig, ObsEvent, OutagePhase, StampedEvent, TelemetryAgent,
};
pub use pulsar_cluster::{ClusterPulsar, MaintenanceReport, PulsarObsEvent};
pub use stack::{ClusterMessage, ClusterStack, ClusterStackConfig};
pub use transport::{Envelope, LinkFaults, NetStats, SimNet};
