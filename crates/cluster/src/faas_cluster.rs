//! FaaS workers mapped onto fabric nodes.
//!
//! Each worker node hosts a full [`FaasPlatform`] (its own warm-container
//! pool and billing meter). The stack routes invocations to live workers
//! round-robin and fails over to the next worker when one is dead or
//! unreachable — the paper's observation that function invocations are
//! stateless makes worker failover trivial compared to broker failover:
//! there is no lease to move, only warm capacity to lose (the replacement
//! worker pays cold starts).
//!
//! The envelope's [`SpanContext`] rides into
//! [`FaasPlatform::invoke_traced`], so an invocation triggered by a
//! message that survived a broker failover still joins the message's
//! original trace.

use std::collections::HashMap;

use bytes::Bytes;
use taureau_core::id::NodeId;
use taureau_faas::{FaasPlatform, FunctionSpec, PlatformConfig};

use crate::error::{ClusterError, Result};
use crate::fabric::{ClusterFabric, NodeRole};
use crate::transport::Envelope;
use crate::wire;

/// The clustered FaaS tier.
pub struct ClusterFaas {
    workers: HashMap<NodeId, FaasPlatform>,
    order: Vec<NodeId>,
}

impl ClusterFaas {
    /// Deploy `n` worker nodes, each with its own platform on the fabric
    /// clock and tracer.
    pub fn new(fabric: &mut ClusterFabric, n: usize, cfg: PlatformConfig) -> Self {
        let clock = fabric.clock();
        let tracer = fabric.tracer().clone();
        let mut workers = HashMap::new();
        let mut order = Vec::new();
        for _ in 0..n {
            let node = fabric.add_node(NodeRole::Worker);
            let p = FaasPlatform::new(cfg.clone(), clock.clone());
            p.set_tracer(tracer.clone());
            workers.insert(node, p);
            order.push(node);
        }
        Self { workers, order }
    }

    /// Worker fabric nodes, in creation order.
    pub fn worker_nodes(&self) -> &[NodeId] {
        &self.order
    }

    /// The platform running on a worker node.
    pub fn platform(&self, node: NodeId) -> Option<&FaasPlatform> {
        self.workers.get(&node)
    }

    /// Register a function on every worker (fleet-wide deployment).
    pub fn register(&self, spec: FunctionSpec) -> Result<()> {
        for p in self.workers.values() {
            p.register(spec.clone())
                .map_err(|e| ClusterError::Remote(e.to_string()))?;
        }
        Ok(())
    }

    /// Live workers after `preferred`, wrapping — the failover order the
    /// stack walks when invoking.
    pub fn route(&self, fabric: &ClusterFabric, preferred: usize) -> Vec<NodeId> {
        let n = self.order.len();
        (0..n)
            .map(|i| self.order[(preferred + i) % n])
            .filter(|&w| fabric.is_alive(w))
            .collect()
    }

    /// Handle one `invoke` envelope on a worker node, responding with the
    /// handler output (or the platform error).
    pub fn handle(&mut self, fabric: &ClusterFabric, env: &Envelope) {
        let node = env.to;
        let Some(platform) = self.workers.get(&node) else {
            return;
        };
        if env.kind != "invoke" {
            return;
        }
        let reply = (|| -> Result<Vec<Bytes>> {
            let frames = wire::dec_n(&env.body, 2)?;
            let function = wire::as_str(&frames[0])?;
            let res = platform
                .invoke_traced(&function, frames[1].clone(), env.ctx)
                .map_err(|e| ClusterError::Remote(e.to_string()))?;
            Ok(vec![res.output])
        })();
        let body = match reply {
            Ok(frames) => {
                let mut all: Vec<Bytes> = vec![Bytes::from_static(b"ok")];
                all.extend(frames);
                wire::enc(&all)
            }
            Err(e) => wire::enc(&[Bytes::from_static(b"err"), Bytes::from(e.to_string())]),
        };
        fabric.send(node, env.from, env.req, "resp", body, env.ctx);
    }
}
