//! Property tests for the cluster fabric's two foundational guarantees:
//!
//! 1. **Per-link FIFO**: whatever the fault schedule does — latency,
//!    jitter, drops, duplicates, partitions — the messages a link
//!    *delivers* are never reordered. The delivered sequence numbers on
//!    any directed link are non-decreasing, and strictly increasing once
//!    duplicates are collapsed.
//! 2. **Partition-heal convergence**: after an arbitrary sequence of
//!    partitions ends with a heal and the cluster runs quietly, every
//!    live node's membership view converges to the same single view —
//!    the full live set.
//! 3. **HLC causal ordering**: hybrid logical clock stamps order every
//!    send before its receive in the merged timeline, whatever the
//!    SimNet delivery delays and per-node clock skews do — the
//!    observability plane's merged event stream depends on it.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;
use proptest::collection::vec;
use proptest::prelude::*;

use taureau_cluster::fabric::{ClusterFabric, NodeRole};
use taureau_cluster::membership::MembershipConfig;
use taureau_cluster::transport::{LinkFaults, SimNet};
use taureau_core::id::NodeId;
use taureau_core::trace::{HlcClock, HlcStamp};

/// One step of an arbitrary fault schedule.
#[derive(Debug, Clone)]
enum FaultStep {
    /// Send a message on link (from, to) out of 4 nodes.
    Send(u8, u8),
    /// Advance time by this many milliseconds.
    Advance(u8),
    /// Re-roll the default fault model.
    Faults {
        drop_pct: u8,
        dup_pct: u8,
        jitter_ms: u8,
    },
    /// Split nodes {0,1} | {2,3}.
    PartitionHalves,
    /// Heal any partition.
    Heal,
}

fn fault_step() -> impl Strategy<Value = FaultStep> {
    prop_oneof![
        (0u8..4, 0u8..4).prop_map(|(a, b)| FaultStep::Send(a, b)),
        (1u8..20).prop_map(FaultStep::Advance),
        (0u8..60, 0u8..60, 0u8..10).prop_map(|(drop_pct, dup_pct, jitter_ms)| FaultStep::Faults {
            drop_pct,
            dup_pct,
            jitter_ms
        }),
        Just(FaultStep::PartitionHalves),
        Just(FaultStep::Heal),
    ]
}

proptest! {
    /// Delivered messages on every directed link carry non-decreasing
    /// per-link sequence numbers (FIFO), with repeats only from
    /// duplication — under any schedule of sends, advances, fault
    /// re-rolls, partitions, and heals.
    #[test]
    fn delivered_messages_are_per_link_fifo(
        seed in any::<u64>(),
        steps in vec(fault_step(), 1..120),
    ) {
        let net = SimNet::new(seed);
        let mut delivered: HashMap<(NodeId, NodeId), Vec<u64>> = HashMap::new();
        let mut drain_all = |net: &SimNet| {
            for node in 0..4u64 {
                for env in net.drain(NodeId(node)) {
                    delivered.entry((env.from, env.to)).or_default().push(env.seq);
                }
            }
        };
        for step in steps {
            match step {
                FaultStep::Send(a, b) if a != b => {
                    net.send(NodeId(a as u64), NodeId(b as u64), 0, "m", Bytes::new(), None);
                }
                FaultStep::Send(..) => {}
                FaultStep::Advance(ms) => {
                    net.advance(Duration::from_millis(ms as u64));
                    drain_all(&net);
                }
                FaultStep::Faults { drop_pct, dup_pct, jitter_ms } => {
                    net.set_default_faults(LinkFaults {
                        latency: Duration::from_micros(500),
                        jitter: Duration::from_millis(jitter_ms as u64),
                        drop_p: drop_pct as f64 / 100.0,
                        dup_p: dup_pct as f64 / 100.0,
                    });
                }
                FaultStep::PartitionHalves => {
                    net.partition(&[&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]]);
                }
                FaultStep::Heal => net.heal(),
            }
        }
        // Flush everything still in flight.
        net.advance(Duration::from_secs(10));
        drain_all(&net);
        for ((from, to), seqs) in &delivered {
            // Non-decreasing: FIFO with duplicates adjacent-or-later.
            prop_assert!(
                seqs.windows(2).all(|w| w[0] <= w[1]),
                "link {from}->{to} reordered: {seqs:?}"
            );
            // Collapsing duplicates gives strictly increasing sequence
            // numbers: no phantom or resurrected messages.
            let mut uniq = seqs.clone();
            uniq.dedup();
            prop_assert!(
                uniq.windows(2).all(|w| w[0] < w[1]),
                "link {from}->{to} duplicated non-adjacently: {seqs:?}"
            );
        }
    }

    /// After an arbitrary partition schedule ends in a heal and the
    /// fabric runs quietly past the failure timeout, every live node's
    /// failure detector and the control plane agree on one view: all
    /// live nodes.
    #[test]
    fn partition_heal_converges_membership_to_single_view(
        seed in any::<u64>(),
        splits in vec((0u8..3, 1u8..10), 0..8),
    ) {
        let mcfg = MembershipConfig {
            heartbeat_every: Duration::from_millis(10),
            failure_timeout: Duration::from_millis(60),
        };
        let mut fabric = ClusterFabric::with_membership(seed, mcfg);
        let nodes: Vec<NodeId> = (0..5).map(|_| fabric.add_node(NodeRole::Broker)).collect();
        fabric.run_for(Duration::from_millis(150), Duration::from_millis(5));

        for (shape, run_ms) in splits {
            match shape {
                0 => fabric.net().partition(&[
                    &[nodes[0], nodes[1]],
                    &[nodes[2], nodes[3], nodes[4]],
                ]),
                1 => fabric.net().partition(&[
                    &[nodes[0]],
                    &[nodes[1], nodes[2], nodes[3], nodes[4]],
                ]),
                _ => fabric.net().heal(),
            }
            fabric.run_for(
                Duration::from_millis(run_ms as u64 * 20),
                Duration::from_millis(5),
            );
        }

        fabric.net().heal();
        // Quiet period: several heartbeat rounds past the failure timeout.
        fabric.run_for(Duration::from_millis(300), Duration::from_millis(5));

        let view = fabric.control().lock().view().clone();
        prop_assert_eq!(view.len(), 5, "control view not full: {:?}", view);
        prop_assert!(
            fabric.control().lock().epoch() > 0,
            "epoch never advanced"
        );
    }

    /// HLC stamps order causally: for every message carried over the
    /// SimNet — arbitrary latency and jitter, arbitrary per-node physical
    /// clock skew — the receive stamp strictly exceeds the send stamp, so
    /// sorting the merged timeline by HLC never shows an effect before
    /// its cause. All stamps across all nodes are also pairwise distinct
    /// (node id breaks ties), so the merged order is total.
    #[test]
    fn hlc_merged_timeline_orders_sends_before_receives(
        seed in any::<u64>(),
        skews in (0u64..2_000, 0u64..2_000, 0u64..2_000, 0u64..2_000)
            .prop_map(|(a, b, c, d)| [a, b, c, d]),
        latency_us in 1u64..5_000,
        jitter_us in 0u64..5_000,
        steps in vec((0u8..4, 0u8..4, 1u8..10), 1..80),
    ) {
        let net = SimNet::new(seed);
        net.set_default_faults(LinkFaults {
            latency: Duration::from_micros(latency_us),
            jitter: Duration::from_micros(jitter_us),
            drop_p: 0.0,
            dup_p: 0.0,
        });
        let mut clocks: Vec<HlcClock> = (0..4).map(|n| HlcClock::new(n as u64)).collect();
        let local = |now: Duration, node: usize| now.as_micros() as u64 + skews[node];
        // msg seq (per link) -> send stamp; merged timeline of all stamps.
        let mut in_flight: HashMap<(NodeId, NodeId, u64), HlcStamp> = HashMap::new();
        let mut timeline: Vec<(HlcStamp, &'static str)> = Vec::new();
        let drain = |net: &SimNet,
                         clocks: &mut Vec<HlcClock>,
                         in_flight: &mut HashMap<(NodeId, NodeId, u64), HlcStamp>,
                         timeline: &mut Vec<(HlcStamp, &'static str)>|
         -> Result<(), String> {
            let now = net.now();
            for node in 0..4u64 {
                for env in net.drain(NodeId(node)) {
                    let sent = HlcStamp::from_bytes(&env.body).expect("stamp frame");
                    let recv = clocks[node as usize].observe(local(now, node as usize), sent);
                    prop_assert!(
                        sent < recv,
                        "receive {recv:?} does not follow send {sent:?} (skews {skews:?})"
                    );
                    if let Some(orig) = in_flight.remove(&(env.from, env.to, env.seq)) {
                        prop_assert_eq!(orig, sent, "stamp mutated in flight");
                    }
                    timeline.push((recv, "recv"));
                }
            }
            Ok(())
        };
        for (a, b, advance_ms) in steps {
            if a != b {
                let now = net.now();
                let stamp = clocks[a as usize].tick(local(now, a as usize));
                timeline.push((stamp, "send"));
                let body = Bytes::copy_from_slice(&stamp.to_bytes());
                if let Some(seq) =
                    net.send(NodeId(a as u64), NodeId(b as u64), 0, "hlc", body, None)
                {
                    in_flight.insert((NodeId(a as u64), NodeId(b as u64), seq), stamp);
                }
            }
            net.advance(Duration::from_millis(advance_ms as u64));
            drain(&net, &mut clocks, &mut in_flight, &mut timeline)?;
        }
        net.advance(Duration::from_secs(60));
        drain(&net, &mut clocks, &mut in_flight, &mut timeline)?;
        prop_assert!(in_flight.is_empty(), "lossless net must deliver everything");
        // Total order: stamps are pairwise distinct, so the HLC-sorted
        // merged timeline is unambiguous.
        let mut stamps: Vec<HlcStamp> = timeline.iter().map(|&(s, _)| s).collect();
        stamps.sort();
        prop_assert!(
            stamps.windows(2).all(|w| w[0] < w[1]),
            "merged timeline has colliding stamps"
        );
    }
}
