//! Property tests for the core substrate: histogram quantile bounds,
//! byte-size arithmetic, billing rounding, and sampler invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use std::time::Duration;

use taureau_core::bytesize::ByteSize;
use taureau_core::cost::FaasPricing;
use taureau_core::metrics::Histogram;
use taureau_core::rng::{det_rng, Zipf};

proptest! {
    /// Histogram quantiles never under-report: the value at quantile q is
    /// >= the true q-th order statistic, and within the bucket relative
    /// error of ~1/16 above it.
    #[test]
    fn histogram_quantile_bounds(values in vec(1u64..1_000_000, 1..500)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = h.value_at_quantile(q);
            prop_assert!(got >= exact, "q={q}: got {got} < exact {exact}");
            prop_assert!(
                got as f64 <= exact as f64 * 1.07 + 1.0,
                "q={q}: got {got} too far above exact {exact}"
            );
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.min(), sorted[0]);
    }

    /// ByteSize block math: blocks_of is exact ceiling division.
    #[test]
    fn bytesize_blocks_roundtrip(bytes in 0u64..1_000_000_000, block in 1u64..1_000_000) {
        let n = ByteSize::b(bytes).blocks_of(ByteSize::b(block));
        prop_assert!(n * block >= bytes);
        prop_assert!(n == 0 || (n - 1) * block < bytes);
    }

    /// Billing is monotone in duration and memory, and billed duration is
    /// always a granule multiple at least as large as the raw duration.
    #[test]
    fn billing_monotone(
        ms_a in 0u64..100_000,
        ms_b in 0u64..100_000,
        mem_mb in 64u64..4096,
    ) {
        let p = FaasPricing::default();
        let (lo, hi) = (ms_a.min(ms_b), ms_a.max(ms_b));
        let c_lo = p.invocation_cost(ByteSize::mb(mem_mb), Duration::from_millis(lo));
        let c_hi = p.invocation_cost(ByteSize::mb(mem_mb), Duration::from_millis(hi));
        prop_assert!(c_hi >= c_lo);
        let billed = p.billed_duration(Duration::from_millis(hi));
        prop_assert!(billed >= Duration::from_millis(hi).min(p.billing_granularity));
        prop_assert_eq!(
            billed.as_millis() % p.billing_granularity.as_millis(),
            0
        );
        // More memory never costs less.
        let c_big = p.invocation_cost(ByteSize::mb(mem_mb * 2), Duration::from_millis(hi));
        prop_assert!(c_big >= c_hi);
    }

    /// Zipf probabilities are a valid, monotonically non-increasing
    /// distribution for any size and skew.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..500, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|i| z.prob(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for i in 1..n {
            prop_assert!(
                z.prob(i) <= z.prob(i - 1) + 1e-12,
                "p({i}) > p({})", i - 1
            );
        }
        // Samples always in range.
        let mut rng = det_rng(1);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}

use std::collections::BTreeMap;
use taureau_core::sync::{ShardedMap, StripedCounter};

proptest! {
    /// The sharded map agrees with a single-threaded `BTreeMap` model: ops
    /// are partitioned across 8 threads by key (so per-key order is the
    /// program order the model sees; distinct keys commute), applied
    /// concurrently, and the final contents must match the model exactly.
    #[test]
    fn sharded_map_matches_btreemap_model(
        ops in vec((0u64..64, 0u64..1000, 0u8..3), 1..400)
    ) {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let ops = &ops;
                let map = &map;
                s.spawn(move || {
                    for &(key, value, kind) in ops.iter().filter(|(k, ..)| k % 8 == t) {
                        match kind {
                            0 => {
                                map.insert(key, value);
                            }
                            1 => {
                                map.remove(&key);
                            }
                            _ => {
                                // Read-modify-write under the shard lock.
                                map.with(&key, |shard| {
                                    if let Some(v) = shard.get_mut(&key) {
                                        *v = v.wrapping_add(value);
                                    }
                                });
                            }
                        }
                    }
                });
            }
        });
        // Sequential model: same ops in program order. Per-key order is
        // identical to what each thread executed.
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for &(key, value, kind) in &ops {
            match kind {
                0 => {
                    model.insert(key, value);
                }
                1 => {
                    model.remove(&key);
                }
                _ => {
                    if let Some(v) = model.get_mut(&key) {
                        *v = v.wrapping_add(value);
                    }
                }
            }
        }
        prop_assert_eq!(map.len(), model.len());
        for key in 0u64..64 {
            prop_assert_eq!(
                map.get_cloned(&key),
                model.get(&key).copied(),
                "key {}", key
            );
        }
        let mut keys = map.keys();
        keys.sort_unstable();
        prop_assert_eq!(keys, model.keys().copied().collect::<Vec<_>>());
    }

    /// A striped counter folds to the exact sum of all increments, no
    /// matter how the adds are spread across threads.
    #[test]
    fn striped_counter_is_exact(adds in vec(0u64..10_000, 1..64)) {
        let counter = StripedCounter::new();
        std::thread::scope(|s| {
            for chunk in adds.chunks(8) {
                let counter = &counter;
                s.spawn(move || {
                    for &n in chunk {
                        counter.add(n);
                    }
                });
            }
        });
        prop_assert_eq!(counter.get(), adds.iter().sum::<u64>());
    }
}
