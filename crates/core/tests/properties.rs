//! Property tests for the core substrate: histogram quantile bounds,
//! byte-size arithmetic, billing rounding, and sampler invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use std::time::Duration;

use taureau_core::bytesize::ByteSize;
use taureau_core::cost::FaasPricing;
use taureau_core::metrics::Histogram;
use taureau_core::rng::{det_rng, Zipf};

proptest! {
    /// Histogram quantiles never under-report: the value at quantile q is
    /// >= the true q-th order statistic, and within the bucket relative
    /// error of ~1/16 above it.
    #[test]
    fn histogram_quantile_bounds(values in vec(1u64..1_000_000, 1..500)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = h.value_at_quantile(q);
            prop_assert!(got >= exact, "q={q}: got {got} < exact {exact}");
            prop_assert!(
                got as f64 <= exact as f64 * 1.07 + 1.0,
                "q={q}: got {got} too far above exact {exact}"
            );
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.min(), sorted[0]);
    }

    /// ByteSize block math: blocks_of is exact ceiling division.
    #[test]
    fn bytesize_blocks_roundtrip(bytes in 0u64..1_000_000_000, block in 1u64..1_000_000) {
        let n = ByteSize::b(bytes).blocks_of(ByteSize::b(block));
        prop_assert!(n * block >= bytes);
        prop_assert!(n == 0 || (n - 1) * block < bytes);
    }

    /// Billing is monotone in duration and memory, and billed duration is
    /// always a granule multiple at least as large as the raw duration.
    #[test]
    fn billing_monotone(
        ms_a in 0u64..100_000,
        ms_b in 0u64..100_000,
        mem_mb in 64u64..4096,
    ) {
        let p = FaasPricing::default();
        let (lo, hi) = (ms_a.min(ms_b), ms_a.max(ms_b));
        let c_lo = p.invocation_cost(ByteSize::mb(mem_mb), Duration::from_millis(lo));
        let c_hi = p.invocation_cost(ByteSize::mb(mem_mb), Duration::from_millis(hi));
        prop_assert!(c_hi >= c_lo);
        let billed = p.billed_duration(Duration::from_millis(hi));
        prop_assert!(billed >= Duration::from_millis(hi).min(p.billing_granularity));
        prop_assert_eq!(
            billed.as_millis() % p.billing_granularity.as_millis(),
            0
        );
        // More memory never costs less.
        let c_big = p.invocation_cost(ByteSize::mb(mem_mb * 2), Duration::from_millis(hi));
        prop_assert!(c_big >= c_hi);
    }

    /// Zipf probabilities are a valid, monotonically non-increasing
    /// distribution for any size and skew.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..500, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|i| z.prob(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for i in 1..n {
            prop_assert!(
                z.prob(i) <= z.prob(i - 1) + 1e-12,
                "p({i}) > p({})", i - 1
            );
        }
        // Samples always in range.
        let mut rng = det_rng(1);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
