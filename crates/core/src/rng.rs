//! Deterministic randomness and workload samplers.
//!
//! All stochastic behaviour in the stack flows through seeded
//! [`ChaCha8Rng`](rand_chacha::ChaCha8Rng) instances so that tests and
//! experiments are reproducible run-to-run. The samplers here are the ones
//! the workload generators need: Zipf item popularity (for sketch streams
//! and key-value skew) and Poisson arrival processes (for request traffic).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Construct the workspace-standard deterministic RNG from a seed.
pub fn det_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A standard-normal sample via Box–Muller — the one normal sampler every
/// crate shares (latency models, Monte Carlo workloads), avoiding a
/// `rand_distr` dependency.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Zipf-distributed sampler over `{0, 1, …, n-1}` with exponent `s`.
///
/// Item `i` has probability proportional to `1 / (i+1)^s`. Implemented with
/// a precomputed CDF and binary search: O(n) setup, O(log n) per sample —
/// ample for the 10^5–10^6 item universes the experiments use.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `n` items with skew `s` (s = 0 is uniform,
    /// s ≈ 1 is classic web-object popularity).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point drift at the top end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one item index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Exact probability of item `i` under this distribution.
    pub fn prob(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Homogeneous Poisson arrival process: exponential inter-arrival times with
/// the given rate (events per second).
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// New process with `rate_per_sec` expected events per second.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        Self { rate_per_sec }
    }

    /// Sample the gap to the next arrival, in seconds.
    pub fn next_gap_secs<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.rate_per_sec
    }

    /// Generate all arrival offsets (seconds) within a horizon.
    pub fn arrivals_within<R: Rng + ?Sized>(&self, rng: &mut R, horizon_secs: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut t = 0.0;
        loop {
            t += self.next_gap_secs(rng);
            if t >= horizon_secs {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_rng_is_reproducible() {
        let mut a = det_rng(7);
        let mut b = det_rng(7);
        let va: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|i| z.prob(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_skews_towards_low_indices() {
        let z = Zipf::new(1000, 1.2);
        let mut r = det_rng(1);
        let mut head = 0usize;
        let n = 100_000;
        for _ in 0..n {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // Top-10 of 1000 items should capture well over a third of the mass
        // at s=1.2.
        assert!(
            head as f64 / n as f64 > 0.35,
            "head share {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.prob(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_empirical_matches_exact_for_head_item() {
        let z = Zipf::new(50, 1.0);
        let mut r = det_rng(3);
        let n = 200_000;
        let hits = (0..n).filter(|_| z.sample(&mut r) == 0).count();
        let emp = hits as f64 / n as f64;
        let exact = z.prob(0);
        assert!(
            (emp - exact).abs() / exact < 0.05,
            "emp {emp} exact {exact}"
        );
    }

    #[test]
    fn poisson_mean_rate_is_respected() {
        let p = PoissonArrivals::new(50.0);
        let mut r = det_rng(11);
        let arrivals = p.arrivals_within(&mut r, 100.0);
        let rate = arrivals.len() as f64 / 100.0;
        assert!((rate - 50.0).abs() / 50.0 < 0.1, "rate {rate}");
        // Arrivals are sorted and within the horizon.
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals.iter().all(|&t| t < 100.0));
    }
}
