//! Token-bucket rate limiting.
//!
//! Used for per-tenant admission control in the FaaS runtime (a stand-in for
//! provider-side concurrency limits) and for producer throttling in the
//! messaging layer. Driven by a [`Clock`] so tests use virtual time.

use std::time::Duration;

use parking_lot::Mutex;

use crate::clock::SharedClock;

/// A classic token bucket: capacity `burst`, refilled at `rate_per_sec`.
pub struct TokenBucket {
    clock: SharedClock,
    rate_per_sec: f64,
    burst: f64,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    tokens: f64,
    last_refill: Duration,
}

impl TokenBucket {
    /// New bucket, initially full.
    pub fn new(clock: SharedClock, rate_per_sec: f64, burst: u64) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        assert!(burst > 0, "burst must be positive");
        let now = clock.now();
        Self {
            clock,
            rate_per_sec,
            burst: burst as f64,
            state: Mutex::new(State {
                tokens: burst as f64,
                last_refill: now,
            }),
        }
    }

    fn refill(&self, state: &mut State) {
        let now = self.clock.now();
        if now > state.last_refill {
            let elapsed = (now - state.last_refill).as_secs_f64();
            state.tokens = (state.tokens + elapsed * self.rate_per_sec).min(self.burst);
            state.last_refill = now;
        }
    }

    /// Try to take `n` tokens; returns whether admission succeeded.
    pub fn try_acquire(&self, n: u64) -> bool {
        let mut state = self.state.lock();
        self.refill(&mut state);
        if state.tokens >= n as f64 {
            state.tokens -= n as f64;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refill).
    pub fn available(&self) -> f64 {
        let mut state = self.state.lock();
        self.refill(&mut state);
        state.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::sync::Arc;

    #[test]
    fn burst_then_deny() {
        let clock = VirtualClock::shared();
        let tb = TokenBucket::new(clock.clone(), 10.0, 5);
        for _ in 0..5 {
            assert!(tb.try_acquire(1));
        }
        assert!(!tb.try_acquire(1));
    }

    #[test]
    fn refills_over_time() {
        let clock = VirtualClock::shared();
        let tb = TokenBucket::new(clock.clone(), 10.0, 5);
        assert!(tb.try_acquire(5));
        assert!(!tb.try_acquire(1));
        clock.advance(Duration::from_millis(100)); // +1 token
        assert!(tb.try_acquire(1));
        assert!(!tb.try_acquire(1));
    }

    #[test]
    fn refill_caps_at_burst() {
        let clock = VirtualClock::shared();
        let tb = TokenBucket::new(clock.clone(), 1000.0, 3);
        clock.advance(Duration::from_secs(60));
        assert!((tb.available() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn multi_token_acquire() {
        let clock = VirtualClock::shared();
        let tb = TokenBucket::new(clock.clone(), 10.0, 10);
        assert!(tb.try_acquire(7));
        assert!(!tb.try_acquire(4));
        assert!(tb.try_acquire(3));
    }

    #[test]
    fn shared_across_threads() {
        let clock = VirtualClock::shared();
        let tb = Arc::new(TokenBucket::new(clock, 10.0, 1000));
        let mut handles = vec![];
        for _ in 0..4 {
            let tb = Arc::clone(&tb);
            handles.push(std::thread::spawn(move || {
                (0..250).filter(|_| tb.try_acquire(1)).count()
            }));
        }
        let granted: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(granted, 1000);
    }
}
