//! Strongly-typed identifiers.
//!
//! Every subsystem hands out ids; mixing a `FunctionId` into an API that
//! wants a `NodeId` should be a compile error, not a runtime surprise.
//! All ids are thin wrappers over `u64` allocated from per-type atomic
//! counters (via [`IdGen`]) or assigned explicitly by the subsystem that
//! owns the namespace.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A monotonically increasing id allocator.
///
/// Each subsystem keeps one per id type; ids are unique within that
/// allocator, dense, and start at 0.
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// Create an allocator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next raw id.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric value.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "-{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }
    };
}

define_id!(
    /// A tenant (cloud customer). Isolation guarantees are stated per tenant.
    TenantId, "tenant"
);
define_id!(
    /// A registered serverless function.
    FunctionId, "fn"
);
define_id!(
    /// A single invocation of a function.
    InvocationId, "inv"
);
define_id!(
    /// A physical (simulated) cluster node.
    NodeId, "node"
);
define_id!(
    /// A warm or cold execution container in the FaaS runtime.
    ContainerId, "ctr"
);
define_id!(
    /// A fixed-size memory block in the Jiffy pool.
    BlockId, "blk"
);
define_id!(
    /// An append-only replicated ledger in the Pulsar storage layer.
    LedgerId, "ledger"
);
define_id!(
    /// A consumer within a subscription.
    ConsumerId, "consumer"
);
define_id!(
    /// A producer attached to a topic.
    ProducerId, "producer"
);
define_id!(
    /// A simulated VM instance in the server-centric baseline.
    VmId, "vm"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idgen_is_dense_and_unique() {
        let g = IdGen::new();
        assert_eq!(g.next(), 0);
        assert_eq!(g.next(), 1);
        assert_eq!(g.next(), 2);
    }

    #[test]
    fn display_includes_prefix() {
        assert_eq!(TenantId(7).to_string(), "tenant-7");
        assert_eq!(FunctionId(1).to_string(), "fn-1");
        assert_eq!(BlockId(42).to_string(), "blk-42");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(NodeId(1));
        s.insert(NodeId(1));
        s.insert(NodeId(2));
        assert_eq!(s.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn idgen_concurrent_allocation_is_unique() {
        use std::sync::Arc;
        let g = Arc::new(IdGen::new());
        let mut handles = vec![];
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000);
    }
}
