//! Time sources.
//!
//! Every time-dependent component in the stack (lease managers, billing
//! meters, container keep-alive reapers, cold-start injectors) takes a
//! [`SharedClock`] instead of calling [`std::time::Instant::now`] directly.
//! Production code and Criterion benches use [`WallClock`]; unit tests and
//! the discrete-event simulator use [`VirtualClock`], which only moves when
//! explicitly advanced. This is what makes tests of lease expiry or billing
//! rounding deterministic and instant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source measured as a [`Duration`] since the clock's own
/// epoch (process start for [`WallClock`], zero for [`VirtualClock`]).
pub trait Clock: Send + Sync {
    /// Current time since the clock's epoch.
    fn now(&self) -> Duration;

    /// Block (or, for a virtual clock, logically advance) for `d`.
    fn sleep(&self, d: Duration);

    /// Whether this clock advances on its own (wall time) or only when
    /// driven (virtual time). Components can use this to decide whether a
    /// background reaper thread is meaningful.
    fn is_virtual(&self) -> bool {
        false
    }
}

/// Shared handle to a clock.
pub type SharedClock = Arc<dyn Clock>;

/// Real wall-clock time, relative to the instant the clock was created.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Create a wall clock whose epoch is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    /// Convenience constructor returning a [`SharedClock`].
    pub fn shared() -> SharedClock {
        Arc::new(Self::new())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A logical clock that only moves when [`VirtualClock::advance`] is called
/// (or when a component calls [`Clock::sleep`] on it).
///
/// Internally nanoseconds in an atomic, so handles are cheap to share across
/// threads. `u64` nanoseconds covers ~584 years of simulated time, far more
/// than any experiment needs.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// Create a virtual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience constructor returning both the concrete handle (for
    /// advancing) and nothing else; callers clone the `Arc` into components.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Jump to an absolute time. Panics if `t` is in the past — a virtual
    /// clock is still monotonic.
    pub fn set(&self, t: Duration) {
        let target = t.as_nanos() as u64;
        let prev = self.nanos.swap(target, Ordering::SeqCst);
        assert!(
            target >= prev,
            "virtual clock moved backwards: {prev} -> {target}"
        );
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_advances() {
        let c = WallClock::new();
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.now() > a);
    }

    #[test]
    fn virtual_clock_starts_at_zero_and_advances_only_when_told() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_secs(5));
        assert_eq!(c.now(), Duration::from_secs(5));
        c.advance(Duration::from_millis(250));
        assert_eq!(c.now(), Duration::from_millis(5250));
    }

    #[test]
    fn virtual_clock_sleep_advances() {
        let c = VirtualClock::new();
        c.sleep(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_secs(1));
        assert!(c.is_virtual());
    }

    #[test]
    fn virtual_clock_set_jumps_forward() {
        let c = VirtualClock::new();
        c.set(Duration::from_secs(10));
        assert_eq!(c.now(), Duration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn virtual_clock_set_rejects_past() {
        let c = VirtualClock::new();
        c.set(Duration::from_secs(10));
        c.set(Duration::from_secs(5));
    }

    #[test]
    fn shared_across_threads() {
        let c = VirtualClock::shared();
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.advance(Duration::from_secs(1)));
        h.join().unwrap();
        assert_eq!(c.now(), Duration::from_secs(1));
    }
}
