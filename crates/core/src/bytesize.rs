//! Byte quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A quantity of bytes with convenient constructors and arithmetic.
///
/// Used throughout the stack for block sizes, payload sizes, memory pools
/// and billing (GB-seconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// `n` bytes.
    pub const fn b(n: u64) -> Self {
        ByteSize(n)
    }

    /// `n` kibibytes.
    pub const fn kb(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// `n` mebibytes.
    pub const fn mb(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// `n` gibibytes.
    pub const fn gb(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Bytes as `usize` (panics on 32-bit overflow, which no experiment hits).
    pub fn as_usize(self) -> usize {
        usize::try_from(self.0).expect("byte size exceeds usize")
    }

    /// Fractional gibibytes, for billing arithmetic.
    pub fn as_gb_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Number of `block`-sized blocks needed to hold this many bytes
    /// (ceiling division).
    pub fn blocks_of(self, block: ByteSize) -> u64 {
        assert!(block.0 > 0, "block size must be non-zero");
        self.0.div_ceil(block.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const UNITS: [(&str, u64); 4] = [
            ("GiB", 1 << 30),
            ("MiB", 1 << 20),
            ("KiB", 1 << 10),
            ("B", 1),
        ];
        for (name, scale) in UNITS {
            if self.0 >= scale {
                let v = self.0 as f64 / scale as f64;
                return if (v - v.round()).abs() < 1e-9 {
                    write!(f, "{} {}", v.round() as u64, name)
                } else {
                    write!(f, "{v:.2} {name}")
                };
            }
        }
        write!(f, "0 B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(ByteSize::kb(1).as_u64(), 1024);
        assert_eq!(ByteSize::mb(2).as_u64(), 2 * 1024 * 1024);
        assert_eq!(ByteSize::gb(1).as_gb_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::kb(4);
        let b = ByteSize::kb(1);
        assert_eq!(a + b, ByteSize::kb(5));
        assert_eq!(a - b, ByteSize::kb(3));
        assert_eq!(a * 2, ByteSize::kb(8));
        assert_eq!(a / 2, ByteSize::kb(2));
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
    }

    #[test]
    fn blocks_of_rounds_up() {
        assert_eq!(ByteSize::b(0).blocks_of(ByteSize::kb(4)), 0);
        assert_eq!(ByteSize::b(1).blocks_of(ByteSize::kb(4)), 1);
        assert_eq!(ByteSize::kb(4).blocks_of(ByteSize::kb(4)), 1);
        assert_eq!(ByteSize::b(4097).blocks_of(ByteSize::kb(4)), 2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::b(512).to_string(), "512 B");
        assert_eq!(ByteSize::kb(4).to_string(), "4 KiB");
        assert_eq!(ByteSize::mb(3).to_string(), "3 MiB");
        assert_eq!(ByteSize::b(1536).to_string(), "1.50 KiB");
    }

    #[test]
    fn sum_iterates() {
        let total: ByteSize = (1..=4).map(ByteSize::kb).sum();
        assert_eq!(total, ByteSize::kb(10));
    }
}
