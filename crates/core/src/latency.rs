//! Injected latency models.
//!
//! Wherever the stack simulates a delay that would be real in production —
//! container cold starts, S3-style persistent storage, cross-node network
//! hops — it samples from a [`LatencyModel`] defined here. Centralising the
//! distributions makes every simulated number traceable to a named
//! calibration constant, per the substitution policy in `DESIGN.md`.
//!
//! Calibration sources:
//! - Cold/warm start: Wang et al., "Peeking Behind the Curtains of
//!   Serverless Platforms" (ATC'18) measured AWS Lambda median cold starts
//!   around 160–250 ms with heavy tails to seconds, warm starts under 25 ms.
//! - S3: public measurements put small-object GET/PUT first-byte latency in
//!   the 10–30 ms range with long tails.
//! - Intra-DC network RTT: 50–500 µs.

use std::time::Duration;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over durations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Always exactly this value. Used for deterministic tests.
    Constant(Duration),
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: Duration,
        /// Upper bound (inclusive).
        hi: Duration,
    },
    /// Log-normal with the given parameters of the underlying normal, in
    /// microsecond scale: `exp(mu + sigma * N(0,1))` microseconds. Heavy
    /// right tail — the right shape for cold starts and storage latencies.
    LogNormal {
        /// Mean of the underlying normal (of ln-microseconds).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Shifted log-normal: `base + LogNormal(mu, sigma)`.
    ShiftedLogNormal {
        /// Deterministic floor added to every sample.
        base: Duration,
        /// Mean of the underlying normal (of ln-microseconds).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

impl LatencyModel {
    /// Zero latency (for tests that want no injected delay).
    pub const fn zero() -> Self {
        LatencyModel::Constant(Duration::ZERO)
    }

    /// Sample one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                debug_assert!(lo <= hi);
                let span = (hi - lo).as_nanos() as u64;
                lo + Duration::from_nanos(if span == 0 {
                    0
                } else {
                    rng.gen_range(0..=span)
                })
            }
            LatencyModel::LogNormal { mu, sigma } => {
                Duration::from_micros(sample_lognormal_us(rng, mu, sigma))
            }
            LatencyModel::ShiftedLogNormal { base, mu, sigma } => {
                base + Duration::from_micros(sample_lognormal_us(rng, mu, sigma))
            }
        }
    }

    /// The distribution mean (exact for constant/uniform, analytic for
    /// log-normal). Used by the DES when it wants expected service times.
    pub fn mean(&self) -> Duration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { lo, hi } => (lo + hi) / 2,
            LatencyModel::LogNormal { mu, sigma } => {
                Duration::from_micros((mu + sigma * sigma / 2.0).exp() as u64)
            }
            LatencyModel::ShiftedLogNormal { base, mu, sigma } => {
                base + Duration::from_micros((mu + sigma * sigma / 2.0).exp() as u64)
            }
        }
    }
}

fn sample_lognormal_us<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> u64 {
    let n = crate::rng::standard_normal(rng);
    (mu + sigma * n).exp().round().max(0.0) as u64
}

/// Named calibration profiles used across the stack.
pub mod profiles {
    use super::*;

    /// AWS-Lambda-like container cold start: ~200 ms median, tail to ~1.5 s.
    /// (ln(180_000 µs) ≈ 12.1)
    pub fn cold_start() -> LatencyModel {
        LatencyModel::ShiftedLogNormal {
            base: Duration::from_millis(50),
            mu: 11.9,
            sigma: 0.55,
        }
    }

    /// Warm-container dispatch: single-digit milliseconds.
    pub fn warm_start() -> LatencyModel {
        LatencyModel::ShiftedLogNormal {
            base: Duration::from_micros(500),
            mu: 7.6, // ~2 ms median
            sigma: 0.4,
        }
    }

    /// S3-like persistent store small-object GET.
    pub fn persistent_read() -> LatencyModel {
        LatencyModel::ShiftedLogNormal {
            base: Duration::from_millis(5),
            mu: 9.4, // ~12 ms median
            sigma: 0.5,
        }
    }

    /// S3-like persistent store small-object PUT.
    pub fn persistent_write() -> LatencyModel {
        LatencyModel::ShiftedLogNormal {
            base: Duration::from_millis(8),
            mu: 9.6, // ~15 ms median
            sigma: 0.5,
        }
    }

    /// Intra-datacenter network round trip.
    pub fn network_rtt() -> LatencyModel {
        LatencyModel::Uniform {
            lo: Duration::from_micros(50),
            hi: Duration::from_micros(500),
        }
    }

    /// In-memory store op (Jiffy-class): tens of microseconds.
    pub fn memory_op() -> LatencyModel {
        LatencyModel::Uniform {
            lo: Duration::from_micros(10),
            hi: Duration::from_micros(80),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(Duration::from_millis(7));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), Duration::from_millis(7));
        }
        assert_eq!(m.mean(), Duration::from_millis(7));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let lo = Duration::from_micros(100);
        let hi = Duration::from_micros(200);
        let m = LatencyModel::Uniform { lo, hi };
        let mut r = rng();
        for _ in 0..1000 {
            let s = m.sample(&mut r);
            assert!(s >= lo && s <= hi);
        }
        assert_eq!(m.mean(), Duration::from_micros(150));
    }

    #[test]
    fn lognormal_empirical_mean_close_to_analytic() {
        let m = LatencyModel::LogNormal {
            mu: 10.0,
            sigma: 0.5,
        };
        let mut r = rng();
        let n = 200_000;
        let total: f64 = (0..n).map(|_| m.sample(&mut r).as_micros() as f64).sum();
        let empirical = total / n as f64;
        let analytic = m.mean().as_micros() as f64;
        let err = (empirical - analytic).abs() / analytic;
        assert!(err < 0.05, "empirical {empirical} analytic {analytic}");
    }

    #[test]
    fn cold_start_profile_is_slower_than_warm() {
        let mut r = rng();
        let cold = profiles::cold_start();
        let warm = profiles::warm_start();
        let avg = |m: &LatencyModel, r: &mut ChaCha8Rng| {
            (0..2000)
                .map(|_| m.sample(r).as_micros() as u64)
                .sum::<u64>()
                / 2000
        };
        let c = avg(&cold, &mut r);
        let w = avg(&warm, &mut r);
        assert!(
            c > 10 * w,
            "cold starts should dominate warm starts: cold={c}us warm={w}us"
        );
        // Cold start median should land in the 100ms..1s band the
        // literature reports.
        assert!(c > 100_000 && c < 1_000_000, "cold mean {c}us out of band");
    }

    #[test]
    fn persistent_store_slower_than_memory() {
        let mem = profiles::memory_op().mean();
        let disk = profiles::persistent_read().mean();
        assert!(disk > 50 * mem, "persistent {disk:?} vs memory {mem:?}");
    }

    #[test]
    fn shifted_lognormal_respects_floor() {
        let base = Duration::from_millis(50);
        let m = LatencyModel::ShiftedLogNormal {
            base,
            mu: 8.0,
            sigma: 1.0,
        };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(m.sample(&mut r) >= base);
        }
    }
}
