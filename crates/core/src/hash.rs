//! Seeded 64-bit hashing for sketches.
//!
//! Sketches need families of independent hash functions. We derive them from
//! one strong 64-bit hash (a wyhash-style multiply-mix over 8-byte chunks)
//! using the Kirsch–Mitzenmacher construction: `g_i(x) = h1(x) + i·h2(x)`,
//! which preserves the asymptotic guarantees of Bloom filters and Count-Min
//! while costing one hash of the input.

/// A seeded 64-bit hash over a byte slice.
///
/// Not cryptographic; chosen for speed, full 64-bit avalanche, and
/// reproducibility across runs (no per-process randomness, so sketches built
/// in different function instances with the same seed are mergeable).
pub fn hash64(seed: u64, bytes: &[u8]) -> u64 {
    const P0: u64 = 0xa076_1d64_78bd_642f;
    const P1: u64 = 0xe703_7ed1_a0b4_28db;
    const P2: u64 = 0x8ebc_6af0_9c88_c6e3;

    let mut acc = seed ^ P0;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        acc = mix(acc ^ v, P1);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        acc = mix(acc ^ u64::from_le_bytes(tail), P2);
    }
    mix(acc ^ (bytes.len() as u64), P1)
}

/// 128-bit multiply folding (the wyhash "mum" primitive).
#[inline]
fn mix(a: u64, b: u64) -> u64 {
    let r = (a as u128).wrapping_mul(b as u128);
    (r >> 64) as u64 ^ r as u64
}

/// FNV-1a over a byte slice.
///
/// Used for shard selection in [`crate::sync`]: cheaper than [`hash64`] on
/// the short keys (topic names, namespace paths, function names) that pick a
/// lock stripe, and its low bits are well distributed for power-of-two
/// shard counts after the final xor-fold.
#[inline]
pub fn fnv(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET_BASIS;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    // Fold the high bits down: FNV's low bits alone are weak for
    // power-of-two masking.
    h ^ (h >> 32)
}

/// An incremental FNV-1a [`std::hash::Hasher`].
///
/// The default `HashMap` hasher (SipHash-1-3) is keyed against HashDoS and
/// costs tens of nanoseconds per short key — measurable on the data-plane
/// hot paths (`ShardedMap` lookups, metrics-registry name lookups) where
/// keys are short, trusted strings. FNV-1a is a handful of multiply-xors
/// and, with the same xor-fold as [`fnv`], spreads short keys well under
/// power-of-two table masks. Use only for maps whose keys are not
/// attacker-controlled.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    #[inline]
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Same fold as `fnv`: FNV's low bits alone are weak for
        // power-of-two masking.
        self.0 ^ (self.0 >> 32)
    }
}

/// `BuildHasher` for [`FnvHasher`]; plugs into
/// `HashMap::with_hasher(FnvBuildHasher::default())`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    #[inline]
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// A `HashMap` keyed by trusted, short keys, hashed with FNV-1a.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

/// A pair of independent hashes of the same input, from which a whole family
/// `g_i = h1 + i * h2` can be derived (Kirsch–Mitzenmacher).
#[derive(Debug, Clone, Copy)]
pub struct HashPair {
    /// First base hash.
    pub h1: u64,
    /// Second base hash (forced odd so `g_i` cycles through all residues).
    pub h2: u64,
}

impl HashPair {
    /// Hash `bytes` under the family identified by `seed`.
    pub fn new(seed: u64, bytes: &[u8]) -> Self {
        let h1 = hash64(seed, bytes);
        let h2 = hash64(seed ^ 0x9e37_79b9_7f4a_7c15, bytes) | 1;
        Self { h1, h2 }
    }

    /// The `i`-th derived hash.
    #[inline]
    pub fn derive(&self, i: u64) -> u64 {
        self.h1.wrapping_add(i.wrapping_mul(self.h2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(1, b"hello"), hash64(1, b"hello"));
        assert_ne!(hash64(1, b"hello"), hash64(2, b"hello"));
        assert_ne!(hash64(1, b"hello"), hash64(1, b"hellp"));
    }

    #[test]
    fn empty_and_boundary_lengths() {
        // Lengths around the 8-byte chunk boundary must all hash distinctly.
        let inputs: Vec<Vec<u8>> = (0..=17).map(|n| vec![0xABu8; n]).collect();
        let hashes: HashSet<u64> = inputs.iter().map(|b| hash64(7, b)).collect();
        assert_eq!(hashes.len(), inputs.len());
    }

    #[test]
    fn avalanche_rough_check() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = hash64(0, b"abcdefgh");
        let b = hash64(0, b"abcdefgi");
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "flipped {flipped} bits");
    }

    #[test]
    fn distribution_over_buckets_is_balanced() {
        let n = 100_000u64;
        let buckets = 64usize;
        let mut counts = vec![0u64; buckets];
        for i in 0..n {
            let h = hash64(3, &i.to_le_bytes());
            counts[(h % buckets as u64) as usize] += 1;
        }
        let expect = n as f64 / buckets as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.15, "bucket {i} count {c} deviates {dev}");
        }
    }

    #[test]
    fn hash_pair_derives_distinct_rows() {
        let p = HashPair::new(9, b"item");
        let derived: HashSet<u64> = (0..16).map(|i| p.derive(i)).collect();
        assert_eq!(derived.len(), 16);
    }

    #[test]
    fn fnv_is_deterministic_and_spreads() {
        assert_eq!(fnv(b"topic-a"), fnv(b"topic-a"));
        assert_ne!(fnv(b"topic-a"), fnv(b"topic-b"));
        // Short sequential keys (the shard-selection workload) must not
        // collapse onto a few stripes under a power-of-two mask.
        let mask = 15u64;
        let mut hit = HashSet::new();
        for i in 0..64u64 {
            hit.insert(fnv(format!("fn-{i}").as_bytes()) & mask);
        }
        assert!(hit.len() >= 12, "only {} of 16 stripes hit", hit.len());
    }

    #[test]
    fn fnv_hasher_matches_oneshot_fnv() {
        use std::hash::Hasher;
        for key in ["", "a", "topic-a", "/jiffy/app/obj", "0123456789abcdef"] {
            let mut h = FnvHasher::default();
            h.write(key.as_bytes());
            assert_eq!(h.finish(), fnv(key.as_bytes()), "key {key:?}");
        }
    }

    #[test]
    fn fnv_hashmap_behaves_like_std() {
        let mut m: FnvHashMap<String, u32> = FnvHashMap::default();
        for i in 0..100u32 {
            m.insert(format!("k{i}"), i);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(&format!("k{i}")), Some(&i));
        }
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn h2_is_odd() {
        for i in 0..100u64 {
            let p = HashPair::new(5, &i.to_le_bytes());
            assert_eq!(p.h2 & 1, 1);
        }
    }
}
