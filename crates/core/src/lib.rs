//! # taureau-core
//!
//! Common substrate for the *Le Taureau* serverless stack — the shared
//! vocabulary every other crate in the workspace builds on:
//!
//! - [`clock`]: a [`Clock`](clock::Clock) abstraction with wall-clock and
//!   virtual (logical-time) implementations, so that every time-dependent
//!   component (leases, cold starts, billing meters) can be driven
//!   deterministically in tests and simulations.
//! - [`id`]: strongly-typed identifiers for tenants, functions, invocations,
//!   nodes, blocks, ledgers, and so on.
//! - [`metrics`]: counters, gauges and a log-linear histogram with quantile
//!   queries, plus a registry for snapshotting.
//! - [`cost`]: the billing models the paper's cost-efficiency claims depend
//!   on — fine-grained FaaS billing vs. server-centric VM billing, plus
//!   storage pricing.
//! - [`latency`]: explicit, documented latency distributions used wherever
//!   the stack injects simulated delay (cold starts, S3-like persistence,
//!   network hops). Keeping them in one module makes every simulated number
//!   traceable to a calibration constant.
//! - [`rng`]: deterministic random sources and the samplers used by the
//!   workload generators (Zipf, Poisson processes, log-normal).
//! - [`bytesize`]: human-friendly byte quantities.
//! - [`ratelimit`]: a token bucket used for throttling and admission control.
//! - [`sync`]: sharded concurrency primitives — a striped-lock map and a
//!   lock-free striped counter — that every multi-reader hot path (Jiffy
//!   pool, Pulsar topic map, FaaS container pool, metrics registry) builds
//!   on instead of one coarse `Mutex`.
//! - [`trace`]: structured request tracing — causally-linked spans that
//!   follow one invocation across FaaS, Pulsar and Jiffy, with Chrome
//!   trace-event and flamegraph exporters.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bytesize;
pub mod clock;
pub mod cost;
pub mod hash;
pub mod id;
pub mod latency;
pub mod metrics;
pub mod ratelimit;
pub mod rng;
pub mod sync;
pub mod trace;

pub use bytesize::ByteSize;
pub use clock::{Clock, SharedClock, VirtualClock, WallClock};
pub use id::{BlockId, ContainerId, FunctionId, InvocationId, LedgerId, NodeId, TenantId};
pub use metrics::{Counter, Histogram, MetricsRegistry};
pub use sync::{ShardedMap, StripedCounter};
pub use trace::{
    SpanGuard, SpanId, SpanRecord, TelemetryEvent, TelemetrySink, TraceId, Tracer, TracerConfig,
};
