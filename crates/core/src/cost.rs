//! Billing models.
//!
//! §2 of the paper identifies *cost efficiency through fine-grained billing*
//! as the key economic incentive for serverless; experiment E1 quantifies it.
//! This module holds the pricing arithmetic for both sides of that
//! comparison:
//!
//! - [`FaasPricing`]: pay per request plus per GB-second, with duration
//!   rounded up to a billing granularity (AWS Lambda billed per 100 ms when
//!   the paper was written).
//! - [`VmPricing`]: pay per instance-hour regardless of utilisation — the
//!   "server-centric model, where the users have to reserve server resources
//!   regardless of whether or not they use it".
//! - [`StoragePricing`]: BaaS-style per GB-month plus per-request fees.
//!
//! Default constants are calibrated to public AWS prices circa 2020
//! (us-east-1): Lambda \$0.20 per 1M requests + \$0.0000166667 per GB-s;
//! m5.large at \$0.096/h; S3 standard at \$0.023/GB-month, \$0.40/M GETs,
//! \$5.00/M PUTs. Absolute dollars are not the point — the *shape* of the
//! serverless-vs-VM crossover is.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::bytesize::ByteSize;

/// Dollars, as f64. All experiment outputs are relative, so floating point
/// is fine here.
pub type Dollars = f64;

/// FaaS (Lambda-style) pricing: per-request fee plus GB-seconds of memory,
/// with execution duration rounded *up* to `billing_granularity`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaasPricing {
    /// Dollars charged per single request.
    pub per_request: Dollars,
    /// Dollars charged per GB-second of configured memory.
    pub per_gb_second: Dollars,
    /// Billing granularity; durations round up to a multiple of this.
    pub billing_granularity: Duration,
}

impl Default for FaasPricing {
    fn default() -> Self {
        Self {
            per_request: 0.20 / 1_000_000.0,
            per_gb_second: 0.000_016_666_7,
            billing_granularity: Duration::from_millis(100),
        }
    }
}

impl FaasPricing {
    /// The duration actually billed for an execution of `d` (rounded up to
    /// the billing granularity, minimum one granule).
    pub fn billed_duration(&self, d: Duration) -> Duration {
        let g = self.billing_granularity.as_nanos();
        if g == 0 {
            return d;
        }
        let n = d.as_nanos().div_ceil(g).max(1);
        Duration::from_nanos((n * g) as u64)
    }

    /// Cost of one invocation of a function configured with `memory`,
    /// running for `duration`.
    pub fn invocation_cost(&self, memory: ByteSize, duration: Duration) -> Dollars {
        let billed = self.billed_duration(duration);
        self.per_request + self.per_gb_second * memory.as_gb_f64() * billed.as_secs_f64()
    }
}

/// Server-centric (VM) pricing: a flat rate per instance-hour, billed for
/// the full time the instance is up whether or not it serves requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmPricing {
    /// Dollars per instance-hour.
    pub per_hour: Dollars,
    /// Memory provisioned per instance (used to size fleets comparably to a
    /// FaaS memory configuration).
    pub memory: ByteSize,
    /// Requests one instance can serve concurrently.
    pub capacity: u32,
    /// Time to boot an instance; during scale-up this is dead, billed time.
    pub boot_time: Duration,
}

impl Default for VmPricing {
    fn default() -> Self {
        Self {
            per_hour: 0.096,
            memory: ByteSize::gb(8),
            capacity: 16,
            boot_time: Duration::from_secs(60),
        }
    }
}

impl VmPricing {
    /// Cost of running `instances` VMs for `duration`.
    pub fn fleet_cost(&self, instances: u32, duration: Duration) -> Dollars {
        self.per_hour * instances as f64 * duration.as_secs_f64() / 3600.0
    }

    /// Instances needed to serve `concurrent` simultaneous requests.
    pub fn instances_for(&self, concurrent: u64) -> u32 {
        assert!(self.capacity > 0);
        u32::try_from(concurrent.div_ceil(self.capacity as u64)).unwrap_or(u32::MAX)
    }
}

/// BaaS storage pricing (S3-style): capacity rent plus per-operation fees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoragePricing {
    /// Dollars per GB-month of stored data.
    pub per_gb_month: Dollars,
    /// Dollars per read (GET) request.
    pub per_read: Dollars,
    /// Dollars per write (PUT) request.
    pub per_write: Dollars,
}

impl Default for StoragePricing {
    fn default() -> Self {
        Self {
            per_gb_month: 0.023,
            per_read: 0.40 / 1_000_000.0,
            per_write: 5.00 / 1_000_000.0,
        }
    }
}

impl StoragePricing {
    /// Cost of storing `size` for `duration` plus the given op counts.
    pub fn cost(&self, size: ByteSize, duration: Duration, reads: u64, writes: u64) -> Dollars {
        const SECONDS_PER_MONTH: f64 = 30.0 * 24.0 * 3600.0;
        self.per_gb_month * size.as_gb_f64() * (duration.as_secs_f64() / SECONDS_PER_MONTH)
            + self.per_read * reads as f64
            + self.per_write * writes as f64
    }
}

/// A running bill: accumulates invocation line items so billing audits
/// (experiment E7's no-double-billing property) can inspect totals.
#[derive(Debug, Default, Clone)]
pub struct Bill {
    items: Vec<LineItem>,
}

/// One billed execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineItem {
    /// Memory configured for the billed function.
    pub memory: ByteSize,
    /// Raw (un-rounded) execution duration.
    pub duration: Duration,
    /// Dollars charged.
    pub cost: Dollars,
}

impl Bill {
    /// New empty bill.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one execution under the given pricing.
    pub fn charge(&mut self, pricing: &FaasPricing, memory: ByteSize, duration: Duration) {
        self.items.push(LineItem {
            memory,
            duration,
            cost: pricing.invocation_cost(memory, duration),
        });
    }

    /// Total dollars on the bill.
    pub fn total(&self) -> Dollars {
        self.items.iter().map(|i| i.cost).sum()
    }

    /// Number of line items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the bill is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All line items.
    pub fn items(&self) -> &[LineItem] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn billed_duration_rounds_up_to_granule() {
        let p = FaasPricing::default();
        assert_eq!(
            p.billed_duration(Duration::from_millis(1)),
            Duration::from_millis(100)
        );
        assert_eq!(
            p.billed_duration(Duration::from_millis(100)),
            Duration::from_millis(100)
        );
        assert_eq!(
            p.billed_duration(Duration::from_millis(101)),
            Duration::from_millis(200)
        );
        // Zero-duration invocations still bill one granule.
        assert_eq!(
            p.billed_duration(Duration::ZERO),
            Duration::from_millis(100)
        );
    }

    #[test]
    fn invocation_cost_matches_hand_computation() {
        let p = FaasPricing::default();
        // 1 GB for exactly 1 s => per_request + per_gb_second.
        let c = p.invocation_cost(ByteSize::gb(1), Duration::from_secs(1));
        let expect = 0.20 / 1_000_000.0 + 0.000_016_666_7;
        assert!((c - expect).abs() < 1e-12);
    }

    #[test]
    fn vm_fleet_cost_scales_linearly() {
        let p = VmPricing::default();
        let one = p.fleet_cost(1, Duration::from_secs(3600));
        assert!((one - 0.096).abs() < 1e-9);
        let ten = p.fleet_cost(10, Duration::from_secs(3600));
        assert!((ten - 0.96).abs() < 1e-9);
    }

    #[test]
    fn instances_for_rounds_up() {
        let p = VmPricing {
            capacity: 16,
            ..VmPricing::default()
        };
        assert_eq!(p.instances_for(0), 0);
        assert_eq!(p.instances_for(1), 1);
        assert_eq!(p.instances_for(16), 1);
        assert_eq!(p.instances_for(17), 2);
    }

    #[test]
    fn storage_cost_components() {
        let p = StoragePricing::default();
        // 1 GB for 1 month, no ops.
        let month = Duration::from_secs(30 * 24 * 3600);
        let c = p.cost(ByteSize::gb(1), month, 0, 0);
        assert!((c - 0.023).abs() < 1e-9);
        // Ops only.
        let c = p.cost(ByteSize::ZERO, Duration::ZERO, 1_000_000, 1_000_000);
        assert!((c - 5.40).abs() < 1e-9);
    }

    #[test]
    fn bill_accumulates() {
        let p = FaasPricing::default();
        let mut b = Bill::new();
        assert!(b.is_empty());
        b.charge(&p, ByteSize::mb(512), Duration::from_millis(250));
        b.charge(&p, ByteSize::mb(512), Duration::from_millis(50));
        assert_eq!(b.len(), 2);
        let expect = p.invocation_cost(ByteSize::mb(512), Duration::from_millis(250))
            + p.invocation_cost(ByteSize::mb(512), Duration::from_millis(50));
        assert!((b.total() - expect).abs() < 1e-15);
    }

    #[test]
    fn serverless_beats_vm_at_low_utilization() {
        // The paper's headline economics: at low, spiky utilisation the
        // fine-grained bill is far below a peak-provisioned fleet.
        let faas = FaasPricing::default();
        let vm = VmPricing::default();
        let day = Duration::from_secs(24 * 3600);
        // 10k requests/day, 200 ms each, 1 GB.
        let faas_cost: Dollars =
            10_000.0 * faas.invocation_cost(ByteSize::gb(1), Duration::from_millis(200));
        // Peak of 100 concurrent => 7 VMs up all day.
        let vm_cost = vm.fleet_cost(vm.instances_for(100), day);
        assert!(faas_cost < vm_cost / 10.0, "faas={faas_cost} vm={vm_cost}");
    }
}
