//! Sharded concurrency primitives — the stack-wide answer to coarse locks.
//!
//! Le Taureau's forward-looking sections argue serverless data planes live
//! or die on contention at shared state: brokers, memory pools, metadata.
//! Before this module every hot path in the reproduction serialized behind
//! one `Mutex` per subsystem; a publish to topic A waited on a publish to
//! topic Z, and a KV put in one application's namespace waited on every
//! other tenant.
//!
//! Two primitives fix that:
//!
//! - [`ShardedMap`]: a striped-lock hash map. Keys pick one of N
//!   power-of-two shards by [`fnv`](crate::hash::fnv) of their bytes;
//!   operations lock only that shard, so disjoint keys proceed in
//!   parallel. Whole-map reads (`for_each`, `len`) lock shards one at a
//!   time — they see a consistent per-shard view, which is all the
//!   registry/report paths need.
//! - [`StripedCounter`]: a lock-free counter split across cache-padded
//!   cells. Each thread increments a cell picked by a thread-local stripe
//!   id (no CAS contention, no false sharing); reads fold all cells. This
//!   backs [`Counter`](crate::metrics::Counter), so hot-path
//!   `metrics.counter("x").inc()` never bounces a shared cache line.
//!
//! Shard count defaults to [`DEFAULT_SHARDS`] (16): enough stripes that 8
//! threads on disjoint keys collide with probability < ½ per op, small
//! enough that whole-map sweeps stay cheap. Callers with a known hot width
//! can override via [`ShardedMap::with_shards`].

use std::borrow::Borrow;
use std::cell::Cell;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::hash::{fnv, FnvBuildHasher, FnvHashMap};
use crate::id::LedgerId;

/// The table type inside each shard. FNV-hashed: shard keys are short,
/// trusted strings/ids, so the keyed SipHash the std `HashMap` defaults to
/// buys nothing and costs ~2x the whole probe on single-thread hot paths
/// (the e25 `jiffy_kv` regression). One FNV pass picks the stripe and the
/// same FNV core drives the in-table probe — no SipHash anywhere on the
/// lookup path.
pub type Shard<K, V> = FnvHashMap<K, V>;

/// Default shard count for [`ShardedMap`] (must be a power of two).
pub const DEFAULT_SHARDS: usize = 16;

/// Number of cells in a [`StripedCounter`] (must be a power of two).
pub const COUNTER_STRIPES: usize = 16;

/// Types usable as sharding keys: anything that can hash itself to a
/// stable 64-bit stripe selector via [`fnv`].
pub trait ShardKey {
    /// Stable hash used to pick a shard. Must agree between a key and any
    /// borrowed form of it (`String` vs `str`), or lookups would search
    /// the wrong shard.
    fn shard_hash(&self) -> u64;
}

impl ShardKey for str {
    #[inline]
    fn shard_hash(&self) -> u64 {
        fnv(self.as_bytes())
    }
}

impl ShardKey for String {
    #[inline]
    fn shard_hash(&self) -> u64 {
        fnv(self.as_bytes())
    }
}

impl ShardKey for [u8] {
    #[inline]
    fn shard_hash(&self) -> u64 {
        fnv(self)
    }
}

impl ShardKey for Vec<u8> {
    #[inline]
    fn shard_hash(&self) -> u64 {
        fnv(self)
    }
}

impl ShardKey for u64 {
    #[inline]
    fn shard_hash(&self) -> u64 {
        fnv(&self.to_le_bytes())
    }
}

impl ShardKey for LedgerId {
    #[inline]
    fn shard_hash(&self) -> u64 {
        fnv(&self.raw().to_le_bytes())
    }
}

/// A striped-lock hash map: N independent `Mutex<HashMap>` shards, keyed
/// by [`ShardKey::shard_hash`]. Operations on keys in different shards
/// never contend.
pub struct ShardedMap<K, V> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    mask: u64,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<K, V> ShardedMap<K, V> {
    /// New map with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// New map with at least `n` shards (rounded up to a power of two).
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| Mutex::new(Shard::with_hasher(FnvBuildHasher)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shards,
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_for(&self, hash: u64) -> &Mutex<Shard<K, V>> {
        &self.shards[(hash & self.mask) as usize]
    }
}

impl<K: Eq + Hash, V> ShardedMap<K, V> {
    /// Run `f` with exclusive access to the shard owning `key`. The
    /// closure receives the shard's whole map (so it can use the entry
    /// API for get-or-create); only that one shard is locked.
    /// The closure is monomorphized (never boxed), and the key is hashed
    /// exactly once here — the stripe index comes straight from that hash.
    #[inline]
    pub fn with<Q, R>(&self, key: &Q, f: impl FnOnce(&mut Shard<K, V>) -> R) -> R
    where
        K: Borrow<Q>,
        Q: ShardKey + ?Sized,
    {
        let hash = key.shard_hash();
        let mut shard = self.shard_for(hash).lock();
        f(&mut shard)
    }

    /// Insert, returning the previous value.
    #[inline]
    pub fn insert(&self, key: K, value: V) -> Option<V>
    where
        K: ShardKey,
    {
        let mut shard = self.shard_for(key.shard_hash()).lock();
        shard.insert(key, value)
    }

    /// Remove, returning the value if present.
    #[inline]
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: ShardKey + Hash + Eq + ?Sized,
    {
        let mut shard = self.shard_for(key.shard_hash()).lock();
        shard.remove(key)
    }

    /// Clone out the value for `key`, if present.
    #[inline]
    pub fn get_cloned<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: ShardKey + Hash + Eq + ?Sized,
        V: Clone,
    {
        let shard = self.shard_for(key.shard_hash()).lock();
        shard.get(key).cloned()
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: ShardKey + Hash + Eq + ?Sized,
    {
        let shard = self.shard_for(key.shard_hash()).lock();
        shard.contains_key(key)
    }

    /// Total entries across all shards (locks shards one at a time).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Remove every entry.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().clear();
        }
    }

    /// Visit every entry, one shard locked at a time.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for s in self.shards.iter() {
            let shard = s.lock();
            for (k, v) in shard.iter() {
                f(k, v);
            }
        }
    }

    /// Visit every entry mutably, one shard locked at a time.
    pub fn for_each_mut(&self, mut f: impl FnMut(&K, &mut V)) {
        for s in self.shards.iter() {
            let mut shard = s.lock();
            for (k, v) in shard.iter_mut() {
                f(k, v);
            }
        }
    }

    /// Keep only entries for which `f` returns true.
    pub fn retain(&self, mut f: impl FnMut(&K, &mut V) -> bool) {
        for s in self.shards.iter() {
            s.lock().retain(|k, v| f(k, v));
        }
    }

    /// Snapshot of all keys (unsorted — shard order, then map order).
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        for s in self.shards.iter() {
            out.extend(s.lock().keys().cloned());
        }
        out
    }
}

/// One cache line per counter cell, so two threads on adjacent stripes
/// never write the same line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

/// Monotonic stripe ids handed to threads on first use.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's stripe index (assigned round-robin on first use).
#[inline]
fn stripe_index() -> usize {
    STRIPE.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
            s.set(v);
        }
        v
    })
}

/// A lock-free counter striped across [`COUNTER_STRIPES`] cache-padded
/// cells. Each thread adds to its own cell; [`StripedCounter::get`] folds
/// all cells into one total. Increments scale with cores; reads pay a
/// 16-load sweep, which is fine for report-time consumers.
#[derive(Default)]
pub struct StripedCounter {
    cells: [PaddedCell; COUNTER_STRIPES],
}

impl fmt::Debug for StripedCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StripedCounter")
            .field("value", &self.get())
            .finish()
    }
}

impl StripedCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to this thread's cell.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[stripe_index() & (COUNTER_STRIPES - 1)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Fold every cell into the current total.
    pub fn get(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn sharded_map_basics() {
        let m: ShardedMap<String, u32> = ShardedMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("a".to_string(), 1), None);
        assert_eq!(m.insert("a".to_string(), 2), Some(1));
        assert_eq!(m.get_cloned("a"), Some(2));
        assert!(m.contains_key("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove("a"), Some(2));
        assert_eq!(m.get_cloned("a"), None);
    }

    #[test]
    fn borrowed_and_owned_keys_agree_on_shard() {
        // String and &str must hash identically or get() after insert()
        // would look in the wrong shard.
        let m: ShardedMap<String, u32> = ShardedMap::with_shards(64);
        for i in 0..256 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..256 {
            assert_eq!(m.get_cloned(format!("key-{i}").as_str()), Some(i));
        }
    }

    #[test]
    fn with_gives_entry_api_access() {
        let m: ShardedMap<String, Vec<u32>> = ShardedMap::new();
        for i in 0..10 {
            m.with("bucket", |shard| {
                shard.entry("bucket".to_string()).or_default().push(i)
            });
        }
        assert_eq!(m.get_cloned("bucket").unwrap().len(), 10);
    }

    #[test]
    fn for_each_and_retain_cover_all_shards() {
        let m: ShardedMap<u64, u64> = ShardedMap::with_shards(8);
        for i in 0..100u64 {
            m.insert(i, i * 2);
        }
        let mut sum = 0u64;
        m.for_each(|_, v| sum += *v);
        assert_eq!(sum, (0..100u64).map(|i| i * 2).sum());
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 50);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: ShardedMap<u64, ()> = ShardedMap::with_shards(10);
        assert_eq!(m.shard_count(), 16);
        let m: ShardedMap<u64, ()> = ShardedMap::with_shards(0);
        assert_eq!(m.shard_count(), 1);
    }

    #[test]
    fn concurrent_disjoint_writers_conserve_entries() {
        let m: Arc<ShardedMap<String, u64>> = Arc::new(ShardedMap::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..500u64 {
                        m.insert(format!("t{t}-k{i}"), i);
                    }
                });
            }
        });
        assert_eq!(m.len(), 8 * 500);
        let mut model = BTreeMap::new();
        m.for_each(|k, v| {
            model.insert(k.clone(), *v);
        });
        assert_eq!(model.len(), 8 * 500);
    }

    #[test]
    fn striped_counter_folds_on_read() {
        let c = StripedCounter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn striped_counter_concurrent_total_is_exact() {
        let c = Arc::new(StripedCounter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
