//! Sharded concurrency primitives — the stack-wide answer to coarse locks.
//!
//! Le Taureau's forward-looking sections argue serverless data planes live
//! or die on contention at shared state: brokers, memory pools, metadata.
//! Before this module every hot path in the reproduction serialized behind
//! one `Mutex` per subsystem; a publish to topic A waited on a publish to
//! topic Z, and a KV put in one application's namespace waited on every
//! other tenant.
//!
//! Two primitives fix that:
//!
//! - [`ShardedMap`]: a striped-lock hash map. Keys pick one of N
//!   power-of-two shards by [`fnv`](crate::hash::fnv) of their bytes;
//!   operations lock only that shard, so disjoint keys proceed in
//!   parallel. Whole-map reads (`for_each`, `len`) lock shards one at a
//!   time — they see a consistent per-shard view, which is all the
//!   registry/report paths need.
//! - [`StripedCounter`]: a lock-free counter split across cache-padded
//!   cells. Each thread increments a cell picked by a thread-local stripe
//!   id (no CAS contention, no false sharing); reads fold all cells. This
//!   backs [`Counter`](crate::metrics::Counter), so hot-path
//!   `metrics.counter("x").inc()` never bounces a shared cache line.
//!
//! Shard count defaults to [`DEFAULT_SHARDS`] (16): enough stripes that 8
//! threads on disjoint keys collide with probability < ½ per op, small
//! enough that whole-map sweeps stay cheap. Callers with a known hot width
//! can override via [`ShardedMap::with_shards`].

use std::borrow::Borrow;
use std::cell::Cell;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
#[cfg(feature = "lock-prof")]
use std::time::Instant;

use parking_lot::Mutex;

use crate::hash::{fnv, FnvBuildHasher, FnvHashMap};
use crate::id::LedgerId;
use crate::metrics::{Histogram, HistogramSnapshot};
use crate::trace::TelemetrySink;

/// The table type inside each shard. FNV-hashed: shard keys are short,
/// trusted strings/ids, so the keyed SipHash the std `HashMap` defaults to
/// buys nothing and costs ~2x the whole probe on single-thread hot paths
/// (the e25 `jiffy_kv` regression). One FNV pass picks the stripe and the
/// same FNV core drives the in-table probe — no SipHash anywhere on the
/// lookup path.
pub type Shard<K, V> = FnvHashMap<K, V>;

/// Default shard count for [`ShardedMap`] (must be a power of two).
pub const DEFAULT_SHARDS: usize = 16;

/// Number of cells in a [`StripedCounter`] (must be a power of two).
pub const COUNTER_STRIPES: usize = 16;

/// Types usable as sharding keys: anything that can hash itself to a
/// stable 64-bit stripe selector via [`fnv`].
pub trait ShardKey {
    /// Stable hash used to pick a shard. Must agree between a key and any
    /// borrowed form of it (`String` vs `str`), or lookups would search
    /// the wrong shard.
    fn shard_hash(&self) -> u64;
}

impl ShardKey for str {
    #[inline]
    fn shard_hash(&self) -> u64 {
        fnv(self.as_bytes())
    }
}

impl ShardKey for String {
    #[inline]
    fn shard_hash(&self) -> u64 {
        fnv(self.as_bytes())
    }
}

impl ShardKey for [u8] {
    #[inline]
    fn shard_hash(&self) -> u64 {
        fnv(self)
    }
}

impl ShardKey for Vec<u8> {
    #[inline]
    fn shard_hash(&self) -> u64 {
        fnv(self)
    }
}

impl ShardKey for u64 {
    #[inline]
    fn shard_hash(&self) -> u64 {
        fnv(&self.to_le_bytes())
    }
}

impl ShardKey for LedgerId {
    #[inline]
    fn shard_hash(&self) -> u64 {
        fnv(&self.raw().to_le_bytes())
    }
}

/// A striped-lock hash map: N independent `Mutex<HashMap>` shards, keyed
/// by [`ShardKey::shard_hash`]. Operations on keys in different shards
/// never contend.
pub struct ShardedMap<K, V> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    mask: u64,
    /// Contention instrumentation, attached at most once per map (see
    /// [`ShardedMap::attach_profiler`]). Read with a single atomic load on
    /// the hot path; `None` (the default) costs exactly that one load.
    prof: OnceLock<Arc<LockSite>>,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<K, V> ShardedMap<K, V> {
    /// New map with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// New map with at least `n` shards (rounded up to a power of two).
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| Mutex::new(Shard::with_hasher(FnvBuildHasher)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shards,
            mask: (n - 1) as u64,
            prof: OnceLock::new(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Attach a contention [`LockSite`]: every subsequent keyed
    /// acquisition (`with`, `insert`, `remove`, `get_cloned`,
    /// `contains_key`) reports wait/hold timings to it. Attach-once:
    /// returns `false` (and leaves the existing site) if a profiler is
    /// already attached. Whole-map sweeps (`for_each`, `len`, …) are
    /// report-time paths and stay untimed. With the `lock-prof` feature
    /// disabled this still stores the site but no timing code is compiled
    /// into the lock paths at all.
    pub fn attach_profiler(&self, site: Arc<LockSite>) -> bool {
        self.prof.set(site).is_ok()
    }

    /// The attached contention site, if any.
    pub fn profiler(&self) -> Option<&Arc<LockSite>> {
        self.prof.get()
    }

    /// Lock the shard owning `hash` and run `f` on it, routing through the
    /// attached [`LockSite`] when one is present. All keyed operations
    /// funnel here so instrumentation cannot miss an acquisition path.
    #[inline]
    fn run_locked<R>(&self, hash: u64, f: impl FnOnce(&mut Shard<K, V>) -> R) -> R {
        let idx = (hash & self.mask) as usize;
        let mutex = &self.shards[idx];
        #[cfg(feature = "lock-prof")]
        if let Some(site) = self.prof.get() {
            return site.timed(idx, mutex, f);
        }
        let mut shard = mutex.lock();
        f(&mut shard)
    }
}

impl<K: Eq + Hash, V> ShardedMap<K, V> {
    /// Run `f` with exclusive access to the shard owning `key`. The
    /// closure receives the shard's whole map (so it can use the entry
    /// API for get-or-create); only that one shard is locked.
    /// The closure is monomorphized (never boxed), and the key is hashed
    /// exactly once here — the stripe index comes straight from that hash.
    #[inline]
    pub fn with<Q, R>(&self, key: &Q, f: impl FnOnce(&mut Shard<K, V>) -> R) -> R
    where
        K: Borrow<Q>,
        Q: ShardKey + ?Sized,
    {
        let hash = key.shard_hash();
        self.run_locked(hash, f)
    }

    /// Insert, returning the previous value.
    #[inline]
    pub fn insert(&self, key: K, value: V) -> Option<V>
    where
        K: ShardKey,
    {
        let hash = key.shard_hash();
        self.run_locked(hash, |shard| shard.insert(key, value))
    }

    /// Remove, returning the value if present.
    #[inline]
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: ShardKey + Hash + Eq + ?Sized,
    {
        self.run_locked(key.shard_hash(), |shard| shard.remove(key))
    }

    /// Clone out the value for `key`, if present.
    #[inline]
    pub fn get_cloned<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: ShardKey + Hash + Eq + ?Sized,
        V: Clone,
    {
        self.run_locked(key.shard_hash(), |shard| shard.get(key).cloned())
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: ShardKey + Hash + Eq + ?Sized,
    {
        self.run_locked(key.shard_hash(), |shard| shard.contains_key(key))
    }

    /// Total entries across all shards (locks shards one at a time).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Remove every entry.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().clear();
        }
    }

    /// Visit every entry, one shard locked at a time.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for s in self.shards.iter() {
            let shard = s.lock();
            for (k, v) in shard.iter() {
                f(k, v);
            }
        }
    }

    /// Visit every entry mutably, one shard locked at a time.
    pub fn for_each_mut(&self, mut f: impl FnMut(&K, &mut V)) {
        for s in self.shards.iter() {
            let mut shard = s.lock();
            for (k, v) in shard.iter_mut() {
                f(k, v);
            }
        }
    }

    /// Keep only entries for which `f` returns true.
    pub fn retain(&self, mut f: impl FnMut(&K, &mut V) -> bool) {
        for s in self.shards.iter() {
            s.lock().retain(|k, v| f(k, v));
        }
    }

    /// Snapshot of all keys (unsorted — shard order, then map order).
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        for s in self.shards.iter() {
            out.extend(s.lock().keys().cloned());
        }
        out
    }
}

/// One cache line per counter cell, so two threads on adjacent stripes
/// never write the same line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

/// Monotonic stripe ids handed to threads on first use.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's stripe index (assigned round-robin on first use).
#[inline]
fn stripe_index() -> usize {
    STRIPE.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
            s.set(v);
        }
        v
    })
}

/// A lock-free counter striped across [`COUNTER_STRIPES`] cache-padded
/// cells. Each thread adds to its own cell; [`StripedCounter::get`] folds
/// all cells into one total. Increments scale with cores; reads pay a
/// 16-load sweep, which is fine for report-time consumers.
#[derive(Default)]
pub struct StripedCounter {
    cells: [PaddedCell; COUNTER_STRIPES],
}

impl fmt::Debug for StripedCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StripedCounter")
            .field("value", &self.get())
            .finish()
    }
}

impl StripedCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to this thread's cell.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[stripe_index() & (COUNTER_STRIPES - 1)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Fold every cell into the current total.
    pub fn get(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

/// Default hold-time sampling rate for a [`LockSite`]: one acquisition in
/// this many (per thread) pays the two clock reads that bracket the
/// critical section. Waits are never sampled — a wait only starts its
/// clock after `try_lock` has already failed, so the uncontended path
/// never reads a clock at all.
pub const HOLD_SAMPLE_EVERY: u64 = 64;

#[cfg(feature = "lock-prof")]
thread_local! {
    /// Per-thread acquisition tick driving hold-time sampling. Thread-local
    /// so sampling needs no shared atomic (lock-order-free: recording never
    /// takes a lock, so a profiled lock can never deadlock against the
    /// profiler).
    static HOLD_TICK: Cell<u64> = const { Cell::new(0) };
}

#[cfg(feature = "lock-prof")]
#[inline]
fn hold_sampled(mask: u64) -> bool {
    HOLD_TICK.with(|t| {
        let v = t.get().wrapping_add(1);
        t.set(v);
        v & mask == 0
    })
}

/// Saturating nanosecond count of a [`Duration`].
#[cfg(feature = "lock-prof")]
#[inline]
fn saturating_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Contention instrumentation for one named lock site (one [`ShardedMap`],
/// e.g. the broker's topic registry). Counts every acquisition, times
/// every *contended* wait (`try_lock` miss → clock → blocking `lock`), and
/// samples hold times one-in-[`HOLD_SAMPLE_EVERY`]. All recording is
/// lock-order-free: striped counters, per-shard padded atomics, and an
/// atomic histogram — the profiler can never introduce an ordering edge
/// between the locks it watches.
///
/// Cost model (why this stays always-on): an uncontended acquisition pays
/// one striped `fetch_add` plus (1/N of the time) two `Instant::now`
/// reads; a contended one was already paying a blocking wait, so its two
/// clock reads and histogram update are noise. The `lock-prof` cargo
/// feature (default on) compiles even that out for builds that want the
/// seed-identical hot path.
pub struct LockSite {
    name: String,
    /// `hold_sample_every - 1`; sampling tests `tick & mask == 0`.
    hold_sample_mask: u64,
    acquisitions: StripedCounter,
    contended: StripedCounter,
    wait_nanos: StripedCounter,
    hold_nanos: StripedCounter,
    wait_us: Histogram,
    hold_us: Histogram,
    shard_wait: Box<[PaddedCell]>,
    shard_hold: Box<[PaddedCell]>,
}

impl fmt::Debug for LockSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockSite")
            .field("name", &self.name)
            .field("acquisitions", &self.acquisitions.get())
            .field("contended", &self.contended.get())
            .finish_non_exhaustive()
    }
}

impl LockSite {
    /// New site covering `shards` stripes, sampling hold times at the
    /// default [`HOLD_SAMPLE_EVERY`] rate.
    pub fn new(name: impl Into<String>, shards: usize) -> Arc<Self> {
        Self::with_hold_sampling(name, shards, HOLD_SAMPLE_EVERY)
    }

    /// New site sampling hold times one-in-`every` (must be a power of
    /// two; `1` measures every acquisition — useful in tests).
    pub fn with_hold_sampling(name: impl Into<String>, shards: usize, every: u64) -> Arc<Self> {
        assert!(every.is_power_of_two(), "hold sampling rate must be 2^k");
        let shards = shards.max(1);
        let mk = |n: usize| {
            (0..n)
                .map(|_| PaddedCell::default())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        };
        Arc::new(Self {
            name: name.into(),
            hold_sample_mask: every - 1,
            acquisitions: StripedCounter::new(),
            contended: StripedCounter::new(),
            wait_nanos: StripedCounter::new(),
            hold_nanos: StripedCounter::new(),
            wait_us: Histogram::new(),
            hold_us: Histogram::new(),
            shard_wait: mk(shards),
            shard_hold: mk(shards),
        })
    }

    /// Site name (the call site it labels, e.g. `pulsar.topics`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Acquire `mutex` (stripe `shard` of this site), timing the wait when
    /// contended and the hold when sampled, then run `f` under the guard.
    #[cfg(feature = "lock-prof")]
    #[inline]
    pub(crate) fn timed<T, R>(
        &self,
        shard: usize,
        mutex: &Mutex<T>,
        f: impl FnOnce(&mut T) -> R,
    ) -> R {
        self.acquisitions.inc();
        let mut guard = match mutex.try_lock() {
            Some(g) => g,
            None => {
                // The clock starts only after we know we will block: the
                // uncontended fast path never reads a clock for waits.
                let t0 = Instant::now();
                let g = mutex.lock();
                let waited = t0.elapsed();
                let ns = saturating_nanos(waited);
                self.contended.inc();
                self.wait_nanos.add(ns);
                if let Some(cell) = self.shard_wait.get(shard) {
                    cell.0.fetch_add(ns, Ordering::Relaxed);
                }
                self.wait_us.record_duration(waited);
                g
            }
        };
        if hold_sampled(self.hold_sample_mask) {
            let t0 = Instant::now();
            let out = f(&mut guard);
            drop(guard);
            let held = t0.elapsed();
            let ns = saturating_nanos(held);
            self.hold_nanos.add(ns);
            if let Some(cell) = self.shard_hold.get(shard) {
                cell.0.fetch_add(ns, Ordering::Relaxed);
            }
            self.hold_us.record_duration(held);
            out
        } else {
            f(&mut guard)
        }
    }

    /// Point-in-time snapshot for reporting.
    pub fn snapshot(&self) -> LockSiteSnapshot {
        LockSiteSnapshot {
            name: self.name.clone(),
            acquisitions: self.acquisitions.get(),
            contended: self.contended.get(),
            wait_total: Duration::from_nanos(self.wait_nanos.get()),
            hold_sampled_total: Duration::from_nanos(self.hold_nanos.get()),
            hold_sample_every: self.hold_sample_mask + 1,
            wait_us: self.wait_us.snapshot(),
            hold_us: self.hold_us.snapshot(),
            shard_wait_nanos: self
                .shard_wait
                .iter()
                .map(|c| c.0.load(Ordering::Relaxed))
                .collect(),
            shard_hold_nanos: self
                .shard_hold
                .iter()
                .map(|c| c.0.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Snapshot of one [`LockSite`]'s counters, timers, and histograms.
#[derive(Debug, Clone)]
pub struct LockSiteSnapshot {
    /// Site name.
    pub name: String,
    /// Total acquisitions (contended or not).
    pub acquisitions: u64,
    /// Acquisitions that failed `try_lock` and blocked.
    pub contended: u64,
    /// Total time spent blocked across all contended acquisitions.
    pub wait_total: Duration,
    /// Total hold time of the *sampled* acquisitions (multiply by
    /// `hold_sample_every` for an estimate of the true total; see
    /// [`LockSiteSnapshot::hold_total_estimate`]).
    pub hold_sampled_total: Duration,
    /// One acquisition in this many had its hold time measured.
    pub hold_sample_every: u64,
    /// Wait-time distribution of contended acquisitions, microseconds.
    pub wait_us: HistogramSnapshot,
    /// Hold-time distribution of sampled acquisitions, microseconds.
    pub hold_us: HistogramSnapshot,
    /// Per-shard blocked-wait nanoseconds (index = shard index).
    pub shard_wait_nanos: Vec<u64>,
    /// Per-shard sampled-hold nanoseconds (index = shard index).
    pub shard_hold_nanos: Vec<u64>,
}

impl LockSiteSnapshot {
    /// Fraction of acquisitions that blocked, in `[0, 1]`.
    pub fn contention_ratio(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }

    /// Estimated total hold time: sampled total scaled by the sampling
    /// rate.
    pub fn hold_total_estimate(&self) -> Duration {
        self.hold_sampled_total
            .saturating_mul(u32::try_from(self.hold_sample_every).unwrap_or(u32::MAX))
    }

    /// The shard with the most blocked-wait time, if any waiting happened.
    pub fn hottest_shard(&self) -> Option<(usize, Duration)> {
        self.shard_wait_nanos
            .iter()
            .enumerate()
            .max_by_key(|(_, ns)| **ns)
            .filter(|(_, ns)| **ns > 0)
            .map(|(i, ns)| (i, Duration::from_nanos(*ns)))
    }
}

#[derive(Default)]
struct ProfilerInner {
    sites: Mutex<Vec<Arc<LockSite>>>,
    /// Per-site `[acquisitions, contended, wait_nanos]` at the last
    /// [`ContentionProfiler::flush_to_sink`], so flushes emit deltas.
    last_flush: Mutex<FnvHashMap<String, [u64; 3]>>,
}

/// Registry of [`LockSite`]s across a process: subsystems create sites
/// here and attach them to their [`ShardedMap`]s; reporting planes read
/// [`ContentionProfiler::snapshots`] or ship deltas through a
/// [`TelemetrySink`]. Cheap to clone (clones share the registry).
#[derive(Clone, Default)]
pub struct ContentionProfiler {
    inner: Arc<ProfilerInner>,
}

impl fmt::Debug for ContentionProfiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContentionProfiler")
            .field("sites", &self.inner.sites.lock().len())
            .finish()
    }
}

impl ContentionProfiler {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a [`LockSite`] named `name` covering `shards` stripes and
    /// register it.
    pub fn site(&self, name: impl Into<String>, shards: usize) -> Arc<LockSite> {
        let site = LockSite::new(name, shards);
        self.register(&site);
        site
    }

    /// Register an externally created site.
    pub fn register(&self, site: &Arc<LockSite>) {
        self.inner.sites.lock().push(Arc::clone(site));
    }

    /// All registered sites.
    pub fn sites(&self) -> Vec<Arc<LockSite>> {
        self.inner.sites.lock().clone()
    }

    /// Name-sorted snapshots of every registered site.
    pub fn snapshots(&self) -> Vec<LockSiteSnapshot> {
        let mut out: Vec<_> = self.sites().iter().map(|s| s.snapshot()).collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Push per-site counter *deltas* since the previous flush onto a
    /// telemetry sink as metric events (`lock.<site>.acquisitions`,
    /// `.contended`, `.wait_ns`). Returns the number of events pushed;
    /// zero-delta metrics are skipped, so an idle profiler ships nothing.
    pub fn flush_to_sink(&self, sink: &TelemetrySink) -> usize {
        let sites = self.sites();
        let mut last = self.inner.last_flush.lock();
        let mut pushed = 0;
        for site in sites {
            let snap = [
                site.acquisitions.get(),
                site.contended.get(),
                site.wait_nanos.get(),
            ];
            let prev = last.entry(site.name.clone()).or_insert([0; 3]);
            for (i, suffix) in ["acquisitions", "contended", "wait_ns"]
                .into_iter()
                .enumerate()
            {
                let delta = snap[i].saturating_sub(prev[i]);
                if delta > 0 && sink.metric(&format!("lock.{}.{suffix}", site.name), delta) {
                    pushed += 1;
                }
            }
            *prev = snap;
        }
        pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn sharded_map_basics() {
        let m: ShardedMap<String, u32> = ShardedMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("a".to_string(), 1), None);
        assert_eq!(m.insert("a".to_string(), 2), Some(1));
        assert_eq!(m.get_cloned("a"), Some(2));
        assert!(m.contains_key("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove("a"), Some(2));
        assert_eq!(m.get_cloned("a"), None);
    }

    #[test]
    fn borrowed_and_owned_keys_agree_on_shard() {
        // String and &str must hash identically or get() after insert()
        // would look in the wrong shard.
        let m: ShardedMap<String, u32> = ShardedMap::with_shards(64);
        for i in 0..256 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..256 {
            assert_eq!(m.get_cloned(format!("key-{i}").as_str()), Some(i));
        }
    }

    #[test]
    fn with_gives_entry_api_access() {
        let m: ShardedMap<String, Vec<u32>> = ShardedMap::new();
        for i in 0..10 {
            m.with("bucket", |shard| {
                shard.entry("bucket".to_string()).or_default().push(i)
            });
        }
        assert_eq!(m.get_cloned("bucket").unwrap().len(), 10);
    }

    #[test]
    fn for_each_and_retain_cover_all_shards() {
        let m: ShardedMap<u64, u64> = ShardedMap::with_shards(8);
        for i in 0..100u64 {
            m.insert(i, i * 2);
        }
        let mut sum = 0u64;
        m.for_each(|_, v| sum += *v);
        assert_eq!(sum, (0..100u64).map(|i| i * 2).sum());
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 50);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: ShardedMap<u64, ()> = ShardedMap::with_shards(10);
        assert_eq!(m.shard_count(), 16);
        let m: ShardedMap<u64, ()> = ShardedMap::with_shards(0);
        assert_eq!(m.shard_count(), 1);
    }

    #[test]
    fn concurrent_disjoint_writers_conserve_entries() {
        let m: Arc<ShardedMap<String, u64>> = Arc::new(ShardedMap::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..500u64 {
                        m.insert(format!("t{t}-k{i}"), i);
                    }
                });
            }
        });
        assert_eq!(m.len(), 8 * 500);
        let mut model = BTreeMap::new();
        m.for_each(|k, v| {
            model.insert(k.clone(), *v);
        });
        assert_eq!(model.len(), 8 * 500);
    }

    #[cfg(feature = "lock-prof")]
    #[test]
    fn lock_site_counts_every_acquisition_path() {
        let m: ShardedMap<String, u64> = ShardedMap::new();
        let site = LockSite::new("test.map", m.shard_count());
        assert!(m.attach_profiler(Arc::clone(&site)));
        // Second attach is refused and leaves the first site in place.
        assert!(!m.attach_profiler(LockSite::new("other", m.shard_count())));
        assert_eq!(m.profiler().unwrap().name(), "test.map");

        m.insert("a".to_string(), 1); // 1
        m.with("a", |s| s.get("a").copied()); // 2
        m.get_cloned("a"); // 3
        m.contains_key("a"); // 4
        m.remove("a"); // 5
        let snap = site.snapshot();
        assert_eq!(snap.acquisitions, 5);
        assert_eq!(snap.contended, 0);
        assert_eq!(snap.wait_total, Duration::ZERO);
        assert_eq!(snap.shard_wait_nanos.len(), m.shard_count());
        assert!(snap.hottest_shard().is_none());
        assert_eq!(snap.contention_ratio(), 0.0);
    }

    #[cfg(feature = "lock-prof")]
    #[test]
    fn contended_acquisitions_record_wait_time() {
        let m: Arc<ShardedMap<String, u64>> = Arc::new(ShardedMap::with_shards(1));
        let site = LockSite::with_hold_sampling("hot", 1, 1);
        m.attach_profiler(Arc::clone(&site));
        // One thread camps on the only shard; others must block behind it.
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..50 {
                        m.with("k", |shard| {
                            *shard.entry("k".to_string()).or_insert(0) += 1;
                            std::thread::sleep(Duration::from_micros(50));
                        });
                    }
                });
            }
        });
        assert_eq!(m.get_cloned("k"), Some(200));
        let snap = site.snapshot();
        // 200 writer acquisitions + the final read.
        assert_eq!(snap.acquisitions, 201);
        assert!(snap.contended > 0, "4 threads on 1 shard must contend");
        assert!(snap.wait_total > Duration::ZERO);
        assert!(snap.wait_us.count == snap.contended);
        // Hold sampling at 1: every acquisition measured, and the holds
        // include the deliberate 50µs sleeps.
        assert_eq!(snap.hold_us.count, snap.acquisitions);
        assert!(snap.hold_sampled_total >= Duration::from_micros(50) * 200);
        assert_eq!(snap.hottest_shard().unwrap().0, 0);
        assert!(snap.contention_ratio() > 0.0 && snap.contention_ratio() <= 1.0);
        // hold_sample_every == 1 → estimate equals the sampled total.
        assert_eq!(snap.hold_total_estimate(), snap.hold_sampled_total);
    }

    #[test]
    fn profiler_registry_snapshots_and_flushes_deltas() {
        use crate::trace::{TelemetryEvent, TelemetrySink};
        let prof = ContentionProfiler::new();
        let m: ShardedMap<String, u64> = ShardedMap::new();
        m.attach_profiler(prof.site("z.site", m.shard_count()));
        m.attach_profiler(prof.site("a.site", m.shard_count())); // refused
        assert_eq!(prof.sites().len(), 2);
        let names: Vec<_> = prof.snapshots().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a.site".to_string(), "z.site".to_string()]);

        m.insert("k".to_string(), 7);
        m.get_cloned("k");
        let sink = TelemetrySink::new(64);
        let pushed = prof.flush_to_sink(&sink);
        if cfg!(feature = "lock-prof") {
            assert_eq!(pushed, 1, "only z.site.acquisitions moved");
            let events = sink.drain(16);
            match &events[0] {
                TelemetryEvent::Metric { name, delta } => {
                    assert_eq!(name, "lock.z.site.acquisitions");
                    assert_eq!(*delta, 2);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Idle profiler ships nothing on the next flush.
        assert_eq!(prof.flush_to_sink(&sink), 0);
    }

    #[test]
    fn striped_counter_folds_on_read() {
        let c = StripedCounter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn striped_counter_concurrent_total_is_exact() {
        let c = Arc::new(StripedCounter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
