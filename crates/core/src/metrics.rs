//! Counters, gauges and histograms.
//!
//! The stack records every latency and billing event through these types, and
//! the benchmark harness reads them back to print the experiment tables.
//! [`Histogram`] is a log-linear bucketed histogram (HDR-style: power-of-two
//! magnitude, linear sub-buckets), giving bounded relative error on quantile
//! queries without storing raw samples.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::sync::{ShardedMap, StripedCounter};

/// Number of linear sub-buckets per power-of-two magnitude. 16 sub-buckets
/// gives a worst-case relative error of 1/16 ≈ 6% on quantiles, ample for
/// latency reporting.
const SUB_BUCKETS: usize = 16;
const SUB_BUCKET_BITS: u32 = 4; // log2(SUB_BUCKETS)
/// Magnitudes 2^0 .. 2^63.
const MAGNITUDES: usize = 64;

/// A monotonically increasing counter.
///
/// Internally striped across per-thread cells
/// ([`StripedCounter`]): increments are a single uncontended
/// `fetch_add` on a cache line the incrementing thread effectively owns,
/// and [`Counter::get`] folds the cells into the total. Hot paths on many
/// threads never serialize on a shared line.
#[derive(Debug, Default)]
pub struct Counter {
    value: StripedCounter,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.add(n);
    }

    /// Current value (folds the per-thread cells).
    pub fn get(&self) -> u64 {
        self.value.get()
    }
}

/// A gauge that can move both ways (e.g. live containers, allocated blocks).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increase by `n`.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease by `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Log-linear bucketed histogram over `u64` values.
///
/// Values are assigned to one of `64 * SUB_BUCKETS` buckets; the bucket's
/// representative value (its upper bound) is returned from quantile queries,
/// so quantiles are over-estimates by at most one sub-bucket width.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(MAGNITUDES * SUB_BUCKETS);
        buckets.resize_with(MAGNITUDES * SUB_BUCKETS, AtomicU64::default);
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros();
        let shift = magnitude - SUB_BUCKET_BITS;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        ((magnitude - SUB_BUCKET_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    fn bucket_upper_bound(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let magnitude = (index / SUB_BUCKETS) as u32 + SUB_BUCKET_BITS - 1;
        let sub = (index % SUB_BUCKETS) as u128;
        let base = 1u128 << magnitude;
        let width = 1u128 << (magnitude - SUB_BUCKET_BITS);
        // The very top sub-bucket's bound is 2^64, one past u64::MAX;
        // saturate so bucket_index(u64::MAX) round-trips without overflow.
        (base + (sub + 1) * width - 1).min(u64::MAX as u128) as u64
    }

    /// Record one value.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
    }

    /// Record a duration in microseconds, saturating at `u64::MAX` for
    /// durations too large to represent (rather than silently truncating).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Fold another histogram's population into this one (used to publish
    /// a locally-built histogram into a registry).
    pub fn merge_from(&self, other: &Histogram) {
        for (bucket, other_bucket) in self.buckets.iter().zip(&other.buckets) {
            let n = other_bucket.load(Ordering::Relaxed);
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values, or 0 if empty.
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.max.load(Ordering::Relaxed)
        }
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Value at quantile `q` in `[0, 1]` (upper bound of the containing
    /// bucket). Returns 0 for an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Convenience: p50.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// Convenience: p99.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// Duration view of a quantile, assuming microsecond recordings.
    pub fn quantile_duration(&self, q: f64) -> Duration {
        Duration::from_micros(self.value_at_quantile(q))
    }

    /// Quantile estimate from the bucket bounds — the monitoring-facing
    /// alias for [`Histogram::value_at_quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.value_at_quantile(q)
    }

    /// One-line health summary (`count/p50/p90/p99/max`), the form used
    /// by health-report renderers.
    pub fn summary(&self) -> String {
        format!(
            "count={} p50={} p90={} p99={} max={}",
            self.count(),
            self.value_at_quantile(0.50),
            self.value_at_quantile(0.90),
            self.value_at_quantile(0.99),
            self.max(),
        )
    }
}

/// Point-in-time snapshot of a histogram for reporting.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Sample count.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Minimum value.
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum value.
    pub max: u64,
}

impl Histogram {
    /// Take a snapshot of the common reporting quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p99: self.value_at_quantile(0.99),
            max: self.max(),
        }
    }
}

/// A named registry of metrics, shared across a subsystem.
///
/// Lookups create on first use, so call sites never have to pre-register.
/// The name→metric maps are sharded ([`ShardedMap`]): concurrent lookups
/// of different metric names lock different stripes, so the registry no
/// longer serializes every hot path that touches any metric. Report-time
/// accessors still return name-sorted vectors.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryShards>,
}

#[derive(Debug, Default)]
struct RegistryShards {
    counters: ShardedMap<String, Arc<Counter>>,
    gauges: ShardedMap<String, Arc<Gauge>>,
    histograms: ShardedMap<String, Arc<Histogram>>,
}

/// Collect a sharded name→metric map into a name-sorted projection.
fn sorted_view<M, T>(
    map: &ShardedMap<String, Arc<M>>,
    project: impl Fn(&Arc<M>) -> T,
) -> Vec<(String, T)> {
    let mut out = Vec::new();
    map.for_each(|k, v| out.push((k.clone(), project(v))));
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Get-or-create on a sharded metric map without allocating on the hot
/// path: the steady state is "metric already exists", which `entry()`
/// would pay an unconditional `name.to_string()` for on *every* call —
/// the dominant cost e25 measured on `metrics_counter`-adjacent paths.
/// Only the first touch of a name (the miss) allocates.
fn get_or_create<M>(
    map: &ShardedMap<String, Arc<M>>,
    name: &str,
    create: impl FnOnce() -> M,
) -> Arc<M> {
    map.with(name, |shard| {
        if let Some(existing) = shard.get(name) {
            return Arc::clone(existing);
        }
        let created = Arc::new(create());
        shard.insert(name.to_string(), Arc::clone(&created));
        created
    })
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create a counter.
    #[inline]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.inner.counters, name, Counter::new)
    }

    /// Get or create a gauge.
    #[inline]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.inner.gauges, name, Gauge::new)
    }

    /// Get or create a histogram.
    #[inline]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.inner.histograms, name, Histogram::new)
    }

    /// Names and values of all counters, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        sorted_view(&self.inner.counters, |c| c.get())
    }

    /// Names and snapshots of all histograms, sorted by name.
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        sorted_view(&self.inner.histograms, |h| h.snapshot())
    }

    /// Names and one-line [`Histogram::summary`] strings of all
    /// histograms, sorted by name — the form health reports embed.
    pub fn histogram_summaries(&self) -> Vec<(String, String)> {
        sorted_view(&self.inner.histograms, |h| h.summary())
    }

    /// Names and values of all gauges, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        sorted_view(&self.inner.gauges, |g| g.get())
    }

    /// Render every metric in the Prometheus text exposition format.
    ///
    /// Counters and gauges become single samples; histograms become
    /// summaries (`{quantile="..."}` samples plus `_sum` and `_count`).
    pub fn render_prometheus(&self) -> String {
        self.render_prometheus_prefixed("")
    }

    /// [`render_prometheus`](Self::render_prometheus) with every metric
    /// name prefixed (e.g. a subsystem name), so expositions from several
    /// registries can be concatenated without collisions.
    pub fn render_prometheus_prefixed(&self, prefix: &str) -> String {
        self.render_prometheus_labeled(prefix, &[])
    }

    /// [`render_prometheus_prefixed`](Self::render_prometheus_prefixed)
    /// with a shared label set attached to every sample (e.g.
    /// `instance`/`tenant` identity when several processes' expositions
    /// are scraped together). Label *names* must already be valid
    /// Prometheus identifiers; label *values* are arbitrary and escaped
    /// per the text-format spec (backslash, double-quote, line feed).
    /// Every metric family gets `# HELP` and `# TYPE` comment lines.
    pub fn render_prometheus_labeled(&self, prefix: &str, labels: &[(&str, &str)]) -> String {
        fn sanitize(prefix: &str, name: &str) -> String {
            let mut out = String::with_capacity(prefix.len() + name.len());
            for (i, c) in prefix.chars().chain(name.chars()).enumerate() {
                match c {
                    'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
                    '0'..='9' if i > 0 => out.push(c),
                    _ => out.push('_'),
                }
            }
            out
        }

        use std::fmt::Write as _;
        let shared = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect::<Vec<_>>()
            .join(",");
        // Label block for plain samples; empty when there are no labels.
        let base = if shared.is_empty() {
            String::new()
        } else {
            format!("{{{shared}}}")
        };
        let with_quantile = |q: f64| {
            if shared.is_empty() {
                format!("{{quantile=\"{q}\"}}")
            } else {
                format!("{{{shared},quantile=\"{q}\"}}")
            }
        };

        let mut out = String::new();
        for (orig, value) in self.counter_values() {
            let name = sanitize(prefix, &orig);
            let _ = writeln!(out, "# HELP {name} Counter `{}`.", escape_help(&orig));
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{base} {value}");
        }
        for (orig, value) in self.gauge_values() {
            let name = sanitize(prefix, &orig);
            let _ = writeln!(out, "# HELP {name} Gauge `{}`.", escape_help(&orig));
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name}{base} {value}");
        }
        for (orig, h) in sorted_view(&self.inner.histograms, Arc::clone) {
            let name = sanitize(prefix, &orig);
            let _ = writeln!(
                out,
                "# HELP {name} Histogram `{}` quantile summary.",
                escape_help(&orig)
            );
            let _ = writeln!(out, "# TYPE {name} summary");
            for q in [0.5, 0.9, 0.99] {
                let _ = writeln!(out, "{name}{} {}", with_quantile(q), h.value_at_quantile(q));
            }
            let _ = writeln!(out, "{name}_sum{base} {}", h.sum());
            let _ = writeln!(out, "{name}_count{base} {}", h.count());
        }
        out
    }
}

/// Escape a Prometheus label value per the text exposition format:
/// backslash → `\\`, double-quote → `\"`, line feed → `\n`. All other
/// bytes pass through untouched (values are arbitrary UTF-8).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text per the exposition format: backslash → `\\` and
/// line feed → `\n` (quotes are legal in help text and stay literal).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_exact_for_small_values() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.value_at_quantile(1.0), 15);
        assert_eq!(h.value_at_quantile(0.0), 0);
    }

    #[test]
    fn histogram_quantile_relative_error_bounded() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let expect = (q * 100_000.0) as u64;
            let got = h.value_at_quantile(q);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.07, "q={q}: got {got}, expect {expect}, err {err}");
            assert!(got >= expect, "quantile should be an upper bound");
        }
    }

    #[test]
    fn histogram_bucket_roundtrip_upper_bound_contains_value() {
        for v in [0u64, 1, 15, 16, 17, 255, 256, 1 << 20, u64::MAX / 2] {
            let idx = Histogram::bucket_index(v);
            let ub = Histogram::bucket_upper_bound(idx);
            assert!(ub >= v, "value {v} above bucket upper bound {ub}");
        }
    }

    #[test]
    fn histogram_summary_line_and_quantile_alias() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), h.value_at_quantile(0.5));
        let s = h.summary();
        assert!(s.starts_with("count=100 "));
        assert!(s.contains("p50="));
        assert!(s.contains("p90="));
        assert!(s.contains("p99="));
        assert!(s.contains("max="));
        let empty = Histogram::new();
        assert_eq!(empty.summary(), "count=0 p50=0 p90=0 p99=0 max=0");
    }

    #[test]
    fn histogram_mean_and_sum() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.sum(), 60);
        assert!((h.mean() - 20.0).abs() < f64::EPSILON);
    }

    #[test]
    fn record_duration_saturates_instead_of_truncating() {
        let h = Histogram::new();
        // 2^64 µs does not fit in u64; a silent `as u64` cast would wrap
        // this to a tiny value. It must land at the very top instead.
        let big = Duration::from_secs(u64::MAX / 1_000_000 + 1);
        assert!(big.as_micros() > u64::MAX as u128);
        h.record_duration(big);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.value_at_quantile(1.0), u64::MAX);
    }

    #[test]
    fn bucket_index_of_u64_max_round_trips() {
        let idx = Histogram::bucket_index(u64::MAX);
        assert!(idx < MAGNITUDES * SUB_BUCKETS);
        // Must not overflow, and must still contain the value.
        assert_eq!(Histogram::bucket_upper_bound(idx), u64::MAX);
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.value_at_quantile(0.5), u64::MAX);
    }

    #[test]
    fn gauge_values_reports_all_gauges() {
        let r = MetricsRegistry::new();
        r.gauge("live_containers").set(4);
        r.gauge("allocated_blocks").add(7);
        assert_eq!(
            r.gauge_values(),
            vec![
                ("allocated_blocks".to_string(), 7),
                ("live_containers".to_string(), 4)
            ]
        );
    }

    #[test]
    fn prometheus_exposition_format() {
        let r = MetricsRegistry::new();
        r.counter("invocations").add(3);
        r.gauge("pool.size").set(-2);
        r.histogram("latency_us").record(100);
        let text = r.render_prometheus_prefixed("faas_");
        assert!(text.contains("# TYPE faas_invocations counter\nfaas_invocations 3\n"));
        // Dots are sanitized to underscores.
        assert!(text.contains("# TYPE faas_pool_size gauge\nfaas_pool_size -2\n"));
        assert!(text.contains("# TYPE faas_latency_us summary"));
        assert!(text.contains("faas_latency_us{quantile=\"0.5\"} "));
        assert!(text.contains("faas_latency_us_sum 100\n"));
        assert!(text.contains("faas_latency_us_count 1\n"));
        // Every non-comment line is `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            assert!(parts.next().is_some(), "bad line: {line}");
            let val = parts.next().expect("value field");
            assert!(val.parse::<f64>().is_ok(), "unparsable value in: {line}");
            assert_eq!(parts.next(), None, "trailing fields in: {line}");
        }
    }

    #[test]
    fn prometheus_help_lines_precede_type_lines() {
        let r = MetricsRegistry::new();
        r.counter("invocations").inc();
        r.gauge("pool.size").set(1);
        r.histogram("latency_us").record(5);
        let text = r.render_prometheus_prefixed("faas_");
        for family in ["faas_invocations", "faas_pool_size", "faas_latency_us"] {
            let help = text.find(&format!("# HELP {family} ")).unwrap();
            let typ = text.find(&format!("# TYPE {family} ")).unwrap();
            assert!(help < typ, "{family}: HELP must precede TYPE");
        }
        // Help text echoes the original (pre-sanitize) metric name.
        assert!(text.contains("# HELP faas_pool_size Gauge `pool.size`."));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter("hits").add(2);
        r.histogram("lat").record(9);
        let text =
            r.render_prometheus_labeled("", &[("path", "C:\\tmp\\\"x\"\nend"), ("plain", "ok")]);
        let want = "path=\"C:\\\\tmp\\\\\\\"x\\\"\\nend\",plain=\"ok\"";
        assert!(
            text.contains(&format!("hits{{{want}}} 2")),
            "counter sample missing escaped labels:\n{text}"
        );
        // Histogram quantile samples merge shared labels with `quantile`.
        assert!(text.contains(&format!("lat{{{want},quantile=\"0.5\"}} ")));
        assert!(text.contains(&format!("lat_sum{{{want}}} 9")));
        assert!(text.contains(&format!("lat_count{{{want}}} 1")));
        // No raw (unescaped) newline may survive inside a sample line.
        for line in text.lines() {
            assert!(!line.is_empty(), "escaping must not split sample lines");
        }
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn registry_shares_handles() {
        let r = MetricsRegistry::new();
        r.counter("invocations").add(3);
        r.counter("invocations").add(2);
        assert_eq!(r.counter("invocations").get(), 5);
        r.histogram("latency_us").record(100);
        assert_eq!(r.histogram("latency_us").count(), 1);
        let names: Vec<String> = r.counter_values().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["invocations".to_string()]);
    }
}
