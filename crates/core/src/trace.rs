//! Structured request tracing across the serverless stack.
//!
//! One FaaS invocation touches three decoupled systems — compute
//! (taureau-faas), messaging (taureau-pulsar), and ephemeral state
//! (taureau-jiffy) — and the whole point of the paper's deconstruction is
//! that cost and latency only make sense when a single request can be
//! followed across all of them. This module provides that spine: a
//! [`Tracer`] records [`SpanRecord`]s with `TraceId`/`SpanId` identity,
//! parent→child causal links, per-span key/value attributes, and
//! timestamps taken from the stack's [`clock`](crate::clock) (so virtual
//! and wall clocks both work).
//!
//! Parent propagation is implicit: each thread keeps a stack of open
//! spans, and a span started while another is open on the same thread
//! becomes its child — which is exactly right for this stack, where a
//! FaaS handler synchronously calls into Pulsar and Jiffy on the invoking
//! thread. Spans opened on other threads start new traces.
//!
//! Exporters: [`Tracer::chrome_trace_json`] emits Chrome `trace_event`
//! JSON loadable in Perfetto / `chrome://tracing`, and
//! [`Tracer::flame_summary`] emits semicolon-folded stack lines (the
//! format flamegraph tools consume) aggregated by call path.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::clock::SharedClock;

/// Identity of one causally-linked request tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identity of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Exportable identity of an open span: enough to parent new spans under
/// it from *other* threads. Implicit parent propagation (the thread-local
/// span stack) only links spans opened on one thread; fan-out executors
/// that dispatch work to worker threads capture a [`SpanContext`] from the
/// driver's span and hand it to [`Tracer::span_child_of`] so the whole
/// parallel run still renders as one causally-linked tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace the parent span belongs to.
    pub trace_id: TraceId,
    /// The parent span itself.
    pub span_id: SpanId,
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: TraceId,
    /// This span's id.
    pub span_id: SpanId,
    /// Causal parent within the trace, `None` for the root.
    pub parent: Option<SpanId>,
    /// Operation name, e.g. `faas.invoke`.
    pub name: String,
    /// Owning subsystem, e.g. `taureau-pulsar`.
    pub system: &'static str,
    /// Clock timestamp at span open.
    pub start: Duration,
    /// Clock timestamp at span close.
    pub end: Duration,
    /// Key/value attributes attached while the span was open.
    pub attrs: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// Wall/virtual time the span covered.
    pub fn duration(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

struct TracerInner {
    clock: SharedClock,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl fmt::Debug for TracerInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracerInner")
            .field("spans", &self.spans.lock().len())
            .finish_non_exhaustive()
    }
}

thread_local! {
    /// Open spans on this thread: (trace id, span id) pairs.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Span recorder shared by every instrumented subsystem. Cheap to clone
/// (clones share the span buffer); a default-constructed tracer is
/// disabled and records nothing, so instrumentation is free until a
/// harness attaches a real one.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// An enabled tracer stamping spans from `clock`.
    pub fn new(clock: SharedClock) -> Self {
        Self {
            inner: Some(Arc::new(TracerInner {
                clock,
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A tracer that records nothing (the default for all subsystems).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span. It closes (and is recorded) when the guard drops.
    /// If another span is open on this thread, the new one becomes its
    /// child; otherwise it roots a new trace.
    pub fn span(&self, system: &'static str, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { state: None };
        };
        let span_id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (trace_id, parent) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let (trace_id, parent) = match stack.last() {
                Some(&(trace, parent)) => (trace, Some(SpanId(parent))),
                None => (inner.next_id.fetch_add(1, Ordering::Relaxed), None),
            };
            stack.push((trace_id, span_id));
            (trace_id, parent)
        });
        SpanGuard {
            state: Some(OpenSpan {
                tracer: Arc::clone(inner),
                record: SpanRecord {
                    trace_id: TraceId(trace_id),
                    span_id: SpanId(span_id),
                    parent,
                    name: name.to_string(),
                    system,
                    start: inner.clock.now(),
                    end: Duration::ZERO,
                    attrs: Vec::new(),
                },
            }),
        }
    }

    /// Open a span as an explicit child of `parent`, regardless of what is
    /// open on the current thread. This is the cross-thread variant of
    /// [`Tracer::span`]: a driver thread captures [`SpanGuard::context`]
    /// and worker threads adopt it, so spans they (and their callees) open
    /// nest under the driver's span instead of rooting new traces. With
    /// `parent: None` this behaves exactly like [`Tracer::span`].
    pub fn span_child_of(
        &self,
        system: &'static str,
        name: &str,
        parent: Option<SpanContext>,
    ) -> SpanGuard {
        let Some(ctx) = parent else {
            return self.span(system, name);
        };
        let Some(inner) = &self.inner else {
            return SpanGuard { state: None };
        };
        let span_id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().push((ctx.trace_id.0, span_id));
        });
        SpanGuard {
            state: Some(OpenSpan {
                tracer: Arc::clone(inner),
                record: SpanRecord {
                    trace_id: ctx.trace_id,
                    span_id: SpanId(span_id),
                    parent: Some(ctx.span_id),
                    name: name.to_string(),
                    system,
                    start: inner.clock.now(),
                    end: Duration::ZERO,
                    attrs: Vec::new(),
                },
            }),
        }
    }

    /// Snapshot of every recorded span, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.spans.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.spans.lock().len(),
            None => 0,
        }
    }

    /// Drop all recorded spans.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.spans.lock().clear();
        }
    }

    /// Export every span as Chrome `trace_event` JSON (complete "X"
    /// events, microsecond timestamps), loadable in Perfetto or
    /// `chrome://tracing`. Each trace renders as its own track (`tid` =
    /// trace id); span/parent ids ride along in `args`.
    pub fn chrome_trace_json(&self) -> String {
        use std::fmt::Write as _;
        let spans = self.spans();
        let mut out = String::with_capacity(128 + spans.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                json_string(&s.name),
                json_string(s.system),
                s.start.as_micros(),
                s.duration().as_micros(),
                s.trace_id.0,
            );
            let _ = write!(
                out,
                ",\"args\":{{\"trace_id\":\"{}\",\"span_id\":\"{}\"",
                s.trace_id, s.span_id
            );
            if let Some(p) = s.parent {
                let _ = write!(out, ",\"parent_span_id\":\"{p}\"");
            }
            for (k, v) in &s.attrs {
                let _ = write!(out, ",{}:{}", json_string(k), json_string(v));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Aggregate spans into semicolon-folded flame lines
    /// (`root;child;leaf count total_us`), heaviest path first — the
    /// input format of standard flamegraph tooling, and readable as a
    /// plain-text summary on its own.
    pub fn flame_summary(&self) -> String {
        use std::collections::BTreeMap;
        use std::fmt::Write as _;

        let spans = self.spans();
        let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span_id.0, s)).collect();
        let mut folded: BTreeMap<String, (u64, u128)> = BTreeMap::new();
        for s in &spans {
            let mut path = vec![s.name.as_str()];
            let mut cur = s.parent;
            while let Some(pid) = cur {
                match by_id.get(&pid.0) {
                    Some(p) => {
                        path.push(p.name.as_str());
                        cur = p.parent;
                    }
                    None => break,
                }
            }
            path.reverse();
            let entry = folded.entry(path.join(";")).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += s.duration().as_micros();
        }
        let mut lines: Vec<(String, u64, u128)> =
            folded.into_iter().map(|(p, (c, t))| (p, c, t)).collect();
        lines.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        let mut out = String::new();
        for (path, count, total_us) in lines {
            let _ = writeln!(out, "{path} {count} {total_us}");
        }
        out
    }
}

/// Escape a string as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug)]
struct OpenSpan {
    tracer: Arc<TracerInner>,
    record: SpanRecord,
}

/// RAII handle for an open span; records the span when dropped. Obtained
/// from [`Tracer::span`]. Guards must drop in reverse open order on a
/// thread (the natural result of scoping them).
#[derive(Debug)]
#[must_use = "a span guard records its span when dropped"]
pub struct SpanGuard {
    state: Option<OpenSpan>,
}

impl SpanGuard {
    /// Attach a key/value attribute.
    pub fn attr(&mut self, key: &'static str, value: impl ToString) {
        if let Some(open) = &mut self.state {
            open.record.attrs.push((key, value.to_string()));
        }
    }

    /// This span's trace id (`None` on a disabled tracer).
    pub fn trace_id(&self) -> Option<TraceId> {
        self.state.as_ref().map(|o| o.record.trace_id)
    }

    /// This span's id (`None` on a disabled tracer).
    pub fn span_id(&self) -> Option<SpanId> {
        self.state.as_ref().map(|o| o.record.span_id)
    }

    /// Identity for parenting spans under this one from other threads
    /// (`None` on a disabled tracer). See [`Tracer::span_child_of`].
    pub fn context(&self) -> Option<SpanContext> {
        self.state.as_ref().map(|o| SpanContext {
            trace_id: o.record.trace_id,
            span_id: o.record.span_id,
        })
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut open) = self.state.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop this span; tolerate out-of-order drops by removing the
            // matching entry rather than blindly popping the top.
            if let Some(pos) = stack
                .iter()
                .rposition(|&(_, id)| id == open.record.span_id.0)
            {
                stack.remove(pos);
            }
        });
        open.record.end = open.tracer.clock.now();
        open.tracer.spans.lock().push(open.record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn virtual_tracer() -> (Tracer, std::sync::Arc<VirtualClock>) {
        let clock = std::sync::Arc::new(VirtualClock::new());
        (Tracer::new(clock.clone()), clock)
    }

    #[test]
    fn nested_spans_link_parent_to_child() {
        let (tracer, clock) = virtual_tracer();
        {
            let root = tracer.span("taureau-faas", "faas.invoke");
            clock.advance(Duration::from_millis(1));
            {
                let mut child = tracer.span("taureau-jiffy", "jiffy.kv_put");
                child.attr("bytes", 128);
                clock.advance(Duration::from_millis(2));
            }
            let _ = &root;
        }
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        // Children complete (and record) before parents.
        let child = &spans[0];
        let root = &spans[1];
        assert_eq!(child.name, "jiffy.kv_put");
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.span_id));
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.attrs, vec![("bytes", "128".to_string())]);
        assert_eq!(child.duration(), Duration::from_millis(2));
        assert_eq!(root.duration(), Duration::from_millis(3));
        assert!(root.start <= child.start && child.end <= root.end);
    }

    #[test]
    fn sibling_spans_share_a_parent_and_new_roots_get_new_traces() {
        let (tracer, _clock) = virtual_tracer();
        {
            let _root = tracer.span("a", "root");
            let _ = tracer.span("a", "first");
            let _ = tracer.span("a", "second");
        }
        let _lone = tracer.span("a", "lone");
        drop(_lone);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 4);
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        let first = spans.iter().find(|s| s.name == "first").unwrap();
        let second = spans.iter().find(|s| s.name == "second").unwrap();
        let lone = spans.iter().find(|s| s.name == "lone").unwrap();
        assert_eq!(first.parent, Some(root.span_id));
        assert_eq!(second.parent, Some(root.span_id));
        assert_eq!(lone.parent, None);
        assert_ne!(lone.trace_id, root.trace_id);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut g = tracer.span("a", "op");
        g.attr("k", "v");
        assert_eq!(g.span_id(), None);
        drop(g);
        assert_eq!(tracer.span_count(), 0);
        assert_eq!(
            tracer.chrome_trace_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn chrome_export_escapes_and_structures() {
        let (tracer, clock) = virtual_tracer();
        {
            let mut g = tracer.span("sys", "op \"quoted\"\n");
            g.attr("key", "va\\lue");
            clock.advance(Duration::from_micros(7));
        }
        let json = tracer.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":7"));
        assert!(json.contains("op \\\"quoted\\\"\\n"));
        assert!(json.contains("va\\\\lue"));
    }

    #[test]
    fn flame_summary_folds_paths() {
        let (tracer, clock) = virtual_tracer();
        {
            let _root = tracer.span("a", "root");
            for _ in 0..3 {
                let _child = tracer.span("a", "leaf");
                clock.advance(Duration::from_micros(10));
            }
        }
        let flame = tracer.flame_summary();
        let leaf_line = flame.lines().find(|l| l.starts_with("root;leaf ")).unwrap();
        assert_eq!(leaf_line, "root;leaf 3 30");
        assert!(flame.lines().any(|l| l.starts_with("root ")));
    }

    #[test]
    fn explicit_context_links_spans_across_threads() {
        let (tracer, _clock) = virtual_tracer();
        let root = tracer.span("dag", "dag.run");
        let ctx = root.context();
        assert!(ctx.is_some());
        let mut handles = Vec::new();
        for i in 0..3 {
            let t2 = tracer.clone();
            handles.push(std::thread::spawn(move || {
                let _node = t2.span_child_of("dag", &format!("dag.node.{i}"), ctx);
                // A span opened while the adopted span is open on this
                // thread nests under it implicitly.
                let _inner = t2.span("faas", "faas.invoke");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(root);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 7);
        let root = spans.iter().find(|s| s.name == "dag.run").unwrap();
        let nodes: Vec<_> = spans
            .iter()
            .filter(|s| s.name.starts_with("dag.node."))
            .collect();
        assert_eq!(nodes.len(), 3);
        for node in &nodes {
            assert_eq!(node.trace_id, root.trace_id);
            assert_eq!(node.parent, Some(root.span_id));
        }
        for invoke in spans.iter().filter(|s| s.name == "faas.invoke") {
            assert_eq!(invoke.trace_id, root.trace_id);
            assert!(nodes.iter().any(|n| invoke.parent == Some(n.span_id)));
        }
    }

    #[test]
    fn span_child_of_without_parent_behaves_like_span() {
        let (tracer, _clock) = virtual_tracer();
        drop(tracer.span_child_of("a", "lone", None));
        let spans = tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent, None);
        // Disabled tracers hand back inert guards from both entry points.
        let disabled = Tracer::disabled();
        let g = disabled.span("a", "x");
        assert!(g.context().is_none());
        drop(disabled.span_child_of("a", "y", None));
        assert_eq!(disabled.span_count(), 0);
    }

    #[test]
    fn spans_on_other_threads_start_their_own_traces() {
        let (tracer, _clock) = virtual_tracer();
        let _root = tracer.span("a", "root");
        let t2 = tracer.clone();
        std::thread::spawn(move || {
            let _remote = t2.span("b", "remote");
        })
        .join()
        .unwrap();
        drop(_root);
        let spans = tracer.spans();
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        let remote = spans.iter().find(|s| s.name == "remote").unwrap();
        assert_ne!(remote.trace_id, root.trace_id);
        assert_eq!(remote.parent, None);
    }
}
