//! Structured request tracing across the serverless stack.
//!
//! One FaaS invocation touches three decoupled systems — compute
//! (taureau-faas), messaging (taureau-pulsar), and ephemeral state
//! (taureau-jiffy) — and the whole point of the paper's deconstruction is
//! that cost and latency only make sense when a single request can be
//! followed across all of them. This module provides that spine: a
//! [`Tracer`] records [`SpanRecord`]s with `TraceId`/`SpanId` identity,
//! parent→child causal links, per-span key/value attributes, and
//! timestamps taken from the stack's [`clock`](crate::clock) (so virtual
//! and wall clocks both work).
//!
//! Parent propagation is implicit: each thread keeps a stack of open
//! spans, and a span started while another is open on the same thread
//! becomes its child — which is exactly right for this stack, where a
//! FaaS handler synchronously calls into Pulsar and Jiffy on the invoking
//! thread. Spans opened on other threads start new traces.
//!
//! Exporters: [`Tracer::chrome_trace_json`] emits Chrome `trace_event`
//! JSON loadable in Perfetto / `chrome://tracing`, and
//! [`Tracer::flame_summary`] emits semicolon-folded stack lines (the
//! format flamegraph tools consume) aggregated by call path.
//!
//! Retention is bounded: the tracer is an always-on **flight recorder**
//! holding the most recent [`TracerConfig::retention`] spans in a ring
//! buffer (oldest evicted first, counted in [`Tracer::dropped_spans`]),
//! with optional head-based sampling for high-volume deployments. A
//! [`TelemetrySink`] can be attached to stream every finished span (and
//! metric deltas from instrumented subsystems) into a bounded queue that a
//! monitoring plane drains — queue overflow drops events and counts them,
//! so monitoring can never stall the hot path.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::clock::SharedClock;

/// Identity of one causally-linked request tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identity of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Exportable identity of an open span: enough to parent new spans under
/// it from *other* threads. Implicit parent propagation (the thread-local
/// span stack) only links spans opened on one thread; fan-out executors
/// that dispatch work to worker threads capture a [`SpanContext`] from the
/// driver's span and hand it to [`Tracer::span_child_of`] so the whole
/// parallel run still renders as one causally-linked tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace the parent span belongs to.
    pub trace_id: TraceId,
    /// The parent span itself.
    pub span_id: SpanId,
}

impl SpanContext {
    /// Encoded size of [`SpanContext::to_bytes`]: two little-endian u64s.
    pub const WIRE_LEN: usize = 16;

    /// Fixed-width wire form (`trace_id` then `span_id`, little-endian).
    /// This is what rides in Pulsar entry headers, DAG checkpoint frames,
    /// and FaaS invocation envelopes so causality survives crossing a
    /// queue, a ledger, or a spill file. The payload bytes themselves are
    /// never touched — the context lives in the frame header, keeping the
    /// zero-copy `Bytes::slice` decode paths intact.
    pub fn to_bytes(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.trace_id.0.to_le_bytes());
        out[8..].copy_from_slice(&self.span_id.0.to_le_bytes());
        out
    }

    /// Decode a context previously encoded with [`SpanContext::to_bytes`].
    /// Returns `None` when `bytes` is not exactly [`SpanContext::WIRE_LEN`]
    /// long (a framing error, not a valid empty context).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::WIRE_LEN {
            return None;
        }
        let trace = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let span = u64::from_le_bytes(bytes[8..].try_into().ok()?);
        Some(Self {
            trace_id: TraceId(trace),
            span_id: SpanId(span),
        })
    }
}

/// A hybrid-logical-clock stamp: physical microseconds, a logical
/// counter that breaks ties among events within one microsecond, and the
/// stamping node's id as the final tiebreaker.
///
/// HLC (Kulkarni et al.) gives cross-node events a total order that is
/// consistent with causality even when each node reads a skewed local
/// clock: a message's receive stamp is always greater than its send
/// stamp, because the receiver folds the sender's stamp into its own
/// clock ([`HlcClock::observe`]) before stamping. The derived `Ord` is
/// exactly the HLC order — `(physical_us, logical, node)` lexicographic —
/// so sorting a merged event stream by stamp yields one timeline that
/// every observer agrees on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HlcStamp {
    /// Max physical clock reading (µs) this stamp has absorbed.
    pub physical_us: u64,
    /// Logical counter: orders events sharing one physical microsecond.
    pub logical: u32,
    /// Stamping node — the final tiebreaker, so two distinct events never
    /// compare equal unless stamped by the same node at the same (pt, l).
    pub node: u64,
}

impl HlcStamp {
    /// Encoded size of [`HlcStamp::to_bytes`].
    pub const WIRE_LEN: usize = 20;

    /// The zero stamp (sorts before every real stamp).
    pub const ZERO: Self = Self {
        physical_us: 0,
        logical: 0,
        node: 0,
    };

    /// The stamp's physical component as a [`Duration`] since the clock
    /// epoch. Node clock skew is baked in — treat it as approximate
    /// wall-time, exact order.
    pub fn time(&self) -> Duration {
        Duration::from_micros(self.physical_us)
    }

    /// Fixed-width wire form: `physical_us`, `logical`, `node`,
    /// little-endian.
    pub fn to_bytes(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.physical_us.to_le_bytes());
        out[8..12].copy_from_slice(&self.logical.to_le_bytes());
        out[12..].copy_from_slice(&self.node.to_le_bytes());
        out
    }

    /// Decode a stamp encoded with [`HlcStamp::to_bytes`]; `None` when
    /// `bytes` is not exactly [`HlcStamp::WIRE_LEN`] long.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::WIRE_LEN {
            return None;
        }
        Some(Self {
            physical_us: u64::from_le_bytes(bytes[..8].try_into().ok()?),
            logical: u32::from_le_bytes(bytes[8..12].try_into().ok()?),
            node: u64::from_le_bytes(bytes[12..].try_into().ok()?),
        })
    }
}

/// One node's hybrid logical clock. Thread-safe; every stamp it issues is
/// strictly greater than the previous one, and a stamp issued after
/// [`HlcClock::observe`]-ing a remote stamp is strictly greater than that
/// remote stamp — the two invariants that make merged timelines causal.
#[derive(Debug)]
pub struct HlcClock {
    node: u64,
    /// (max physical seen, logical counter at that physical).
    state: Mutex<(u64, u32)>,
}

impl HlcClock {
    /// A fresh clock for `node`, at (0, 0).
    pub fn new(node: u64) -> Self {
        Self {
            node,
            state: Mutex::new((0, 0)),
        }
    }

    /// The node this clock stamps for.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// Stamp a local or send event, given the node's current physical
    /// clock reading in microseconds (skew included).
    pub fn tick(&self, physical_us: u64) -> HlcStamp {
        let mut st = self.state.lock();
        if physical_us > st.0 {
            st.0 = physical_us;
            st.1 = 0;
        } else {
            st.1 += 1;
        }
        HlcStamp {
            physical_us: st.0,
            logical: st.1,
            node: self.node,
        }
    }

    /// Stamp a receive event: fold `remote` into this clock so the result
    /// exceeds both the remote stamp and everything stamped locally so
    /// far, even when the local physical clock lags the sender's.
    pub fn observe(&self, physical_us: u64, remote: HlcStamp) -> HlcStamp {
        let mut st = self.state.lock();
        let merged = st.0.max(remote.physical_us).max(physical_us);
        let logical = if merged == st.0 && merged == remote.physical_us {
            st.1.max(remote.logical) + 1
        } else if merged == st.0 {
            st.1 + 1
        } else if merged == remote.physical_us {
            remote.logical + 1
        } else {
            0
        };
        st.0 = merged;
        st.1 = logical;
        HlcStamp {
            physical_us: merged,
            logical,
            node: self.node,
        }
    }
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: TraceId,
    /// This span's id.
    pub span_id: SpanId,
    /// Causal parent within the trace, `None` for the root.
    pub parent: Option<SpanId>,
    /// Operation name, e.g. `faas.invoke`.
    pub name: String,
    /// Owning subsystem, e.g. `taureau-pulsar`.
    pub system: &'static str,
    /// Clock timestamp at span open.
    pub start: Duration,
    /// Clock timestamp at span close.
    pub end: Duration,
    /// Key/value attributes attached while the span was open.
    pub attrs: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// Wall/virtual time the span covered.
    pub fn duration(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

/// Retention and sampling policy for a [`Tracer`].
#[derive(Debug, Clone)]
pub struct TracerConfig {
    /// Maximum spans retained in the flight-recorder ring buffer. When
    /// full, the oldest span is evicted (and counted in
    /// [`Tracer::dropped_spans`]). Must be at least 1.
    pub retention: usize,
    /// Head-based sampling: keep roughly one in this many traces
    /// (decided by hashing the trace id, so sequential ids still sample
    /// uniformly). `1` (the default) keeps everything. Sampling is per
    /// *trace*, so a kept trace is always causally complete.
    pub sample_one_in: u64,
}

impl Default for TracerConfig {
    fn default() -> Self {
        Self {
            retention: 65_536,
            sample_one_in: 1,
        }
    }
}

/// One event on the telemetry stream: a finished span or a metric delta.
#[derive(Debug, Clone)]
pub enum TelemetryEvent {
    /// A finished span, exactly as recorded by the tracer.
    Span(SpanRecord),
    /// A named counter/sample increment from an instrumented subsystem.
    Metric {
        /// Metric name, e.g. `faas.cold_starts`.
        name: String,
        /// Increment (for counters) or sample value (for latency metrics).
        delta: u64,
    },
}

#[derive(Debug)]
struct SinkInner {
    capacity: usize,
    queue: Mutex<VecDeque<TelemetryEvent>>,
    dropped: AtomicU64,
}

/// Bounded, non-blocking hand-off queue between the traced hot path and a
/// monitoring plane. Producers ([`SpanGuard`] drops, subsystem metric
/// hooks) push without ever blocking: when the queue is full the event is
/// dropped and counted instead. A pump on the monitoring side calls
/// [`TelemetrySink::drain`] and ships events onward (e.g. onto Pulsar
/// telemetry topics). Cheap to clone; clones share the queue.
#[derive(Debug, Clone)]
pub struct TelemetrySink {
    inner: Arc<SinkInner>,
}

impl TelemetrySink {
    /// A sink queueing at most `capacity` undrained events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "telemetry sink capacity must be >= 1");
        Self {
            inner: Arc::new(SinkInner {
                capacity,
                queue: Mutex::new(VecDeque::new()),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Maximum undrained events held before new ones are dropped.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Enqueue an event. Returns `false` (and counts the drop) when the
    /// queue is full; never blocks beyond the queue lock.
    pub fn push(&self, event: TelemetryEvent) -> bool {
        let mut queue = self.inner.queue.lock();
        if queue.len() >= self.inner.capacity {
            drop(queue);
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        queue.push_back(event);
        true
    }

    /// Enqueue a finished span.
    pub fn span(&self, record: SpanRecord) -> bool {
        self.push(TelemetryEvent::Span(record))
    }

    /// Enqueue a metric delta.
    pub fn metric(&self, name: &str, delta: u64) -> bool {
        self.push(TelemetryEvent::Metric {
            name: name.to_string(),
            delta,
        })
    }

    /// Dequeue up to `max` events in arrival order.
    pub fn drain(&self, max: usize) -> Vec<TelemetryEvent> {
        let mut queue = self.inner.queue.lock();
        let n = max.min(queue.len());
        queue.drain(..n).collect()
    }

    /// Undrained events currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

thread_local! {
    /// When set, finished spans are not forwarded to the telemetry sink.
    /// Used by the telemetry pump itself so that shipping telemetry over
    /// an instrumented transport does not generate telemetry about the
    /// shipping (an unbounded feedback loop).
    static TELEMETRY_SUPPRESSED: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with telemetry-sink forwarding suppressed on this thread.
/// Spans opened inside are still recorded in the tracer's ring buffer;
/// they just do not re-enter the telemetry stream. Reentrant-safe.
pub fn suppress_telemetry<R>(f: impl FnOnce() -> R) -> R {
    let prev = TELEMETRY_SUPPRESSED.with(|s| s.replace(true));
    let out = f();
    TELEMETRY_SUPPRESSED.with(|s| s.set(prev));
    out
}

fn telemetry_suppressed() -> bool {
    TELEMETRY_SUPPRESSED.with(|s| s.get())
}

struct TracerInner {
    clock: SharedClock,
    config: TracerConfig,
    next_id: AtomicU64,
    spans: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
    sink: Mutex<Option<TelemetrySink>>,
}

impl TracerInner {
    /// Head-based sampling decision: a pure function of the trace id, so
    /// every span of a trace agrees without coordination.
    fn sampled(&self, trace_id: u64) -> bool {
        self.config.sample_one_in <= 1 || mix64(trace_id).is_multiple_of(self.config.sample_one_in)
    }
}

/// splitmix64 finalizer: decorrelates sequential trace ids so modulo
/// sampling approximates a uniform one-in-N draw.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl fmt::Debug for TracerInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracerInner")
            .field("spans", &self.spans.lock().len())
            .finish_non_exhaustive()
    }
}

thread_local! {
    /// Open spans on this thread: (trace id, span id) pairs.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Span recorder shared by every instrumented subsystem. Cheap to clone
/// (clones share the span buffer); a default-constructed tracer is
/// disabled and records nothing, so instrumentation is free until a
/// harness attaches a real one.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// An enabled tracer stamping spans from `clock`, with default
    /// retention and no sampling (see [`TracerConfig`]).
    pub fn new(clock: SharedClock) -> Self {
        Self::with_config(clock, TracerConfig::default())
    }

    /// An enabled tracer with an explicit retention/sampling policy.
    pub fn with_config(clock: SharedClock, config: TracerConfig) -> Self {
        assert!(config.retention >= 1, "tracer retention must be >= 1");
        Self {
            inner: Some(Arc::new(TracerInner {
                clock,
                config,
                next_id: AtomicU64::new(1),
                spans: Mutex::new(VecDeque::new()),
                dropped: AtomicU64::new(0),
                sink: Mutex::new(None),
            })),
        }
    }

    /// A tracer that records nothing (the default for all subsystems).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The retention/sampling policy, `None` for a disabled tracer.
    pub fn config(&self) -> Option<TracerConfig> {
        self.inner.as_ref().map(|i| i.config.clone())
    }

    /// Spans evicted from the flight-recorder ring buffer because it was
    /// full. Unsampled spans are not counted (they were never recorded).
    pub fn dropped_spans(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Attach a telemetry sink: every sampled finished span is also
    /// pushed onto it (non-blocking, drop-counted). Replaces any
    /// previously attached sink. No-op on a disabled tracer.
    pub fn set_telemetry(&self, sink: TelemetrySink) {
        if let Some(inner) = &self.inner {
            *inner.sink.lock() = Some(sink);
        }
    }

    /// Detach the telemetry sink, if any.
    pub fn clear_telemetry(&self) {
        if let Some(inner) = &self.inner {
            *inner.sink.lock() = None;
        }
    }

    /// The attached telemetry sink, if any. Instrumented subsystems use
    /// this to push metric deltas alongside their spans.
    pub fn telemetry(&self) -> Option<TelemetrySink> {
        self.inner.as_ref().and_then(|i| i.sink.lock().clone())
    }

    /// Open a span. It closes (and is recorded) when the guard drops.
    /// If another span is open on this thread, the new one becomes its
    /// child; otherwise it roots a new trace.
    pub fn span(&self, system: &'static str, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { state: None };
        };
        let span_id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (trace_id, parent) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let (trace_id, parent) = match stack.last() {
                Some(&(trace, parent)) => (trace, Some(SpanId(parent))),
                None => (inner.next_id.fetch_add(1, Ordering::Relaxed), None),
            };
            stack.push((trace_id, span_id));
            (trace_id, parent)
        });
        SpanGuard {
            state: Some(OpenSpan {
                tracer: Arc::clone(inner),
                record: SpanRecord {
                    trace_id: TraceId(trace_id),
                    span_id: SpanId(span_id),
                    parent,
                    name: name.to_string(),
                    system,
                    start: inner.clock.now(),
                    end: Duration::ZERO,
                    attrs: Vec::new(),
                },
            }),
        }
    }

    /// Open a span as an explicit child of `parent`, regardless of what is
    /// open on the current thread. This is the cross-thread variant of
    /// [`Tracer::span`]: a driver thread captures [`SpanGuard::context`]
    /// and worker threads adopt it, so spans they (and their callees) open
    /// nest under the driver's span instead of rooting new traces. With
    /// `parent: None` this behaves exactly like [`Tracer::span`].
    pub fn span_child_of(
        &self,
        system: &'static str,
        name: &str,
        parent: Option<SpanContext>,
    ) -> SpanGuard {
        let Some(ctx) = parent else {
            return self.span(system, name);
        };
        let Some(inner) = &self.inner else {
            return SpanGuard { state: None };
        };
        let span_id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().push((ctx.trace_id.0, span_id));
        });
        SpanGuard {
            state: Some(OpenSpan {
                tracer: Arc::clone(inner),
                record: SpanRecord {
                    trace_id: ctx.trace_id,
                    span_id: SpanId(span_id),
                    parent: Some(ctx.span_id),
                    name: name.to_string(),
                    system,
                    start: inner.clock.now(),
                    end: Duration::ZERO,
                    attrs: Vec::new(),
                },
            }),
        }
    }

    /// Snapshot of every retained span, in completion order (oldest
    /// retained first). When the ring buffer has overflowed this is the
    /// most recent [`TracerConfig::retention`] spans.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.spans.lock().iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Number of retained spans.
    pub fn span_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.spans.lock().len(),
            None => 0,
        }
    }

    /// Drop all recorded spans.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.spans.lock().clear();
        }
    }

    /// Export every span as Chrome `trace_event` JSON (complete "X"
    /// events, microsecond timestamps), loadable in Perfetto or
    /// `chrome://tracing`. Each trace renders as its own track (`tid` =
    /// trace id); span/parent ids ride along in `args`.
    pub fn chrome_trace_json(&self) -> String {
        use std::fmt::Write as _;
        let spans = self.spans();
        let mut out = String::with_capacity(128 + spans.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                json_string(&s.name),
                json_string(s.system),
                s.start.as_micros(),
                s.duration().as_micros(),
                s.trace_id.0,
            );
            let _ = write!(
                out,
                ",\"args\":{{\"trace_id\":\"{}\",\"span_id\":\"{}\"",
                s.trace_id, s.span_id
            );
            if let Some(p) = s.parent {
                let _ = write!(out, ",\"parent_span_id\":\"{p}\"");
            }
            for (k, v) in &s.attrs {
                let _ = write!(out, ",{}:{}", json_string(k), json_string(v));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Aggregate spans into semicolon-folded flame lines
    /// (`root;child;leaf count total_us`), heaviest path first — the
    /// input format of standard flamegraph tooling, and readable as a
    /// plain-text summary on its own.
    pub fn flame_summary(&self) -> String {
        use std::collections::BTreeMap;
        use std::fmt::Write as _;

        let spans = self.spans();
        let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span_id.0, s)).collect();
        let mut folded: BTreeMap<String, (u64, u128)> = BTreeMap::new();
        for s in &spans {
            let mut path = vec![s.name.as_str()];
            let mut cur = s.parent;
            while let Some(pid) = cur {
                match by_id.get(&pid.0) {
                    Some(p) => {
                        path.push(p.name.as_str());
                        cur = p.parent;
                    }
                    None => break,
                }
            }
            path.reverse();
            let entry = folded.entry(path.join(";")).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += s.duration().as_micros();
        }
        let mut lines: Vec<(String, u64, u128)> =
            folded.into_iter().map(|(p, (c, t))| (p, c, t)).collect();
        lines.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        let mut out = String::new();
        for (path, count, total_us) in lines {
            let _ = writeln!(out, "{path} {count} {total_us}");
        }
        out
    }
}

/// Escape a string as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug)]
struct OpenSpan {
    tracer: Arc<TracerInner>,
    record: SpanRecord,
}

/// RAII handle for an open span; records the span when dropped. Obtained
/// from [`Tracer::span`]. Guards must drop in reverse open order on a
/// thread (the natural result of scoping them).
#[derive(Debug)]
#[must_use = "a span guard records its span when dropped"]
pub struct SpanGuard {
    state: Option<OpenSpan>,
}

impl SpanGuard {
    /// Attach a key/value attribute.
    pub fn attr(&mut self, key: &'static str, value: impl ToString) {
        if let Some(open) = &mut self.state {
            open.record.attrs.push((key, value.to_string()));
        }
    }

    /// This span's trace id (`None` on a disabled tracer).
    pub fn trace_id(&self) -> Option<TraceId> {
        self.state.as_ref().map(|o| o.record.trace_id)
    }

    /// This span's id (`None` on a disabled tracer).
    pub fn span_id(&self) -> Option<SpanId> {
        self.state.as_ref().map(|o| o.record.span_id)
    }

    /// Identity for parenting spans under this one from other threads
    /// (`None` on a disabled tracer). See [`Tracer::span_child_of`].
    pub fn context(&self) -> Option<SpanContext> {
        self.state.as_ref().map(|o| SpanContext {
            trace_id: o.record.trace_id,
            span_id: o.record.span_id,
        })
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut open) = self.state.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop this span; tolerate out-of-order drops by removing the
            // matching entry rather than blindly popping the top.
            if let Some(pos) = stack
                .iter()
                .rposition(|&(_, id)| id == open.record.span_id.0)
            {
                stack.remove(pos);
            }
        });
        let inner = &open.tracer;
        // Head-based sampling: unsampled traces still participate in the
        // span stack above (so ids stay consistent) but record nothing.
        if !inner.sampled(open.record.trace_id.0) {
            return;
        }
        open.record.end = inner.clock.now();
        // A guard dropped during unwind did not complete its operation;
        // without this the span would be indistinguishable from a normal
        // completion and flame/critical-path views would attribute the
        // aborted work as successful time.
        if std::thread::panicking() {
            open.record.attrs.push(("error", "panic".to_string()));
        }
        // Snapshot the sink handle in its own statement so the sink-slot
        // lock drops immediately; the enqueue below then runs with no
        // tracer lock held. (The old `if let Some(sink) =
        // inner.sink.lock().clone()` kept the guard alive across the
        // enqueue, so a stalled telemetry consumer could block every
        // traced subsystem the moment monitoring attached.)
        let sink = if telemetry_suppressed() {
            None
        } else {
            inner.sink.lock().clone()
        };
        if let Some(sink) = sink {
            sink.span(open.record.clone());
        }
        let mut spans = inner.spans.lock();
        if spans.len() >= inner.config.retention {
            spans.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(open.record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn hlc_tick_is_strictly_monotonic() {
        let clock = HlcClock::new(7);
        let mut prev = clock.tick(100);
        // Physical clock stuck, then jumping backwards: stamps still grow.
        for physical in [100, 100, 50, 200, 200, 150] {
            let next = clock.tick(physical);
            assert!(next > prev, "{next:?} !> {prev:?}");
            prev = next;
        }
    }

    #[test]
    fn hlc_observe_exceeds_remote_and_local() {
        let receiver = HlcClock::new(2);
        let local = receiver.tick(1_000);
        // Sender's clock runs 500µs ahead of the receiver's.
        let remote = HlcStamp {
            physical_us: 1_500,
            logical: 3,
            node: 1,
        };
        let merged = receiver.observe(1_010, remote);
        assert!(merged > remote, "{merged:?} !> remote {remote:?}");
        assert!(merged > local, "{merged:?} !> local {local:?}");
        // A later local event still orders after the merge.
        assert!(receiver.tick(1_020) > merged);
    }

    #[test]
    fn hlc_orders_send_before_receive_despite_skew() {
        // Sender's physical clock lags the receiver's by 400µs; the
        // receive stamp must still sort after the send stamp.
        let sender = HlcClock::new(1);
        let receiver = HlcClock::new(2);
        let sent = sender.tick(600); // true time 1000µs, skew -400
        let received = receiver.observe(1_050, sent);
        assert!(received > sent);

        // And the reverse skew: sender ahead of receiver.
        let sent = sender.tick(2_000); // true time 1600µs, skew +400
        let received = receiver.observe(1_650, sent);
        assert!(received > sent);
    }

    #[test]
    fn hlc_stamp_wire_roundtrip() {
        let stamp = HlcStamp {
            physical_us: 123_456_789,
            logical: 42,
            node: 9,
        };
        let bytes = stamp.to_bytes();
        assert_eq!(bytes.len(), HlcStamp::WIRE_LEN);
        assert_eq!(HlcStamp::from_bytes(&bytes), Some(stamp));
        assert_eq!(HlcStamp::from_bytes(&bytes[..19]), None);
        assert!(HlcStamp::ZERO < stamp);
    }

    fn virtual_tracer() -> (Tracer, std::sync::Arc<VirtualClock>) {
        let clock = std::sync::Arc::new(VirtualClock::new());
        (Tracer::new(clock.clone()), clock)
    }

    #[test]
    fn nested_spans_link_parent_to_child() {
        let (tracer, clock) = virtual_tracer();
        {
            let root = tracer.span("taureau-faas", "faas.invoke");
            clock.advance(Duration::from_millis(1));
            {
                let mut child = tracer.span("taureau-jiffy", "jiffy.kv_put");
                child.attr("bytes", 128);
                clock.advance(Duration::from_millis(2));
            }
            let _ = &root;
        }
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        // Children complete (and record) before parents.
        let child = &spans[0];
        let root = &spans[1];
        assert_eq!(child.name, "jiffy.kv_put");
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.span_id));
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.attrs, vec![("bytes", "128".to_string())]);
        assert_eq!(child.duration(), Duration::from_millis(2));
        assert_eq!(root.duration(), Duration::from_millis(3));
        assert!(root.start <= child.start && child.end <= root.end);
    }

    #[test]
    fn sibling_spans_share_a_parent_and_new_roots_get_new_traces() {
        let (tracer, _clock) = virtual_tracer();
        {
            let _root = tracer.span("a", "root");
            let _ = tracer.span("a", "first");
            let _ = tracer.span("a", "second");
        }
        let _lone = tracer.span("a", "lone");
        drop(_lone);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 4);
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        let first = spans.iter().find(|s| s.name == "first").unwrap();
        let second = spans.iter().find(|s| s.name == "second").unwrap();
        let lone = spans.iter().find(|s| s.name == "lone").unwrap();
        assert_eq!(first.parent, Some(root.span_id));
        assert_eq!(second.parent, Some(root.span_id));
        assert_eq!(lone.parent, None);
        assert_ne!(lone.trace_id, root.trace_id);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut g = tracer.span("a", "op");
        g.attr("k", "v");
        assert_eq!(g.span_id(), None);
        drop(g);
        assert_eq!(tracer.span_count(), 0);
        assert_eq!(
            tracer.chrome_trace_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn chrome_export_escapes_and_structures() {
        let (tracer, clock) = virtual_tracer();
        {
            let mut g = tracer.span("sys", "op \"quoted\"\n");
            g.attr("key", "va\\lue");
            clock.advance(Duration::from_micros(7));
        }
        let json = tracer.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":7"));
        assert!(json.contains("op \\\"quoted\\\"\\n"));
        assert!(json.contains("va\\\\lue"));
    }

    #[test]
    fn flame_summary_folds_paths() {
        let (tracer, clock) = virtual_tracer();
        {
            let _root = tracer.span("a", "root");
            for _ in 0..3 {
                let _child = tracer.span("a", "leaf");
                clock.advance(Duration::from_micros(10));
            }
        }
        let flame = tracer.flame_summary();
        let leaf_line = flame.lines().find(|l| l.starts_with("root;leaf ")).unwrap();
        assert_eq!(leaf_line, "root;leaf 3 30");
        assert!(flame.lines().any(|l| l.starts_with("root ")));
    }

    #[test]
    fn explicit_context_links_spans_across_threads() {
        let (tracer, _clock) = virtual_tracer();
        let root = tracer.span("dag", "dag.run");
        let ctx = root.context();
        assert!(ctx.is_some());
        let mut handles = Vec::new();
        for i in 0..3 {
            let t2 = tracer.clone();
            handles.push(std::thread::spawn(move || {
                let _node = t2.span_child_of("dag", &format!("dag.node.{i}"), ctx);
                // A span opened while the adopted span is open on this
                // thread nests under it implicitly.
                let _inner = t2.span("faas", "faas.invoke");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(root);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 7);
        let root = spans.iter().find(|s| s.name == "dag.run").unwrap();
        let nodes: Vec<_> = spans
            .iter()
            .filter(|s| s.name.starts_with("dag.node."))
            .collect();
        assert_eq!(nodes.len(), 3);
        for node in &nodes {
            assert_eq!(node.trace_id, root.trace_id);
            assert_eq!(node.parent, Some(root.span_id));
        }
        for invoke in spans.iter().filter(|s| s.name == "faas.invoke") {
            assert_eq!(invoke.trace_id, root.trace_id);
            assert!(nodes.iter().any(|n| invoke.parent == Some(n.span_id)));
        }
    }

    #[test]
    fn span_child_of_without_parent_behaves_like_span() {
        let (tracer, _clock) = virtual_tracer();
        drop(tracer.span_child_of("a", "lone", None));
        let spans = tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent, None);
        // Disabled tracers hand back inert guards from both entry points.
        let disabled = Tracer::disabled();
        let g = disabled.span("a", "x");
        assert!(g.context().is_none());
        drop(disabled.span_child_of("a", "y", None));
        assert_eq!(disabled.span_count(), 0);
    }

    #[test]
    fn retention_cap_evicts_oldest_and_counts_drops() {
        let clock = std::sync::Arc::new(VirtualClock::new());
        let tracer = Tracer::with_config(
            clock.clone(),
            TracerConfig {
                retention: 4,
                sample_one_in: 1,
            },
        );
        for i in 0..10 {
            drop(tracer.span("a", &format!("op{i}")));
        }
        assert_eq!(tracer.span_count(), 4);
        assert_eq!(tracer.dropped_spans(), 6);
        let names: Vec<_> = tracer.spans().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["op6", "op7", "op8", "op9"]);
        // Exporters keep working on the retained window.
        assert!(tracer.chrome_trace_json().contains("op9"));
        assert!(tracer.flame_summary().contains("op9 1"));
    }

    #[test]
    fn head_sampling_keeps_whole_traces_or_none() {
        let clock = std::sync::Arc::new(VirtualClock::new());
        let tracer = Tracer::with_config(
            clock.clone(),
            TracerConfig {
                retention: 1024,
                sample_one_in: 3,
            },
        );
        for _ in 0..30 {
            let root = tracer.span("a", "root");
            drop(tracer.span("a", "child"));
            drop(root);
        }
        let spans = tracer.spans();
        assert!(!spans.is_empty() && spans.len() < 60);
        // Every retained trace is causally complete: a root and a child.
        use std::collections::BTreeMap;
        let mut by_trace: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
        for s in &spans {
            by_trace.entry(s.trace_id.0).or_default().push(&s.name);
        }
        for (_, names) in by_trace {
            assert_eq!(names.len(), 2);
        }
        // Unsampled spans are not "dropped" — they were never recorded.
        assert_eq!(tracer.dropped_spans(), 0);
    }

    #[test]
    fn telemetry_sink_receives_finished_spans_and_metrics() {
        let (tracer, clock) = virtual_tracer();
        let sink = TelemetrySink::new(16);
        tracer.set_telemetry(sink.clone());
        assert!(tracer.telemetry().is_some());
        {
            let _g = tracer.span("sys", "op");
            clock.advance(Duration::from_micros(5));
        }
        sink.metric("faas.cold_starts", 1);
        let events = sink.drain(16);
        assert_eq!(events.len(), 2);
        match &events[0] {
            TelemetryEvent::Span(s) => {
                assert_eq!(s.name, "op");
                assert_eq!(s.duration(), Duration::from_micros(5));
            }
            other => panic!("expected span event, got {other:?}"),
        }
        match &events[1] {
            TelemetryEvent::Metric { name, delta } => {
                assert_eq!(name, "faas.cold_starts");
                assert_eq!(*delta, 1);
            }
            other => panic!("expected metric event, got {other:?}"),
        }
        tracer.clear_telemetry();
        drop(tracer.span("sys", "untracked"));
        assert!(sink.is_empty());
    }

    #[test]
    fn full_sink_drops_and_counts_without_blocking() {
        let sink = TelemetrySink::new(2);
        assert!(sink.metric("a", 1));
        assert!(sink.metric("b", 1));
        assert!(!sink.metric("c", 1));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 1);
        let drained = sink.drain(10);
        assert_eq!(drained.len(), 2);
        assert!(sink.metric("d", 1));
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn suppression_keeps_spans_out_of_the_sink_but_in_the_recorder() {
        let (tracer, _clock) = virtual_tracer();
        let sink = TelemetrySink::new(16);
        tracer.set_telemetry(sink.clone());
        suppress_telemetry(|| {
            drop(tracer.span("sys", "pump.publish"));
        });
        drop(tracer.span("sys", "visible"));
        assert_eq!(tracer.span_count(), 2);
        let events = sink.drain(16);
        assert_eq!(events.len(), 1);
        match &events[0] {
            TelemetryEvent::Span(s) => assert_eq!(s.name, "visible"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn span_context_wire_roundtrip() {
        let ctx = SpanContext {
            trace_id: TraceId(0x0123_4567_89ab_cdef),
            span_id: SpanId(u64::MAX),
        };
        let bytes = ctx.to_bytes();
        assert_eq!(bytes.len(), SpanContext::WIRE_LEN);
        assert_eq!(SpanContext::from_bytes(&bytes), Some(ctx));
        // Deterministic layout: trace_id LE then span_id LE.
        assert_eq!(&bytes[..8], &0x0123_4567_89ab_cdefu64.to_le_bytes());
        assert_eq!(&bytes[8..], &u64::MAX.to_le_bytes());
        // Length errors are framing errors, not silent zeros.
        assert_eq!(SpanContext::from_bytes(&bytes[..15]), None);
        assert_eq!(SpanContext::from_bytes(&[]), None);
        // A live guard's context survives the wire.
        let (tracer, _clock) = virtual_tracer();
        let g = tracer.span("sys", "op");
        let live = g.context().unwrap();
        assert_eq!(SpanContext::from_bytes(&live.to_bytes()), Some(live));
    }

    #[test]
    fn panicking_drop_marks_span_as_error() {
        let (tracer, _clock) = virtual_tracer();
        let t2 = tracer.clone();
        let joined = std::thread::spawn(move || {
            let _g = t2.span("sys", "doomed");
            panic!("handler exploded");
        })
        .join();
        assert!(joined.is_err());
        // A span closed normally right after must NOT carry the marker.
        drop(tracer.span("sys", "fine"));
        let spans = tracer.spans();
        let doomed = spans.iter().find(|s| s.name == "doomed").unwrap();
        assert!(
            doomed
                .attrs
                .iter()
                .any(|(k, v)| *k == "error" && v == "panic"),
            "unwound span missing error=panic: {:?}",
            doomed.attrs
        );
        let fine = spans.iter().find(|s| s.name == "fine").unwrap();
        assert!(fine.attrs.iter().all(|(k, _)| *k != "error"));
    }

    #[test]
    fn sink_backpressure_exact_drop_accounting_across_threads() {
        // N producer threads race to overfill a small queue while a
        // drainer pulls concurrently. Invariants: drain never blocks or
        // invents events, and pushed == drained_total + still_queued +
        // dropped() exactly — no event is both delivered and counted
        // dropped, none vanish.
        use std::sync::atomic::{AtomicBool, AtomicU64};
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 2_000;
        let sink = TelemetrySink::new(64);
        let accepted = AtomicU64::new(0);
        let drained = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let mut producers = Vec::new();
            for t in 0..THREADS {
                let sink = &sink;
                let accepted = &accepted;
                producers.push(s.spawn(move || {
                    for i in 0..PER_THREAD {
                        if sink.metric(&format!("t{t}.m{i}"), 1) {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }));
            }
            // Concurrent drainer: keeps the queue moving so pushes keep
            // succeeding after the first fill; exits once producers are
            // done AND the queue is empty.
            let drainer = s.spawn(|| loop {
                let batch = sink.drain(32);
                drained.fetch_add(batch.len() as u64, Ordering::Relaxed);
                if batch.is_empty() {
                    if done.load(Ordering::Acquire) && sink.is_empty() {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
            for p in producers {
                p.join().unwrap();
            }
            done.store(true, Ordering::Release);
            drainer.join().unwrap();
        });
        let total_pushed = THREADS * PER_THREAD;
        let accepted = accepted.load(Ordering::Relaxed);
        let drained_total = drained.load(Ordering::Relaxed);
        assert_eq!(
            accepted + sink.dropped(),
            total_pushed,
            "every push either accepted or counted dropped"
        );
        assert_eq!(
            drained_total, accepted,
            "drain loses or invents events: drained {drained_total}, accepted {accepted}"
        );
        assert!(sink.is_empty());
        // Deterministic overflow coda: fill to capacity, then one more
        // must be dropped and counted — exactly one.
        let base_dropped = sink.dropped();
        for _ in 0..sink.capacity() {
            assert!(sink.metric("fill", 1));
        }
        assert!(!sink.metric("overflow", 1));
        assert_eq!(sink.dropped(), base_dropped + 1);
        assert_eq!(sink.drain(usize::MAX).len(), sink.capacity());
    }

    #[test]
    fn spans_on_other_threads_start_their_own_traces() {
        let (tracer, _clock) = virtual_tracer();
        let _root = tracer.span("a", "root");
        let t2 = tracer.clone();
        std::thread::spawn(move || {
            let _remote = t2.span("b", "remote");
        })
        .join()
        .unwrap();
        drop(_root);
        let spans = tracer.spans();
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        let remote = spans.iter().find(|s| s.name == "remote").unwrap();
        assert_ne!(remote.trace_id, root.trace_id);
        assert_eq!(remote.parent, None);
    }
}
