//! The FaaS platform facade: registration, admission, invocation, billing.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use taureau_core::clock::{SharedClock, WallClock};
use taureau_core::cost::{Dollars, FaasPricing};
use taureau_core::id::{IdGen, InvocationId};
use taureau_core::latency::{profiles, LatencyModel};
use taureau_core::metrics::MetricsRegistry;
use taureau_core::ratelimit::TokenBucket;
use taureau_core::sync::ShardedMap;
use taureau_core::trace::{SpanContext, Tracer};

use crate::billing::BillingMeter;
use crate::error::{FaasError, Result};
use crate::pool::{ContainerPool, StartKind};
use crate::types::{FunctionSpec, InvocationCtx};

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Billing model.
    pub pricing: FaasPricing,
    /// Warm-container keep-alive window.
    pub keep_alive: Duration,
    /// Cold-start latency model.
    pub cold_start: LatencyModel,
    /// Warm-dispatch latency model.
    pub warm_start: LatencyModel,
    /// Optional per-tenant admission limit: (requests/sec, burst).
    pub tenant_rate_limit: Option<(f64, u64)>,
    /// Hard cap on worker threads a single [`FaasPlatform::invoke_batch`]
    /// call may spawn, whatever parallelism the caller requests. Bounds
    /// thread fan-out the way real platforms bound per-account burst
    /// concurrency.
    pub max_parallelism: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            pricing: FaasPricing::default(),
            keep_alive: Duration::from_secs(600),
            cold_start: profiles::cold_start(),
            warm_start: profiles::warm_start(),
            tenant_rate_limit: None,
            max_parallelism: 64,
        }
    }
}

impl PlatformConfig {
    /// Deterministic configuration for tests: fixed cold/warm latencies.
    pub fn deterministic() -> Self {
        Self {
            cold_start: LatencyModel::Constant(Duration::from_millis(200)),
            warm_start: LatencyModel::Constant(Duration::from_millis(2)),
            ..Self::default()
        }
    }
}

/// Outcome of a successful invocation.
#[derive(Debug, Clone)]
pub struct InvocationResult {
    /// Invocation identity.
    pub id: InvocationId,
    /// Handler output bytes. Refcounted: the same allocation the handler
    /// returned flows through DAG edges, state-machine steps, and trigger
    /// chains without further copies (the handler's `Vec<u8>` is converted
    /// once, here, at the Ok boundary).
    pub output: Bytes,
    /// Cold or warm start.
    pub start: StartKind,
    /// Injected startup latency (container init or dispatch).
    pub startup_latency: Duration,
    /// Measured handler execution time.
    pub exec_duration: Duration,
    /// Startup + execution.
    pub total_duration: Duration,
    /// Dollars billed for this invocation.
    pub cost: Dollars,
    /// Number of execution attempts (>1 when retried).
    pub attempts: u32,
}

/// One request in an [`FaasPlatform::invoke_batch`] fan-out.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// Function to invoke.
    pub function: String,
    /// Input payload.
    pub payload: Bytes,
    /// Total execution attempts (≥ 1); failures re-execute transparently.
    pub max_attempts: u32,
}

impl BatchRequest {
    /// A single-attempt request.
    pub fn new(function: impl Into<String>, payload: impl Into<Bytes>) -> Self {
        Self {
            function: function.into(),
            payload: payload.into(),
            max_attempts: 1,
        }
    }

    /// Allow up to `n` total attempts.
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        assert!(n >= 1);
        self.max_attempts = n;
        self
    }
}

struct Inner {
    clock: SharedClock,
    cfg: PlatformConfig,
    registry: RwLock<HashMap<String, FunctionSpec>>,
    /// Warm-container pool; internally sharded, no outer lock needed.
    pool: ContainerPool,
    /// Per-function in-flight counts, sharded by function name.
    inflight: ShardedMap<String, u32>,
    /// Per-tenant admission limiters, sharded by tenant name.
    limiters: ShardedMap<String, Arc<TokenBucket>>,
    billing: BillingMeter,
    metrics: MetricsRegistry,
    tracer: Mutex<Tracer>,
    invocation_ids: IdGen,
}

/// Subsystem label stamped on every span this crate emits.
const TRACE_SYSTEM: &str = "taureau-faas";

/// The serverless compute platform. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct FaasPlatform {
    inner: Arc<Inner>,
}

impl FaasPlatform {
    /// Create a platform on the given clock.
    pub fn new(cfg: PlatformConfig, clock: SharedClock) -> Self {
        let pool = ContainerPool::new(
            cfg.keep_alive,
            cfg.cold_start.clone(),
            cfg.warm_start.clone(),
        );
        let pricing = cfg.pricing;
        Self {
            inner: Arc::new(Inner {
                clock,
                cfg,
                registry: RwLock::new(HashMap::new()),
                pool,
                inflight: ShardedMap::new(),
                limiters: ShardedMap::new(),
                billing: BillingMeter::new(pricing),
                metrics: MetricsRegistry::new(),
                tracer: Mutex::new(Tracer::disabled()),
                invocation_ids: IdGen::new(),
            }),
        }
    }

    /// Default platform on a wall clock.
    pub fn with_defaults() -> Self {
        Self::new(PlatformConfig::default(), WallClock::shared())
    }

    /// The platform clock.
    pub fn clock(&self) -> &SharedClock {
        &self.inner.clock
    }

    /// Billing meter.
    pub fn billing(&self) -> &BillingMeter {
        &self.inner.billing
    }

    /// Metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Attach a tracer; every subsequent invocation records spans into it.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.inner.tracer.lock() = tracer;
    }

    /// The currently attached tracer (disabled by default).
    pub fn tracer(&self) -> Tracer {
        self.inner.tracer.lock().clone()
    }

    /// Register a function.
    pub fn register(&self, spec: FunctionSpec) -> Result<()> {
        let mut reg = self.inner.registry.write();
        if reg.contains_key(&spec.name) {
            return Err(FaasError::FunctionExists(spec.name));
        }
        reg.insert(spec.name.clone(), spec);
        Ok(())
    }

    /// Remove a function.
    pub fn deregister(&self, name: &str) -> Result<()> {
        self.inner
            .registry
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| FaasError::FunctionNotFound(name.to_string()))
    }

    /// Registered function names (sorted).
    pub fn functions(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.registry.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Pin `n` pre-warmed containers for a function (for app-grouped
    /// functions, the shared application sandbox is provisioned).
    pub fn provision(&self, function: &str, n: u32) -> Result<()> {
        let key = {
            let reg = self.inner.registry.read();
            let spec = reg
                .get(function)
                .ok_or_else(|| FaasError::FunctionNotFound(function.to_string()))?;
            spec.sandbox_key().to_string()
        };
        let now = self.inner.clock.now();
        self.inner.pool.provision(&key, n, now);
        Ok(())
    }

    /// Reap idle containers past keep-alive.
    pub fn reap_idle(&self) {
        let now = self.inner.clock.now();
        self.inner.pool.reap_all(now);
    }

    /// (cold, warm) start counts so far.
    pub fn start_counts(&self) -> (u64, u64) {
        self.inner.pool.start_counts()
    }

    /// Idle warm containers for a function's sandbox (shared across the
    /// app for app-grouped functions).
    pub fn warm_count(&self, function: &str) -> usize {
        let key = self
            .inner
            .registry
            .read()
            .get(function)
            .map(|s| s.sandbox_key().to_string())
            .unwrap_or_else(|| function.to_string());
        self.inner.pool.warm_count(&key)
    }

    /// Invoke a function synchronously.
    pub fn invoke(&self, function: &str, payload: impl Into<Bytes>) -> Result<InvocationResult> {
        self.invoke_inner(function, payload.into(), 1, None)
    }

    /// Invoke a function as a causal continuation of `parent`: the
    /// `faas.invoke` span (and everything nested under it — admission,
    /// startup, execute, billing) joins the parent's trace instead of
    /// rooting a new one. This is how a message-triggered function links
    /// back to the publish that produced it: pass the
    /// [`SpanContext`] carried on `pulsar::Message::ctx`. With
    /// `parent: None` this is exactly [`FaasPlatform::invoke`].
    pub fn invoke_traced(
        &self,
        function: &str,
        payload: impl Into<Bytes>,
        parent: Option<SpanContext>,
    ) -> Result<InvocationResult> {
        self.invoke_inner(function, payload.into(), 1, parent)
    }

    /// Invoke with automatic re-execution on failure or timeout —
    /// "most FaaS platforms re-execute functions transparently on failure"
    /// (§4.1). At-least-once semantics: side effects of failed attempts
    /// are not rolled back.
    pub fn invoke_with_retries(
        &self,
        function: &str,
        payload: impl Into<Bytes>,
        max_attempts: u32,
    ) -> Result<InvocationResult> {
        assert!(max_attempts >= 1);
        let payload = payload.into();
        let mut last_err = None;
        for attempt in 1..=max_attempts {
            match self.invoke_inner(function, payload.clone(), attempt, None) {
                Ok(r) => return Ok(r),
                Err(e @ (FaasError::ExecutionFailed { .. } | FaasError::Timeout { .. })) => {
                    self.inner.metrics.counter("retries").inc();
                    last_err = Some(e);
                }
                Err(e) => return Err(e), // admission errors are not retried
            }
        }
        Err(last_err.expect("at least one attempt"))
    }

    /// Invoke a batch of functions across up to `parallelism` worker
    /// threads against the shared container pool, preserving request order
    /// in the result vector. Each request gets the at-least-once retry
    /// semantics of [`FaasPlatform::invoke_with_retries`]. This is the
    /// fan-out entry point DAG engines and embarrassingly-parallel
    /// workloads (tiled matmul, map stages) use to run independent
    /// invocations concurrently.
    pub fn invoke_batch(
        &self,
        requests: Vec<BatchRequest>,
        parallelism: usize,
    ) -> Vec<Result<InvocationResult>> {
        assert!(parallelism >= 1);
        let n = requests.len();
        // The worker set is bounded by the platform's own fan-out cap, not
        // just the caller's request — an arbitrarily large `parallelism`
        // no longer maps to unbounded thread creation.
        let workers = parallelism
            .min(self.inner.cfg.max_parallelism.max(1))
            .min(n.max(1));
        let mut slots: Vec<Option<Result<InvocationResult>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let slots = Mutex::new(slots);
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let req = &requests[i];
                    let r = self.invoke_with_retries(
                        &req.function,
                        req.payload.clone(),
                        req.max_attempts,
                    );
                    slots.lock()[i] = Some(r);
                });
            }
        });
        slots
            .into_inner()
            .into_iter()
            .map(|s| s.expect("every batch slot is filled"))
            .collect()
    }

    fn limiter_for(&self, tenant: &str) -> Option<Arc<TokenBucket>> {
        let (rate, burst) = self.inner.cfg.tenant_rate_limit?;
        Some(self.inner.limiters.with(tenant, |shard| {
            Arc::clone(shard.entry(tenant.to_string()).or_insert_with(|| {
                Arc::new(TokenBucket::new(self.inner.clock.clone(), rate, burst))
            }))
        }))
    }

    fn invoke_inner(
        &self,
        function: &str,
        payload: Bytes,
        attempt: u32,
        parent: Option<SpanContext>,
    ) -> Result<InvocationResult> {
        let tracer = self.tracer();
        let mut span = tracer.span_child_of(TRACE_SYSTEM, "faas.invoke", parent);
        span.attr("function", function);
        span.attr("attempt", attempt);

        let spec = self
            .inner
            .registry
            .read()
            .get(function)
            .cloned()
            .ok_or_else(|| FaasError::FunctionNotFound(function.to_string()))?;
        span.attr("tenant", &spec.tenant);

        // Admission: tenant rate limit + per-function concurrency cap
        // (the request's time "in the front door" before a container is
        // committed to it).
        {
            let mut admission = tracer.span(TRACE_SYSTEM, "faas.admission");
            if let Some(limiter) = self.limiter_for(&spec.tenant) {
                if !limiter.try_acquire(1) {
                    self.inner.metrics.counter("throttled").inc();
                    admission.attr("outcome", "throttled");
                    return Err(FaasError::Throttled {
                        tenant: spec.tenant.clone(),
                    });
                }
            }
            let admitted = self.inner.inflight.with(&spec.name, |shard| {
                let n = shard.entry(spec.name.clone()).or_insert(0);
                if *n >= spec.max_concurrency {
                    false
                } else {
                    *n += 1;
                    true
                }
            });
            if !admitted {
                self.inner.metrics.counter("concurrency_rejections").inc();
                admission.attr("outcome", "concurrency_limit");
                return Err(FaasError::ConcurrencyLimit {
                    function: spec.name.clone(),
                    limit: spec.max_concurrency,
                });
            }
            admission.attr("outcome", "admitted");
        }

        let result = self.execute(&tracer, &spec, payload, attempt);
        span.attr("outcome", if result.is_ok() { "ok" } else { "error" });

        // Always decrement in-flight.
        self.inner.inflight.with(&spec.name, |shard| {
            if let Some(n) = shard.get_mut(&spec.name) {
                *n = n.saturating_sub(1);
            }
        });
        result
    }

    fn execute(
        &self,
        tracer: &Tracer,
        spec: &FunctionSpec,
        payload: Bytes,
        attempt: u32,
    ) -> Result<InvocationResult> {
        let clock = &self.inner.clock;
        // Fetched once per invocation: metric deltas ride the telemetry
        // stream alongside spans whenever a sink-bearing tracer is
        // attached; `None` (the default) costs nothing on the hot path.
        let sink = tracer.telemetry();
        let now = clock.now();
        let (start, startup_latency) = {
            let mut startup = tracer.span(TRACE_SYSTEM, "faas.startup");
            let (start, startup_latency) = self.inner.pool.acquire(spec.sandbox_key(), now);
            match start {
                StartKind::Cold => {
                    self.inner.metrics.counter("cold_starts").inc();
                    if let Some(sink) = &sink {
                        sink.metric("faas.cold_starts", 1);
                    }
                    startup.attr("kind", "cold");
                }
                StartKind::Warm => {
                    self.inner.metrics.counter("warm_starts").inc();
                    if let Some(sink) = &sink {
                        sink.metric("faas.warm_starts", 1);
                    }
                    startup.attr("kind", "warm");
                }
            }
            startup.attr("latency_us", startup_latency.as_micros());
            clock.sleep(startup_latency);
            (start, startup_latency)
        };

        let ctx = InvocationCtx {
            payload,
            clock: clock.clone(),
        };
        let exec_span = tracer.span(TRACE_SYSTEM, "faas.execute");
        let t0 = clock.now();
        let output = (spec.handler)(&ctx);
        let exec_duration = clock.now() - t0;
        drop(exec_span);

        // Timeout enforcement (post-hoc: handlers are cooperative in this
        // in-process platform; the billed duration is capped at the limit,
        // as providers cap billing at the configured timeout).
        if exec_duration > spec.timeout {
            self.inner.metrics.counter("timeouts").inc();
            if let Some(sink) = &sink {
                sink.metric("faas.timeouts", 1);
            }
            let mut billing = tracer.span(TRACE_SYSTEM, "faas.billing");
            billing.attr("billed", "timeout_cap");
            self.inner
                .billing
                .charge(&spec.tenant, spec.memory, spec.timeout);
            drop(billing);
            // The container is destroyed, not returned warm.
            return Err(FaasError::Timeout {
                limit: spec.timeout,
                ran: exec_duration,
            });
        }

        let cost = {
            let mut billing = tracer.span(TRACE_SYSTEM, "faas.billing");
            let cost = self
                .inner
                .billing
                .charge(&spec.tenant, spec.memory, exec_duration);
            billing.attr("cost_usd", format!("{cost:.9}"));
            cost
        };
        self.inner
            .metrics
            .histogram("exec_duration_us")
            .record(exec_duration.as_micros() as u64);
        let total_duration = startup_latency + exec_duration;
        self.inner
            .metrics
            .histogram("invoke_latency_us")
            .record(total_duration.as_micros() as u64);
        if let Some(sink) = &sink {
            sink.metric("faas.invoke_latency_us", total_duration.as_micros() as u64);
            sink.metric(
                if output.is_ok() {
                    "faas.invocations_ok"
                } else {
                    "faas.invocations_failed"
                },
                1,
            );
        }

        match output {
            Ok(bytes) => {
                // Healthy container returns to the warm pool.
                self.inner.pool.release(spec.sandbox_key(), clock.now());
                self.inner.metrics.counter("invocations_ok").inc();
                Ok(InvocationResult {
                    id: InvocationId(self.inner.invocation_ids.next()),
                    output: Bytes::from(bytes),
                    start,
                    startup_latency,
                    exec_duration,
                    total_duration,
                    cost,
                    attempts: attempt,
                })
            }
            Err(reason) => {
                // Handler errors keep the container warm (the process
                // survived), as Lambda does.
                self.inner.pool.release(spec.sandbox_key(), clock.now());
                self.inner.metrics.counter("invocations_failed").inc();
                Err(FaasError::ExecutionFailed {
                    function: spec.name.clone(),
                    reason,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use taureau_core::bytesize::ByteSize;
    use taureau_core::clock::VirtualClock;

    fn platform() -> (FaasPlatform, Arc<VirtualClock>) {
        let clock = VirtualClock::shared();
        (
            FaasPlatform::new(PlatformConfig::deterministic(), clock.clone()),
            clock,
        )
    }

    #[test]
    fn invoke_roundtrip() {
        let (p, _) = platform();
        p.register(FunctionSpec::new("echo", "t", |ctx| {
            Ok(ctx.payload.to_vec())
        }))
        .unwrap();
        let r = p.invoke("echo", &b"hi"[..]).unwrap();
        assert_eq!(r.output, b"hi");
        assert_eq!(r.start, StartKind::Cold);
        assert!(r.cost > 0.0);
    }

    #[test]
    fn invoke_traced_joins_parent_trace() {
        use taureau_core::trace::{SpanContext, SpanId, TraceId};
        let (p, clock) = platform();
        let tracer = Tracer::new(clock);
        p.set_tracer(tracer.clone());
        p.register(FunctionSpec::new("f", "t", |_| Ok(vec![])))
            .unwrap();
        let parent = SpanContext {
            trace_id: TraceId(0xCAFE),
            span_id: SpanId(0xD00D),
        };
        p.invoke_traced("f", &[][..], Some(parent)).unwrap();
        let spans = tracer.spans();
        let invoke = spans.iter().find(|s| s.name == "faas.invoke").unwrap();
        assert_eq!(invoke.trace_id, parent.trace_id);
        assert_eq!(invoke.parent, Some(parent.span_id));
        // Nested platform spans ride along in the adopted trace.
        let exec = spans.iter().find(|s| s.name == "faas.execute").unwrap();
        assert_eq!(exec.trace_id, parent.trace_id);
        assert_eq!(exec.parent, Some(invoke.span_id));
        // No parent: identical to plain invoke — a fresh root trace.
        p.invoke_traced("f", &[][..], None).unwrap();
        let root = tracer
            .spans()
            .into_iter()
            .rfind(|s| s.name == "faas.invoke")
            .unwrap();
        assert_eq!(root.parent, None);
        assert_ne!(root.trace_id, parent.trace_id);
    }

    #[test]
    fn cold_then_warm_latency_gap() {
        let (p, _) = platform();
        p.register(FunctionSpec::new("f", "t", |_| Ok(vec![])))
            .unwrap();
        let cold = p.invoke("f", &[][..]).unwrap();
        let warm = p.invoke("f", &[][..]).unwrap();
        assert_eq!(cold.start, StartKind::Cold);
        assert_eq!(warm.start, StartKind::Warm);
        assert_eq!(cold.startup_latency, Duration::from_millis(200));
        assert_eq!(warm.startup_latency, Duration::from_millis(2));
        assert_eq!(p.start_counts(), (1, 1));
    }

    #[test]
    fn keep_alive_expiry_brings_cold_back() {
        let clock = VirtualClock::shared();
        let cfg = PlatformConfig {
            keep_alive: Duration::from_secs(10),
            ..PlatformConfig::deterministic()
        };
        let p = FaasPlatform::new(cfg, clock.clone());
        p.register(FunctionSpec::new("f", "t", |_| Ok(vec![])))
            .unwrap();
        p.invoke("f", &[][..]).unwrap();
        clock.advance(Duration::from_secs(5));
        assert_eq!(p.invoke("f", &[][..]).unwrap().start, StartKind::Warm);
        clock.advance(Duration::from_secs(60));
        assert_eq!(p.invoke("f", &[][..]).unwrap().start, StartKind::Cold);
    }

    #[test]
    fn billing_uses_measured_duration_and_memory() {
        let (p, _) = platform();
        p.register(
            FunctionSpec::new("work", "tenant-a", |ctx| {
                ctx.burn(Duration::from_millis(250));
                Ok(vec![])
            })
            .with_memory(ByteSize::gb(1)),
        )
        .unwrap();
        let r = p.invoke("work", &[][..]).unwrap();
        assert_eq!(r.exec_duration, Duration::from_millis(250));
        // 250 ms rounds to 300 ms at 100 ms granularity.
        let expect =
            FaasPricing::default().invocation_cost(ByteSize::gb(1), Duration::from_millis(250));
        assert!((r.cost - expect).abs() < 1e-12);
        assert!((p.billing().total("tenant-a") - expect).abs() < 1e-12);
    }

    #[test]
    fn timeout_is_enforced_and_billed_at_cap() {
        let (p, _) = platform();
        p.register(
            FunctionSpec::new("slow", "t", |ctx| {
                ctx.burn(Duration::from_secs(10));
                Ok(vec![])
            })
            .with_timeout(Duration::from_secs(1)),
        )
        .unwrap();
        let err = p.invoke("slow", &[][..]).unwrap_err();
        assert!(matches!(err, FaasError::Timeout { .. }));
        // Billed exactly the timeout duration.
        let expect =
            FaasPricing::default().invocation_cost(ByteSize::mb(512), Duration::from_secs(1));
        assert!((p.billing().total("t") - expect).abs() < 1e-12);
        // Timed-out container was destroyed: next start is cold.
        assert_eq!(p.warm_count("slow"), 0);
    }

    #[test]
    fn handler_errors_surface_and_keep_container_warm() {
        let (p, _) = platform();
        p.register(FunctionSpec::new("bad", "t", |_| Err("boom".to_string())))
            .unwrap();
        let err = p.invoke("bad", &[][..]).unwrap_err();
        assert!(matches!(err, FaasError::ExecutionFailed { ref reason, .. } if reason == "boom"));
        assert_eq!(p.warm_count("bad"), 1);
    }

    #[test]
    fn retries_reexecute_transparently() {
        let (p, _) = platform();
        let failures = Arc::new(AtomicU32::new(2));
        let f = failures.clone();
        p.register(FunctionSpec::new("flaky", "t", move |_| {
            if f.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                Err("transient".into())
            } else {
                Ok(b"finally".to_vec())
            }
        }))
        .unwrap();
        let r = p.invoke_with_retries("flaky", &[][..], 5).unwrap();
        assert_eq!(r.output, b"finally");
        assert_eq!(r.attempts, 3);
        assert_eq!(p.metrics().counter("retries").get(), 2);
    }

    #[test]
    fn retries_exhaust_and_report_last_error() {
        let (p, _) = platform();
        p.register(FunctionSpec::new("hopeless", "t", |_| Err("always".into())))
            .unwrap();
        let err = p.invoke_with_retries("hopeless", &[][..], 3).unwrap_err();
        assert!(matches!(err, FaasError::ExecutionFailed { .. }));
        assert_eq!(p.metrics().counter("invocations_failed").get(), 3);
    }

    #[test]
    fn concurrency_cap_rejects() {
        let (p, _) = platform();
        // A handler that reports the cap hit from a nested invoke: instead,
        // test the cap by registering concurrency 0-in-flight semantics via
        // the inflight map directly — simplest is a reentrant handler.
        let p2 = p.clone();
        p.register(
            FunctionSpec::new("outer", "t", move |_| {
                // While outer runs, its own slot is taken; invoking itself
                // must hit the cap of 1.
                match p2.invoke("outer", &[][..]) {
                    Err(FaasError::ConcurrencyLimit { .. }) => Ok(b"capped".to_vec()),
                    other => Err(format!("expected cap, got {other:?}")),
                }
            })
            .with_max_concurrency(1),
        )
        .unwrap();
        let r = p.invoke("outer", &[][..]).unwrap();
        assert_eq!(r.output, b"capped");
    }

    #[test]
    fn tenant_rate_limit_throttles() {
        let clock = VirtualClock::shared();
        let cfg = PlatformConfig {
            tenant_rate_limit: Some((1.0, 3)),
            ..PlatformConfig::deterministic()
        };
        let p = FaasPlatform::new(cfg, clock.clone());
        p.register(FunctionSpec::new("f", "noisy", |_| Ok(vec![])))
            .unwrap();
        for _ in 0..3 {
            p.invoke("f", &[][..]).unwrap();
        }
        assert!(matches!(
            p.invoke("f", &[][..]),
            Err(FaasError::Throttled { .. })
        ));
        // Tokens refill with time.
        clock.advance(Duration::from_secs(2));
        assert!(p.invoke("f", &[][..]).is_ok());
    }

    #[test]
    fn provisioned_concurrency_eliminates_cold_starts() {
        let (p, _) = platform();
        p.register(FunctionSpec::new("hot", "t", |_| Ok(vec![])))
            .unwrap();
        p.provision("hot", 2).unwrap();
        assert_eq!(p.invoke("hot", &[][..]).unwrap().start, StartKind::Warm);
        assert_eq!(p.start_counts().0, 0, "no cold starts with pre-warming");
    }

    #[test]
    fn sand_style_app_sandbox_sharing() {
        // Two different functions in one app: the second rides the first's
        // warm sandbox (SAND). A third function outside the app stays cold.
        let (p, _) = platform();
        p.register(FunctionSpec::new("parse", "t", |_| Ok(vec![])).with_app("pipeline"))
            .unwrap();
        p.register(FunctionSpec::new("store", "t", |_| Ok(vec![])).with_app("pipeline"))
            .unwrap();
        p.register(FunctionSpec::new("stranger", "t", |_| Ok(vec![])))
            .unwrap();
        assert_eq!(p.invoke("parse", &[][..]).unwrap().start, StartKind::Cold);
        assert_eq!(
            p.invoke("store", &[][..]).unwrap().start,
            StartKind::Warm,
            "same-app function should reuse the sandbox"
        );
        assert_eq!(
            p.invoke("stranger", &[][..]).unwrap().start,
            StartKind::Cold,
            "other apps stay isolated"
        );
    }

    #[test]
    fn provisioning_app_grouped_functions_prewarm_the_shared_sandbox() {
        let (p, _) = platform();
        p.register(FunctionSpec::new("f", "t", |_| Ok(vec![])).with_app("grp"))
            .unwrap();
        p.provision("f", 2).unwrap();
        assert_eq!(p.warm_count("f"), 2);
        assert_eq!(
            p.invoke("f", &[][..]).unwrap().start,
            StartKind::Warm,
            "provisioned app sandbox must serve warm"
        );
        assert_eq!(p.start_counts().0, 0);
    }

    #[test]
    fn unknown_function_and_duplicates() {
        let (p, _) = platform();
        assert!(matches!(
            p.invoke("ghost", &[][..]),
            Err(FaasError::FunctionNotFound(_))
        ));
        p.register(FunctionSpec::new("f", "t", |_| Ok(vec![])))
            .unwrap();
        assert!(matches!(
            p.register(FunctionSpec::new("f", "t", |_| Ok(vec![]))),
            Err(FaasError::FunctionExists(_))
        ));
        p.deregister("f").unwrap();
        assert!(p.functions().is_empty());
    }

    #[test]
    fn invoke_batch_preserves_order_and_retries() {
        let p = FaasPlatform::new(PlatformConfig::deterministic(), WallClock::shared());
        p.register(FunctionSpec::new("echo", "t", |ctx| {
            Ok(ctx.payload.to_vec())
        }))
        .unwrap();
        let flaky_left = Arc::new(AtomicU32::new(1));
        let fl = flaky_left.clone();
        p.register(FunctionSpec::new("flaky", "t", move |ctx| {
            if fl
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                Err("transient".into())
            } else {
                Ok(ctx.payload.to_vec())
            }
        }))
        .unwrap();
        let mut requests: Vec<BatchRequest> = (0..16u8)
            .map(|i| BatchRequest::new("echo", vec![i]))
            .collect();
        requests.push(BatchRequest::new("flaky", vec![99]).with_max_attempts(3));
        let results = p.invoke_batch(requests, 4);
        assert_eq!(results.len(), 17);
        for (i, r) in results[..16].iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().output, vec![i as u8]);
        }
        let flaky = results[16].as_ref().unwrap();
        assert_eq!(flaky.output, vec![99]);
        assert_eq!(flaky.attempts, 2);
        assert_eq!(p.billing().invocations("t"), 18); // 16 + 2 flaky attempts
    }

    #[test]
    fn invoke_batch_surfaces_per_request_errors() {
        let p = FaasPlatform::new(PlatformConfig::deterministic(), WallClock::shared());
        p.register(FunctionSpec::new("ok", "t", |_| Ok(vec![1])))
            .unwrap();
        let results = p.invoke_batch(
            vec![
                BatchRequest::new("ok", Vec::new()),
                BatchRequest::new("ghost", Vec::new()),
            ],
            2,
        );
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(FaasError::FunctionNotFound(_))));
    }

    #[test]
    fn concurrent_invocations_from_threads() {
        let p = FaasPlatform::new(PlatformConfig::deterministic(), WallClock::shared());
        p.register(FunctionSpec::new("f", "t", |ctx| Ok(ctx.payload.to_vec())))
            .unwrap();
        let mut handles = vec![];
        for t in 0..4 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                (0..25)
                    .map(|i| p.invoke("f", vec![t as u8, i as u8]).unwrap().output)
                    .collect::<Vec<_>>()
            }));
        }
        let outputs: Vec<bytes::Bytes> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(outputs.len(), 100);
        assert_eq!(p.billing().invocations("t"), 100);
    }
}
