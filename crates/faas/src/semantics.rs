//! A formal model of serverless execution (§1: "even formal models of
//! serverless have been proposed", citing Jangda et al., OOPSLA'19).
//!
//! Jangda et al. give an operational semantics (λ⁂) where the platform may
//! *cold-start new instances at will, reuse warm instances (with their
//! instance-local state), crash and retry requests* — and prove their key
//! theorem: for handlers that do not rely on instance-local state
//! ("safe" handlers), the serverless semantics is **weakly equivalent** to
//! a naive semantics that runs each request exactly once on a fresh
//! interpreter.
//!
//! This module reproduces that result mechanically: a bounded
//! **model checker** ([`check_equivalence`]) exhaustively explores every
//! platform schedule (cold start / warm reuse / crash-and-retry) up to a
//! depth bound and compares each trace's observable request→response map
//! against the naive semantics. For safe handlers it verifies equivalence
//! over the whole schedule space; for handlers that read instance-local
//! state it produces a concrete counterexample schedule — the formal
//! justification for the paper's "functions are stateless" requirement.

use std::collections::BTreeMap;

/// A modelled handler: a pure function of `(request, instance_state)`
/// returning `(response, new_instance_state)`.
///
/// Instance state models everything that survives in a warm container
/// (globals, `/tmp`, caches). A handler is *safe* in Jangda et al.'s sense
/// iff its response ignores the instance state it is given.
pub type ModelHandler = fn(request: u8, instance_state: u64) -> (u8, u64);

/// The observable behaviour of one execution: request id → response.
pub type Observation = BTreeMap<u8, u8>;

/// Naive semantics: each request runs exactly once, on a fresh instance.
pub fn naive_semantics(handler: ModelHandler, requests: &[u8]) -> Observation {
    requests
        .iter()
        .map(|&r| {
            let (resp, _) = handler(r, 0);
            (r, resp)
        })
        .collect()
}

/// One platform step the scheduler may take for the next pending request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Run on a fresh instance (cold start).
    Cold,
    /// Run on an existing warm instance (index into the warm pool).
    Warm(usize),
    /// Run, but crash before responding; the platform will retry (the
    /// instance keeps any state the crashed attempt wrote — the at-least-
    /// once hazard).
    CrashThenRetry(usize),
}

/// A schedule that distinguishes serverless from naive execution, plus the
/// differing observations.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Human-readable schedule description.
    pub schedule: Vec<String>,
    /// What the serverless trace observed.
    pub serverless: Observation,
    /// What the naive semantics observes.
    pub naive: Observation,
}

/// Result of checking a handler.
#[derive(Debug)]
pub struct CheckReport {
    /// Schedules explored.
    pub schedules_explored: u64,
    /// First counterexample, if any schedule diverged from naive.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    /// Whether the handler is observationally equivalent to naive
    /// execution over the explored schedule space.
    pub fn equivalent(&self) -> bool {
        self.counterexample.is_none()
    }
}

struct Explorer {
    handler: ModelHandler,
    requests: Vec<u8>,
    naive: Observation,
    max_crashes: u32,
    explored: u64,
    counterexample: Option<Counterexample>,
}

impl Explorer {
    /// Depth-first exploration over all platform choices.
    fn explore(
        &mut self,
        next: usize,
        warm: Vec<u64>,
        crashes_left: u32,
        observation: Observation,
        schedule: Vec<String>,
    ) {
        if self.counterexample.is_some() {
            return; // first counterexample is enough
        }
        if next == self.requests.len() {
            self.explored += 1;
            if observation != self.naive {
                self.counterexample = Some(Counterexample {
                    schedule,
                    serverless: observation,
                    naive: self.naive.clone(),
                });
            }
            return;
        }
        let request = self.requests[next];
        // Enumerate the platform's choices for this request.
        let mut steps = vec![Step::Cold];
        for i in 0..warm.len() {
            steps.push(Step::Warm(i));
        }
        if crashes_left > 0 {
            // A crash can happen on a cold instance (index = fresh) or any
            // warm instance; model the warm case, which is where state
            // leaks bite.
            for i in 0..warm.len() {
                steps.push(Step::CrashThenRetry(i));
            }
        }
        for step in steps {
            let mut warm2 = warm.clone();
            let mut obs2 = observation.clone();
            let mut sched2 = schedule.clone();
            let mut crashes2 = crashes_left;
            match step {
                Step::Cold => {
                    let (resp, st) = (self.handler)(request, 0);
                    obs2.insert(request, resp);
                    warm2.push(st);
                    sched2.push(format!("req {request}: cold start"));
                    self.explore(next + 1, warm2, crashes2, obs2, sched2);
                }
                Step::Warm(i) => {
                    let (resp, st) = (self.handler)(request, warm2[i]);
                    obs2.insert(request, resp);
                    warm2[i] = st;
                    sched2.push(format!("req {request}: warm reuse of instance {i}"));
                    self.explore(next + 1, warm2, crashes2, obs2, sched2);
                }
                Step::CrashThenRetry(i) => {
                    crashes2 -= 1;
                    // First attempt runs to completion of its state write,
                    // then crashes before the response is recorded.
                    let (_, st) = (self.handler)(request, warm2[i]);
                    warm2[i] = st;
                    // Retry on the same (now-mutated) instance.
                    let (resp, st2) = (self.handler)(request, warm2[i]);
                    obs2.insert(request, resp);
                    warm2[i] = st2;
                    sched2.push(format!(
                        "req {request}: crash on instance {i}, retried there"
                    ));
                    self.explore(next + 1, warm2, crashes2, obs2, sched2);
                }
            }
        }
    }
}

/// Exhaustively check a handler against the naive semantics over every
/// schedule with up to `max_crashes` crash-retries.
pub fn check_equivalence(handler: ModelHandler, requests: &[u8], max_crashes: u32) -> CheckReport {
    let naive = naive_semantics(handler, requests);
    let mut ex = Explorer {
        handler,
        requests: requests.to_vec(),
        naive,
        max_crashes,
        explored: 0,
        counterexample: None,
    };
    let crashes = ex.max_crashes;
    ex.explore(0, Vec::new(), crashes, Observation::new(), Vec::new());
    CheckReport {
        schedules_explored: ex.explored,
        counterexample: ex.counterexample,
    }
}

// ---------------------------------------------------------------------------
// Example handlers for the theorem's two sides.

/// A safe handler: response depends only on the request. (It may *use*
/// instance state as a cache, as long as the response is unaffected.)
pub fn safe_handler(request: u8, instance_state: u64) -> (u8, u64) {
    // Response: pure function of request. State: a hit counter (cache-like,
    // never observable).
    (request.wrapping_mul(2).wrapping_add(1), instance_state + 1)
}

/// An unsafe handler: leaks the warm instance's request counter into its
/// response — the "works in testing, flaky in production" bug class the
/// statelessness requirement exists to prevent.
pub fn unsafe_handler(request: u8, instance_state: u64) -> (u8, u64) {
    (
        request.wrapping_add(instance_state as u8),
        instance_state + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_semantics_is_deterministic() {
        let a = naive_semantics(safe_handler, &[1, 2, 3]);
        let b = naive_semantics(safe_handler, &[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a[&1], 3);
        assert_eq!(a[&2], 5);
    }

    #[test]
    fn safe_handler_is_equivalent_over_all_schedules() {
        // Jangda et al.'s theorem, mechanically: every cold/warm/crash
        // schedule of a safe handler observes exactly the naive mapping.
        let report = check_equivalence(safe_handler, &[1, 2, 3, 4], 1);
        assert!(report.equivalent(), "{:?}", report.counterexample);
        // The schedule space is non-trivial: dozens of interleavings.
        assert!(
            report.schedules_explored > 30,
            "only {} schedules explored",
            report.schedules_explored
        );
    }

    #[test]
    fn unsafe_handler_has_a_counterexample() {
        let report = check_equivalence(unsafe_handler, &[1, 2], 0);
        let cex = report.counterexample.expect("state leak must be found");
        // The counterexample necessarily involves a warm reuse.
        assert!(
            cex.schedule.iter().any(|s| s.contains("warm")),
            "{:?}",
            cex.schedule
        );
        assert_ne!(cex.serverless, cex.naive);
    }

    #[test]
    fn crash_retry_alone_is_harmless_for_safe_handlers() {
        let report = check_equivalence(safe_handler, &[7], 2);
        assert!(report.equivalent());
    }

    #[test]
    fn unsafe_handler_caught_even_through_crash_path() {
        // With crashes enabled, the double-execution path mutates state
        // twice — still caught.
        let report = check_equivalence(unsafe_handler, &[1, 2], 1);
        assert!(!report.equivalent());
    }

    #[test]
    fn single_request_cold_only_is_trivially_equivalent() {
        // One request with no warm pool and no crashes has exactly one
        // schedule: the naive one.
        let report = check_equivalence(unsafe_handler, &[5], 0);
        assert!(report.equivalent());
        assert_eq!(report.schedules_explored, 1);
    }
}
