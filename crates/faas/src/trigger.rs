//! Event sources — the "demand-driven execution" side of §2.
//!
//! §3's applications are "handled entirely in an event-driven fashion":
//! web requests, storage events, schedules. This module provides the two
//! trigger shapes the examples need:
//!
//! - [`ScheduleTrigger`]: invoke a function every interval (the paper's
//!   "periodic invocation" pattern, Hong et al.'s pattern 1).
//! - [`QueueTrigger`]: invoke a function for each payload in a queue (the
//!   "event-driven" and "data transformation" patterns).
//!
//! The [`TriggerManager`] pumps due triggers against a platform; tests and
//! simulations drive it from a virtual clock.

use std::collections::VecDeque;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::Result;
use crate::platform::{FaasPlatform, InvocationResult};

/// Fire a function every `every` interval.
#[derive(Debug)]
pub struct ScheduleTrigger {
    function: String,
    every: Duration,
    next_due: Duration,
    payload: Vec<u8>,
}

/// Fire a function per queued payload.
#[derive(Debug)]
pub struct QueueTrigger {
    function: String,
    queue: VecDeque<Vec<u8>>,
}

/// Registry and pump for triggers.
pub struct TriggerManager {
    platform: FaasPlatform,
    schedules: Mutex<Vec<ScheduleTrigger>>,
    queues: Mutex<Vec<QueueTrigger>>,
}

impl TriggerManager {
    /// Manager bound to a platform.
    pub fn new(platform: FaasPlatform) -> Self {
        Self {
            platform,
            schedules: Mutex::new(Vec::new()),
            queues: Mutex::new(Vec::new()),
        }
    }

    /// Register a periodic schedule starting one interval from now.
    pub fn add_schedule(&self, function: &str, every: Duration, payload: &[u8]) {
        let now = self.platform.clock().now();
        self.schedules.lock().push(ScheduleTrigger {
            function: function.to_string(),
            every,
            next_due: now + every,
            payload: payload.to_vec(),
        });
    }

    /// Register a queue trigger; returns its index for enqueueing.
    pub fn add_queue(&self, function: &str) -> usize {
        let mut queues = self.queues.lock();
        queues.push(QueueTrigger {
            function: function.to_string(),
            queue: VecDeque::new(),
        });
        queues.len() - 1
    }

    /// Enqueue an event for a queue trigger.
    pub fn enqueue(&self, queue_idx: usize, payload: &[u8]) {
        self.queues.lock()[queue_idx]
            .queue
            .push_back(payload.to_vec());
    }

    /// Pending events in a queue trigger.
    pub fn queue_depth(&self, queue_idx: usize) -> usize {
        self.queues.lock()[queue_idx].queue.len()
    }

    /// Fire everything due: catches up schedules past their due time
    /// (multiple firings if several intervals elapsed) and drains queues.
    /// Returns the completed invocations; individual failures are skipped
    /// (the platform's retry policy is the caller's choice).
    pub fn run_due(&self) -> Result<Vec<InvocationResult>> {
        let mut results = Vec::new();
        let now = self.platform.clock().now();
        {
            let mut schedules = self.schedules.lock();
            for s in schedules.iter_mut() {
                while s.next_due <= now {
                    if let Ok(r) = self.platform.invoke(&s.function, s.payload.clone()) {
                        results.push(r);
                    }
                    s.next_due += s.every;
                }
            }
        }
        loop {
            // Pop one event at a time so a long queue cannot hold the lock
            // across invocations.
            let next = {
                let mut queues = self.queues.lock();
                queues.iter_mut().find_map(|q| {
                    q.queue
                        .pop_front()
                        .map(|payload| (q.function.clone(), payload))
                })
            };
            match next {
                Some((function, payload)) => {
                    if let Ok(r) = self.platform.invoke(&function, payload) {
                        results.push(r);
                    }
                }
                None => break,
            }
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformConfig;
    use crate::types::FunctionSpec;
    use std::sync::Arc;
    use taureau_core::clock::VirtualClock;

    fn setup() -> (TriggerManager, FaasPlatform, Arc<VirtualClock>) {
        let clock = VirtualClock::shared();
        let p = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
        p.register(FunctionSpec::new("tick", "t", |ctx| {
            Ok(ctx.payload.to_vec())
        }))
        .unwrap();
        (TriggerManager::new(p.clone()), p, clock)
    }

    #[test]
    fn schedule_fires_once_per_interval() {
        let (tm, _, clock) = setup();
        tm.add_schedule("tick", Duration::from_secs(60), b"cron");
        assert_eq!(tm.run_due().unwrap().len(), 0);
        clock.advance(Duration::from_secs(61));
        assert_eq!(tm.run_due().unwrap().len(), 1);
        // No double-fire without time passing.
        assert_eq!(tm.run_due().unwrap().len(), 0);
    }

    #[test]
    fn schedule_catches_up_missed_intervals() {
        let (tm, _, clock) = setup();
        tm.add_schedule("tick", Duration::from_secs(10), b"x");
        clock.advance(Duration::from_secs(35));
        // Due at t=10, 20, 30 → three firings.
        assert_eq!(tm.run_due().unwrap().len(), 3);
    }

    #[test]
    fn queue_trigger_drains_events() {
        let (tm, _, _) = setup();
        let q = tm.add_queue("tick");
        for i in 0..5u8 {
            tm.enqueue(q, &[i]);
        }
        assert_eq!(tm.queue_depth(q), 5);
        let results = tm.run_due().unwrap();
        assert_eq!(results.len(), 5);
        assert_eq!(tm.queue_depth(q), 0);
        let outputs: Vec<u8> = results.iter().map(|r| r.output[0]).collect();
        assert_eq!(outputs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mixed_triggers_fire_together() {
        let (tm, _, clock) = setup();
        tm.add_schedule("tick", Duration::from_secs(5), b"s");
        let q = tm.add_queue("tick");
        tm.enqueue(q, b"q");
        clock.advance(Duration::from_secs(6));
        let results = tm.run_due().unwrap();
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn billing_flows_through_triggered_invocations() {
        let (tm, p, _) = setup();
        let q = tm.add_queue("tick");
        for _ in 0..10 {
            tm.enqueue(q, b"e");
        }
        tm.run_due().unwrap();
        assert_eq!(p.billing().invocations("t"), 10);
        assert!(p.billing().total("t") > 0.0);
    }
}
