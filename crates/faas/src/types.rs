//! Function specifications and invocation context.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use taureau_core::bytesize::ByteSize;
use taureau_core::clock::SharedClock;

/// The user code of a function: takes the invocation context, returns
/// output bytes or an application error string.
///
/// Handlers run real Rust; workloads that want to *simulate* compute time
/// call [`InvocationCtx::burn`] so that virtual-clock tests and the billing
/// meter see the intended duration.
pub type Handler = Arc<dyn Fn(&InvocationCtx) -> Result<Vec<u8>, String> + Send + Sync>;

/// A registered function.
#[derive(Clone)]
pub struct FunctionSpec {
    /// Unique name.
    pub name: String,
    /// Owning tenant (billing and admission-control domain).
    pub tenant: String,
    /// Configured memory (drives GB-second billing, like Lambda's memory
    /// setting).
    pub memory: ByteSize,
    /// Execution time limit ("cloud providers typically limit the execution
    /// time of each function to a short duration", §4.1).
    pub timeout: Duration,
    /// Maximum concurrent executions.
    pub max_concurrency: u32,
    /// Optional application group for SAND-style sandbox sharing: functions
    /// with the same `app` share warm sandboxes, so a chain of *different*
    /// functions within one application pays the cold start only once
    /// (Akkus et al., ATC'18 — cited in §1 of the paper). `None` gives the
    /// classic per-function isolation of AWS Lambda.
    pub app: Option<String>,
    /// The code.
    pub handler: Handler,
}

impl FunctionSpec {
    /// Spec with platform defaults: 512 MiB, 60 s timeout, concurrency 100.
    pub fn new(
        name: impl Into<String>,
        tenant: impl Into<String>,
        handler: impl Fn(&InvocationCtx) -> Result<Vec<u8>, String> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            tenant: tenant.into(),
            memory: ByteSize::mb(512),
            timeout: Duration::from_secs(60),
            max_concurrency: 100,
            app: None,
            handler: Arc::new(handler),
        }
    }

    /// Set configured memory.
    pub fn with_memory(mut self, memory: ByteSize) -> Self {
        self.memory = memory;
        self
    }

    /// Set the execution timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Set the concurrency cap.
    pub fn with_max_concurrency(mut self, n: u32) -> Self {
        assert!(n > 0);
        self.max_concurrency = n;
        self
    }

    /// Group this function into an application whose functions share warm
    /// sandboxes (SAND-style application-level isolation).
    pub fn with_app(mut self, app: impl Into<String>) -> Self {
        self.app = Some(app.into());
        self
    }

    /// The warm-pool key: the app for SAND-style grouping, else the
    /// function's own name.
    pub fn sandbox_key(&self) -> &str {
        self.app.as_deref().unwrap_or(&self.name)
    }
}

impl std::fmt::Debug for FunctionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionSpec")
            .field("name", &self.name)
            .field("tenant", &self.tenant)
            .field("memory", &self.memory)
            .field("timeout", &self.timeout)
            .field("max_concurrency", &self.max_concurrency)
            .field("app", &self.app)
            .finish_non_exhaustive()
    }
}

/// What a handler sees while running.
pub struct InvocationCtx {
    /// Input payload.
    pub payload: Bytes,
    /// The platform clock. Handlers simulating compute call
    /// [`InvocationCtx::burn`].
    pub clock: SharedClock,
}

impl InvocationCtx {
    /// Simulate `d` of compute: advances a virtual clock instantly, sleeps
    /// a wall clock for real.
    pub fn burn(&self, d: Duration) {
        self.clock.sleep(d);
    }

    /// Payload as UTF-8, if valid.
    pub fn payload_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.payload).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_defaults_and_overrides() {
        let s = FunctionSpec::new("f", "t", |_| Ok(vec![]))
            .with_memory(ByteSize::gb(1))
            .with_timeout(Duration::from_secs(5))
            .with_max_concurrency(2);
        assert_eq!(s.memory, ByteSize::gb(1));
        assert_eq!(s.timeout, Duration::from_secs(5));
        assert_eq!(s.max_concurrency, 2);
        assert_eq!(s.name, "f");
        // Debug does not try to print the handler.
        assert!(format!("{s:?}").contains("FunctionSpec"));
    }

    #[test]
    fn ctx_burn_advances_virtual_clock() {
        use taureau_core::clock::{Clock, VirtualClock};
        let clock = VirtualClock::shared();
        let ctx = InvocationCtx {
            payload: Bytes::new(),
            clock: clock.clone(),
        };
        ctx.burn(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(250));
        assert_eq!(ctx.payload_str(), Some(""));
    }
}
