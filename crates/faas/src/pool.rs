//! The warm-container pool.
//!
//! The first invocation of a function must initialise a fresh container — a
//! *cold start*, whose latency the platform injects from the calibrated
//! model in `taureau_core::latency::profiles` (hundreds of milliseconds,
//! heavy tail). Containers are kept warm for a keep-alive window after use;
//! an invocation that finds one skips initialisation — a *warm start*
//! (single-digit milliseconds). §5.2 cites Ishakian et al.: "warm
//! serverless executions are within an acceptable latency range, while cold
//! starts add significant overhead" — experiment E2 reproduces that gap and
//! ablates the keep-alive window.
//!
//! The pool is internally sharded by function (sandbox) name, so
//! invocations of different functions acquire and release containers
//! without contending on one pool-wide lock. The latency-sampling RNG is a
//! single mutex: samples are cheap, and a shared stream keeps the
//! single-threaded draw order — and with it every experiment table —
//! exactly reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use rand_chacha::ChaCha8Rng;
use taureau_core::latency::LatencyModel;
use taureau_core::rng::det_rng;
use taureau_core::sync::ShardedMap;

/// Whether an invocation found a warm container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// Fresh container: initialisation latency paid.
    Cold,
    /// Reused container: dispatch latency only.
    Warm,
}

#[derive(Debug, Clone, Copy)]
struct WarmContainer {
    idle_since: Duration,
}

/// Per-function pool state; lives inside one shard of the sharded map.
#[derive(Debug, Default)]
struct FnPool {
    /// Idle warm containers.
    warm: Vec<WarmContainer>,
    /// Containers pinned warm regardless of keep-alive (provisioned
    /// concurrency).
    provisioned: u32,
}

/// The warm-container pool, shared by all invocation threads.
#[derive(Debug)]
pub struct ContainerPool {
    keep_alive: Duration,
    cold_model: LatencyModel,
    warm_model: LatencyModel,
    rng: Mutex<ChaCha8Rng>,
    /// function (sandbox) name -> per-function pool, sharded by name hash.
    pools: ShardedMap<String, FnPool>,
    cold_starts: AtomicU64,
    warm_starts: AtomicU64,
}

impl ContainerPool {
    /// Pool with the given keep-alive window and latency models.
    pub fn new(keep_alive: Duration, cold_model: LatencyModel, warm_model: LatencyModel) -> Self {
        Self {
            keep_alive,
            cold_model,
            warm_model,
            rng: Mutex::new(det_rng(0xC01D)),
            pools: ShardedMap::new(),
            cold_starts: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
        }
    }

    /// Keep-alive window.
    pub fn keep_alive(&self) -> Duration {
        self.keep_alive
    }

    /// Pin `n` containers warm for a function (provisioned concurrency).
    /// Takes effect from the next release/reap cycle; pre-warms immediately
    /// by inserting idle containers.
    pub fn provision(&self, function: &str, n: u32, now: Duration) {
        self.pools.with(function, |shard| {
            let pool = shard.entry(function.to_string()).or_default();
            pool.provisioned = n;
            while (pool.warm.len() as u32) < n {
                pool.warm.push(WarmContainer { idle_since: now });
            }
        });
    }

    /// Acquire a container for an invocation at time `now`. Returns the
    /// start kind and the startup latency to inject.
    pub fn acquire(&self, function: &str, now: Duration) -> (StartKind, Duration) {
        let warm_hit = self.pools.with(function, |shard| {
            let pool = shard.entry(function.to_string()).or_default();
            Self::reap_pool(pool, self.keep_alive, now);
            pool.warm.pop().is_some()
        });
        if warm_hit {
            self.warm_starts.fetch_add(1, Ordering::Relaxed);
            (
                StartKind::Warm,
                self.warm_model.sample(&mut *self.rng.lock()),
            )
        } else {
            self.cold_starts.fetch_add(1, Ordering::Relaxed);
            (
                StartKind::Cold,
                self.cold_model.sample(&mut *self.rng.lock()),
            )
        }
    }

    /// Return a container to the warm pool after an execution finished at
    /// `now`.
    pub fn release(&self, function: &str, now: Duration) {
        self.pools.with(function, |shard| {
            shard
                .entry(function.to_string())
                .or_default()
                .warm
                .push(WarmContainer { idle_since: now });
        });
    }

    fn reap_pool(pool: &mut FnPool, keep: Duration, now: Duration) {
        let floor = pool.provisioned as usize;
        // Oldest first; keep at least the provisioned floor.
        pool.warm.sort_by_key(|c| c.idle_since);
        while pool.warm.len() > floor {
            let oldest = pool.warm[0];
            if now.saturating_sub(oldest.idle_since) > keep {
                pool.warm.remove(0);
            } else {
                break;
            }
        }
    }

    /// Reap idle containers across all functions.
    pub fn reap_all(&self, now: Duration) {
        let keep = self.keep_alive;
        self.pools
            .for_each_mut(|_, pool| Self::reap_pool(pool, keep, now));
    }

    /// Idle warm containers for a function.
    pub fn warm_count(&self, function: &str) -> usize {
        self.pools.with(function, |shard| {
            shard.get(function).map_or(0, |p| p.warm.len())
        })
    }

    /// (cold, warm) start counts.
    pub fn start_counts(&self) -> (u64, u64) {
        (
            self.cold_starts.load(Ordering::Relaxed),
            self.warm_starts.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(keep_alive_secs: u64) -> ContainerPool {
        ContainerPool::new(
            Duration::from_secs(keep_alive_secs),
            LatencyModel::Constant(Duration::from_millis(200)),
            LatencyModel::Constant(Duration::from_millis(2)),
        )
    }

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn first_start_is_cold_second_is_warm() {
        let p = pool(60);
        let (kind, delay) = p.acquire("f", secs(0));
        assert_eq!(kind, StartKind::Cold);
        assert_eq!(delay, Duration::from_millis(200));
        p.release("f", secs(1));
        let (kind, delay) = p.acquire("f", secs(2));
        assert_eq!(kind, StartKind::Warm);
        assert_eq!(delay, Duration::from_millis(2));
        assert_eq!(p.start_counts(), (1, 1));
    }

    #[test]
    fn keep_alive_expiry_forces_cold() {
        let p = pool(10);
        p.acquire("f", secs(0));
        p.release("f", secs(1));
        // Within keep-alive: warm.
        let (kind, _) = p.acquire("f", secs(5));
        assert_eq!(kind, StartKind::Warm);
        p.release("f", secs(6));
        // Past keep-alive: container reaped, cold again.
        let (kind, _) = p.acquire("f", secs(30));
        assert_eq!(kind, StartKind::Cold);
    }

    #[test]
    fn concurrent_bursts_create_multiple_containers() {
        let p = pool(60);
        // Three invocations before any release: three cold starts.
        for _ in 0..3 {
            let (kind, _) = p.acquire("f", secs(0));
            assert_eq!(kind, StartKind::Cold);
        }
        for _ in 0..3 {
            p.release("f", secs(1));
        }
        assert_eq!(p.warm_count("f"), 3);
        // Next three are all warm.
        for _ in 0..3 {
            let (kind, _) = p.acquire("f", secs(2));
            assert_eq!(kind, StartKind::Warm);
        }
    }

    #[test]
    fn provisioned_concurrency_never_reaps_below_floor() {
        let p = pool(5);
        p.provision("f", 2, secs(0));
        assert_eq!(p.warm_count("f"), 2);
        // Far past keep-alive, the floor remains.
        p.reap_all(secs(1000));
        assert_eq!(p.warm_count("f"), 2);
        let (kind, _) = p.acquire("f", secs(1001));
        assert_eq!(kind, StartKind::Warm);
    }

    #[test]
    fn pools_are_per_function() {
        let p = pool(60);
        p.acquire("f", secs(0));
        p.release("f", secs(1));
        // A different function cannot reuse f's container.
        let (kind, _) = p.acquire("g", secs(2));
        assert_eq!(kind, StartKind::Cold);
        assert_eq!(p.warm_count("f"), 1);
    }

    #[test]
    fn reap_all_cleans_every_function() {
        let p = pool(1);
        for f in ["a", "b", "c"] {
            p.acquire(f, secs(0));
            p.release(f, secs(0));
        }
        p.reap_all(secs(100));
        for f in ["a", "b", "c"] {
            assert_eq!(p.warm_count(f), 0);
        }
    }

    #[test]
    fn concurrent_acquire_release_across_functions() {
        let p = std::sync::Arc::new(pool(60));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let p = std::sync::Arc::clone(&p);
                s.spawn(move || {
                    let f = format!("fn-{}", t % 4);
                    for i in 0..100u64 {
                        p.acquire(&f, secs(i));
                        p.release(&f, secs(i));
                    }
                });
            }
        });
        let (cold, warm) = p.start_counts();
        assert_eq!(cold + warm, 800, "every acquire is counted exactly once");
        // Each of the 4 sandboxes ends with its containers back in the pool.
        let total_warm: usize = (0..4).map(|t| p.warm_count(&format!("fn-{t}"))).sum();
        let max_live = 2 * 4; // at most 2 threads share each sandbox
        assert!(
            total_warm <= max_live,
            "released {total_warm} > live {max_live}"
        );
        assert!(
            total_warm >= 4,
            "each sandbox retains at least one container"
        );
    }
}
