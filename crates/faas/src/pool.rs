//! The warm-container pool.
//!
//! The first invocation of a function must initialise a fresh container — a
//! *cold start*, whose latency the platform injects from the calibrated
//! model in `taureau_core::latency::profiles` (hundreds of milliseconds,
//! heavy tail). Containers are kept warm for a keep-alive window after use;
//! an invocation that finds one skips initialisation — a *warm start*
//! (single-digit milliseconds). §5.2 cites Ishakian et al.: "warm
//! serverless executions are within an acceptable latency range, while cold
//! starts add significant overhead" — experiment E2 reproduces that gap and
//! ablates the keep-alive window.

use std::collections::HashMap;
use std::time::Duration;

use rand_chacha::ChaCha8Rng;
use taureau_core::latency::LatencyModel;
use taureau_core::rng::det_rng;

/// Whether an invocation found a warm container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// Fresh container: initialisation latency paid.
    Cold,
    /// Reused container: dispatch latency only.
    Warm,
}

#[derive(Debug, Clone, Copy)]
struct WarmContainer {
    idle_since: Duration,
}

/// Per-function warm pool state. Not thread-safe on its own; the platform
/// guards it.
#[derive(Debug)]
pub struct ContainerPool {
    keep_alive: Duration,
    cold_model: LatencyModel,
    warm_model: LatencyModel,
    rng: ChaCha8Rng,
    /// function name -> idle warm containers.
    warm: HashMap<String, Vec<WarmContainer>>,
    /// function name -> containers pinned warm regardless of keep-alive
    /// (provisioned concurrency).
    provisioned: HashMap<String, u32>,
    cold_starts: u64,
    warm_starts: u64,
}

impl ContainerPool {
    /// Pool with the given keep-alive window and latency models.
    pub fn new(keep_alive: Duration, cold_model: LatencyModel, warm_model: LatencyModel) -> Self {
        Self {
            keep_alive,
            cold_model,
            warm_model,
            rng: det_rng(0xC01D),
            warm: HashMap::new(),
            provisioned: HashMap::new(),
            cold_starts: 0,
            warm_starts: 0,
        }
    }

    /// Keep-alive window.
    pub fn keep_alive(&self) -> Duration {
        self.keep_alive
    }

    /// Pin `n` containers warm for a function (provisioned concurrency).
    /// Takes effect from the next release/reap cycle; pre-warms immediately
    /// by inserting idle containers.
    pub fn provision(&mut self, function: &str, n: u32, now: Duration) {
        self.provisioned.insert(function.to_string(), n);
        let pool = self.warm.entry(function.to_string()).or_default();
        while (pool.len() as u32) < n {
            pool.push(WarmContainer { idle_since: now });
        }
    }

    /// Acquire a container for an invocation at time `now`. Returns the
    /// start kind and the startup latency to inject.
    pub fn acquire(&mut self, function: &str, now: Duration) -> (StartKind, Duration) {
        self.reap_function(function, now);
        let pool = self.warm.entry(function.to_string()).or_default();
        if pool.pop().is_some() {
            self.warm_starts += 1;
            (StartKind::Warm, self.warm_model.sample(&mut self.rng))
        } else {
            self.cold_starts += 1;
            (StartKind::Cold, self.cold_model.sample(&mut self.rng))
        }
    }

    /// Return a container to the warm pool after an execution finished at
    /// `now`.
    pub fn release(&mut self, function: &str, now: Duration) {
        self.warm
            .entry(function.to_string())
            .or_default()
            .push(WarmContainer { idle_since: now });
    }

    fn reap_function(&mut self, function: &str, now: Duration) {
        let keep = self.keep_alive;
        let floor = self.provisioned.get(function).copied().unwrap_or(0) as usize;
        if let Some(pool) = self.warm.get_mut(function) {
            // Oldest first; keep at least the provisioned floor.
            pool.sort_by_key(|c| c.idle_since);
            while pool.len() > floor {
                let oldest = pool[0];
                if now.saturating_sub(oldest.idle_since) > keep {
                    pool.remove(0);
                } else {
                    break;
                }
            }
        }
    }

    /// Reap idle containers across all functions.
    pub fn reap_all(&mut self, now: Duration) {
        let names: Vec<String> = self.warm.keys().cloned().collect();
        for f in names {
            self.reap_function(&f, now);
        }
    }

    /// Idle warm containers for a function.
    pub fn warm_count(&self, function: &str) -> usize {
        self.warm.get(function).map_or(0, Vec::len)
    }

    /// (cold, warm) start counts.
    pub fn start_counts(&self) -> (u64, u64) {
        (self.cold_starts, self.warm_starts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(keep_alive_secs: u64) -> ContainerPool {
        ContainerPool::new(
            Duration::from_secs(keep_alive_secs),
            LatencyModel::Constant(Duration::from_millis(200)),
            LatencyModel::Constant(Duration::from_millis(2)),
        )
    }

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn first_start_is_cold_second_is_warm() {
        let mut p = pool(60);
        let (kind, delay) = p.acquire("f", secs(0));
        assert_eq!(kind, StartKind::Cold);
        assert_eq!(delay, Duration::from_millis(200));
        p.release("f", secs(1));
        let (kind, delay) = p.acquire("f", secs(2));
        assert_eq!(kind, StartKind::Warm);
        assert_eq!(delay, Duration::from_millis(2));
        assert_eq!(p.start_counts(), (1, 1));
    }

    #[test]
    fn keep_alive_expiry_forces_cold() {
        let mut p = pool(10);
        p.acquire("f", secs(0));
        p.release("f", secs(1));
        // Within keep-alive: warm.
        let (kind, _) = p.acquire("f", secs(5));
        assert_eq!(kind, StartKind::Warm);
        p.release("f", secs(6));
        // Past keep-alive: container reaped, cold again.
        let (kind, _) = p.acquire("f", secs(30));
        assert_eq!(kind, StartKind::Cold);
    }

    #[test]
    fn concurrent_bursts_create_multiple_containers() {
        let mut p = pool(60);
        // Three invocations before any release: three cold starts.
        for _ in 0..3 {
            let (kind, _) = p.acquire("f", secs(0));
            assert_eq!(kind, StartKind::Cold);
        }
        for _ in 0..3 {
            p.release("f", secs(1));
        }
        assert_eq!(p.warm_count("f"), 3);
        // Next three are all warm.
        for _ in 0..3 {
            let (kind, _) = p.acquire("f", secs(2));
            assert_eq!(kind, StartKind::Warm);
        }
    }

    #[test]
    fn provisioned_concurrency_never_reaps_below_floor() {
        let mut p = pool(5);
        p.provision("f", 2, secs(0));
        assert_eq!(p.warm_count("f"), 2);
        // Far past keep-alive, the floor remains.
        p.reap_all(secs(1000));
        assert_eq!(p.warm_count("f"), 2);
        let (kind, _) = p.acquire("f", secs(1001));
        assert_eq!(kind, StartKind::Warm);
    }

    #[test]
    fn pools_are_per_function() {
        let mut p = pool(60);
        p.acquire("f", secs(0));
        p.release("f", secs(1));
        // A different function cannot reuse f's container.
        let (kind, _) = p.acquire("g", secs(2));
        assert_eq!(kind, StartKind::Cold);
        assert_eq!(p.warm_count("f"), 1);
    }

    #[test]
    fn reap_all_cleans_every_function() {
        let mut p = pool(1);
        for f in ["a", "b", "c"] {
            p.acquire(f, secs(0));
            p.release(f, secs(0));
        }
        p.reap_all(secs(100));
        for f in ["a", "b", "c"] {
            assert_eq!(p.warm_count(f), 0);
        }
    }
}
