//! Per-tenant billing meters.
//!
//! §2: "the key economic incentive for the users stems from the
//! cost-savings due to fine-grained billing … users only pay for the
//! resources they actually use, and for the duration that they use it."
//! Every invocation lands here as a line item under the tenant's bill.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::Mutex;
use taureau_core::bytesize::ByteSize;
use taureau_core::cost::{Bill, Dollars, FaasPricing};

/// Thread-safe per-tenant billing.
#[derive(Debug)]
pub struct BillingMeter {
    pricing: FaasPricing,
    bills: Mutex<HashMap<String, Bill>>,
}

impl BillingMeter {
    /// Meter under the given pricing.
    pub fn new(pricing: FaasPricing) -> Self {
        Self {
            pricing,
            bills: Mutex::new(HashMap::new()),
        }
    }

    /// The pricing in force.
    pub fn pricing(&self) -> &FaasPricing {
        &self.pricing
    }

    /// Record one billed execution.
    pub fn charge(&self, tenant: &str, memory: ByteSize, duration: Duration) -> Dollars {
        let mut bills = self.bills.lock();
        let bill = bills.entry(tenant.to_string()).or_default();
        bill.charge(&self.pricing, memory, duration);
        bill.items().last().expect("just charged").cost
    }

    /// A tenant's total to date.
    pub fn total(&self, tenant: &str) -> Dollars {
        self.bills.lock().get(tenant).map_or(0.0, Bill::total)
    }

    /// A tenant's invocation count.
    pub fn invocations(&self, tenant: &str) -> usize {
        self.bills.lock().get(tenant).map_or(0, Bill::len)
    }

    /// Grand total across tenants.
    pub fn grand_total(&self) -> Dollars {
        self.bills.lock().values().map(Bill::total).sum()
    }

    /// Snapshot of a tenant's bill.
    pub fn bill(&self, tenant: &str) -> Option<Bill> {
        self.bills.lock().get(tenant).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_tenant() {
        let m = BillingMeter::new(FaasPricing::default());
        let c1 = m.charge("alice", ByteSize::gb(1), Duration::from_millis(100));
        let c2 = m.charge("alice", ByteSize::gb(1), Duration::from_millis(100));
        m.charge("bob", ByteSize::mb(128), Duration::from_millis(50));
        assert!((m.total("alice") - (c1 + c2)).abs() < 1e-15);
        assert_eq!(m.invocations("alice"), 2);
        assert_eq!(m.invocations("bob"), 1);
        assert_eq!(m.invocations("carol"), 0);
        assert!(m.grand_total() > m.total("alice"));
    }

    #[test]
    fn rounding_matches_pricing_granularity() {
        let m = BillingMeter::new(FaasPricing::default());
        // 1 ms and 99 ms bill identically (both round to 100 ms).
        let a = m.charge("t", ByteSize::gb(1), Duration::from_millis(1));
        let b = m.charge("t", ByteSize::gb(1), Duration::from_millis(99));
        assert!((a - b).abs() < 1e-15);
        // 101 ms bills twice the duration component.
        let c = m.charge("t", ByteSize::gb(1), Duration::from_millis(101));
        assert!(c > a);
    }
}
