//! FaaS error types.

use std::time::Duration;

/// Errors surfaced by the FaaS platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaasError {
    /// No function registered under this name.
    FunctionNotFound(String),
    /// A function with this name already exists.
    FunctionExists(String),
    /// Execution exceeded the function's configured timeout. The
    /// invocation is still billed (for the timeout duration), as real
    /// platforms do.
    Timeout {
        /// The configured limit.
        limit: Duration,
        /// How long the function actually ran.
        ran: Duration,
    },
    /// Rejected by the tenant's admission rate limit.
    Throttled {
        /// The tenant whose limit was hit.
        tenant: String,
    },
    /// The function is at its concurrency cap.
    ConcurrencyLimit {
        /// Function name.
        function: String,
        /// Configured cap.
        limit: u32,
    },
    /// The function's own code returned an error.
    ExecutionFailed {
        /// Function name.
        function: String,
        /// The error the handler reported.
        reason: String,
    },
}

impl std::fmt::Display for FaasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaasError::FunctionNotFound(n) => write!(f, "function not found: {n}"),
            FaasError::FunctionExists(n) => write!(f, "function already exists: {n}"),
            FaasError::Timeout { limit, ran } => {
                write!(f, "execution timed out: ran {ran:?}, limit {limit:?}")
            }
            FaasError::Throttled { tenant } => write!(f, "tenant {tenant} throttled"),
            FaasError::ConcurrencyLimit { function, limit } => {
                write!(f, "function {function} at concurrency limit {limit}")
            }
            FaasError::ExecutionFailed { function, reason } => {
                write!(f, "function {function} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for FaasError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, FaasError>;
