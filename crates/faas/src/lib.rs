//! # taureau-faas
//!
//! A Function-as-a-Service runtime implementing the FaaS properties §4.1 of
//! *Le Taureau* lists as common across platforms:
//!
//! - **High-level functions**: users register plain Rust closures
//!   ([`FunctionSpec`]); the platform owns everything else.
//! - **Stateless functions**: each invocation starts from the registered
//!   code; anything a function wants to keep must go to external storage
//!   (the Jiffy/Pulsar crates in this workspace).
//! - **Limited execution times**: per-function timeout, enforced and
//!   billed.
//! - **Fine-grained billing**: every invocation is metered per
//!   [`taureau_core::cost::FaasPricing`] (per-request + GB-seconds at
//!   100 ms granularity), per tenant.
//!
//! Around those, the control plane that makes the paper's cold-start and
//! elasticity discussions concrete:
//!
//! - [`pool`]: warm-container pool with keep-alive reaping, provisioned
//!   concurrency, and injected cold-start latency (calibrated in
//!   `taureau_core::latency::profiles`) — experiment E2's subject.
//! - [`platform`]: the invoker — admission control (per-tenant rate limits,
//!   per-function concurrency caps), scheduling onto containers, timeout
//!   enforcement, at-least-once retries.
//! - [`trigger`]: event sources — schedules and queues — for the
//!   event-driven application patterns of §3.
//! - [`billing`]: per-tenant meters and bills.
//! - [`semantics`]: a bounded model checker for Jangda et al.'s formal
//!   serverless semantics (§1), mechanically verifying that stateless
//!   handlers are equivalent to run-once execution — and finding concrete
//!   counterexample schedules for handlers that leak instance state.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod billing;
pub mod error;
pub mod platform;
pub mod pool;
pub mod semantics;
pub mod trigger;
pub mod types;

pub use error::FaasError;
pub use platform::{BatchRequest, FaasPlatform, InvocationResult, PlatformConfig};
pub use pool::StartKind;
pub use types::{FunctionSpec, Handler, InvocationCtx};
