//! Ships telemetry events from the in-process sink onto Pulsar topics.
//!
//! The pump is the *only* component that creates the telemetry topics:
//! with no pump attached, instrumented subsystems run with zero Pulsar
//! footprint (the zero-overhead-when-disabled property the integration
//! tests pin down). Publishing happens inside
//! [`suppress_telemetry`] so shipping telemetry over an instrumented
//! Pulsar cluster does not generate telemetry about the shipping — the
//! feedback loop that would otherwise grow without bound.

use taureau_core::sync::ContentionProfiler;
use taureau_core::trace::{suppress_telemetry, TelemetryEvent, TelemetrySink};
use taureau_pulsar::{Producer, PulsarCluster, PulsarError};

use crate::wire;

/// Topic carrying framed span events. The `_telemetry` tenant prefix
/// keeps monitoring traffic out of user tenants' quotas.
pub const SPANS_TOPIC: &str = "_telemetry/spans";
/// Topic carrying framed metric-delta events.
pub const METRICS_TOPIC: &str = "_telemetry/metrics";

/// Drains a [`TelemetrySink`] and publishes its events onto the telemetry
/// topics. Create one per sink; call [`TelemetryPump::pump`] periodically
/// (or after each workload phase in deterministic tests).
pub struct TelemetryPump {
    sink: TelemetrySink,
    spans: Producer,
    metrics: Producer,
    contention: Option<ContentionProfiler>,
    published_spans: u64,
    published_metrics: u64,
    publish_errors: u64,
}

impl TelemetryPump {
    /// Connect a sink to `cluster`, creating the telemetry topics if they
    /// do not exist yet (single partition each — ordering matters more
    /// than parallelism for a monitoring stream).
    pub fn new(sink: TelemetrySink, cluster: &PulsarCluster) -> Result<Self, PulsarError> {
        for topic in [SPANS_TOPIC, METRICS_TOPIC] {
            if cluster.partitions(topic).is_err() {
                cluster.create_topic(topic, 1)?;
            }
        }
        Ok(Self {
            sink,
            spans: cluster.producer(SPANS_TOPIC)?,
            metrics: cluster.producer(METRICS_TOPIC)?,
            contention: None,
            published_spans: 0,
            published_metrics: 0,
            publish_errors: 0,
        })
    }

    /// The sink this pump drains.
    pub fn sink(&self) -> &TelemetrySink {
        &self.sink
    }

    /// Attach a lock-contention profiler: each [`TelemetryPump::pump`]
    /// first flushes the profiler's per-site deltas
    /// (`lock.<site>.{acquisitions,contended,wait_ns}`) into the sink as
    /// metric events, so contention rides the same `_telemetry/metrics`
    /// stream as every other counter.
    pub fn attach_contention(&mut self, profiler: ContentionProfiler) -> &mut Self {
        self.contention = Some(profiler);
        self
    }

    /// Drain every queued event and publish it. Returns the number of
    /// events shipped. Publish failures drop the event and count it in
    /// [`TelemetryPump::publish_errors`] — a broken monitoring transport
    /// must not wedge the sink (it would fill and start dropping on the
    /// producer side instead).
    pub fn pump(&mut self) -> usize {
        if let Some(prof) = &self.contention {
            prof.flush_to_sink(&self.sink);
        }
        suppress_telemetry(|| {
            let mut shipped = 0;
            loop {
                let batch = self.sink.drain(256);
                if batch.is_empty() {
                    return shipped;
                }
                for event in batch {
                    let result = match &event {
                        TelemetryEvent::Span(record) => self
                            .spans
                            .send(&wire::encode_span(&wire::SpanEvent::from_record(record))),
                        TelemetryEvent::Metric { name, delta } => {
                            self.metrics.send(&wire::encode_metric(name, *delta))
                        }
                    };
                    match (result, &event) {
                        (Ok(_), TelemetryEvent::Span(_)) => {
                            self.published_spans += 1;
                            shipped += 1;
                        }
                        (Ok(_), TelemetryEvent::Metric { .. }) => {
                            self.published_metrics += 1;
                            shipped += 1;
                        }
                        (Err(_), _) => self.publish_errors += 1,
                    }
                }
            }
        })
    }

    /// Span events successfully published so far.
    pub fn published_spans(&self) -> u64 {
        self.published_spans
    }

    /// Metric events successfully published so far.
    pub fn published_metrics(&self) -> u64 {
        self.published_metrics
    }

    /// Events dropped because publishing failed.
    pub fn publish_errors(&self) -> u64 {
        self.publish_errors
    }
}

impl std::fmt::Debug for TelemetryPump {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryPump")
            .field("published_spans", &self.published_spans)
            .field("published_metrics", &self.published_metrics)
            .field("publish_errors", &self.publish_errors)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taureau_core::clock::VirtualClock;
    use taureau_core::trace::Tracer;
    use taureau_pulsar::{PulsarConfig, SubscriptionMode};

    fn cluster() -> (PulsarCluster, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new());
        (
            PulsarCluster::new(PulsarConfig::default(), clock.clone()),
            clock,
        )
    }

    #[test]
    fn pump_creates_topics_and_ships_events() {
        let (cluster, clock) = cluster();
        assert!(cluster.partitions(SPANS_TOPIC).is_err());
        let sink = TelemetrySink::new(1024);
        let mut pump = TelemetryPump::new(sink.clone(), &cluster).unwrap();
        assert_eq!(cluster.partitions(SPANS_TOPIC).unwrap(), 1);
        assert_eq!(cluster.partitions(METRICS_TOPIC).unwrap(), 1);

        let tracer = Tracer::new(clock.clone());
        tracer.set_telemetry(sink.clone());
        drop(tracer.span("sys", "op.a"));
        sink.metric("sys.counter", 3);
        assert_eq!(pump.pump(), 2);
        assert_eq!(pump.published_spans(), 1);
        assert_eq!(pump.published_metrics(), 1);
        assert_eq!(pump.publish_errors(), 0);
        assert!(sink.is_empty());

        let mut consumer = cluster
            .subscribe(SPANS_TOPIC, "test", SubscriptionMode::Exclusive)
            .unwrap();
        let messages = consumer.drain().unwrap();
        assert_eq!(messages.len(), 1);
        let ev = wire::decode_span(&messages[0].payload).unwrap();
        assert_eq!(ev.name, "op.a");
    }

    #[test]
    fn pump_ships_contention_deltas_as_metric_events() {
        let (cluster, _clock) = cluster();
        let sink = TelemetrySink::new(1024);
        let mut pump = TelemetryPump::new(sink.clone(), &cluster).unwrap();
        let prof = ContentionProfiler::new();
        let site = cluster.enable_contention_profiling(&prof);
        pump.attach_contention(prof);
        cluster.create_topic("t", 1).unwrap();
        let p = cluster.producer("t").unwrap();
        for _ in 0..3 {
            p.send(b"x").unwrap();
        }
        assert!(site.snapshot().acquisitions >= 3);
        let shipped = pump.pump();
        assert!(shipped > 0, "contention deltas must ride the pump");
        let mut consumer = cluster
            .subscribe(METRICS_TOPIC, "test", SubscriptionMode::Exclusive)
            .unwrap();
        let names: Vec<String> = consumer
            .drain()
            .unwrap()
            .iter()
            .map(|m| wire::decode_metric(&m.payload).unwrap().0)
            .collect();
        assert!(
            names.iter().any(|n| n == "lock.pulsar.topics.acquisitions"),
            "got {names:?}"
        );
        // Idle lock: the next pump ships no stale zero-deltas for it (the
        // pump's own publishes touch the topic shard, so only assert the
        // sink got drained, not that nothing new arrived).
        assert!(sink.is_empty());
    }

    #[test]
    fn pumping_over_a_traced_cluster_does_not_feed_back() {
        let (cluster, clock) = cluster();
        let tracer = Tracer::new(clock.clone());
        let sink = TelemetrySink::new(1024);
        tracer.set_telemetry(sink.clone());
        // The telemetry transport itself is instrumented with the same
        // sink-bearing tracer — the worst case for feedback.
        cluster.set_tracer(tracer.clone());
        let mut pump = TelemetryPump::new(sink.clone(), &cluster).unwrap();

        drop(tracer.span("sys", "user.work"));
        assert_eq!(pump.pump(), 1);
        // Publishing created pulsar spans in the recorder, but none of
        // them re-entered the sink: a second pump ships nothing.
        assert_eq!(pump.pump(), 0);
        assert!(sink.is_empty());
        assert!(tracer.span_count() > 1, "transport spans still recorded");
    }

    #[test]
    fn second_pump_reuses_existing_topics() {
        let (cluster, _clock) = cluster();
        let _first = TelemetryPump::new(TelemetrySink::new(8), &cluster).unwrap();
        // Re-attaching (e.g. after a monitor restart) must not fail on
        // TopicExists.
        let _second = TelemetryPump::new(TelemetrySink::new(8), &cluster).unwrap();
    }
}
