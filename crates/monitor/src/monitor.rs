//! The streaming monitor: consumes the telemetry topics and folds events
//! into sketches, windows and alerts.
//!
//! This is the paper's Fig. 3 pattern pointed at the stack itself: the
//! monitor is just another sketch-maintaining stream consumer, built from
//! `taureau-sketches` primitives (KLL quantiles, space-saving top-K) over
//! a Pulsar subscription. Folded state is bounded: per-operation sketches
//! are O(k log n), rate windows are O(slices), top-K is O(k), and
//! flight-recorder dumps are deduplicated and capped.

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::time::Duration;

use taureau_core::clock::SharedClock;
use taureau_core::metrics::MetricsRegistry;
use taureau_core::trace::{suppress_telemetry, Tracer};
use taureau_jiffy::{Jiffy, JiffyError};
use taureau_pulsar::{Consumer, PulsarCluster, PulsarError, SubscriptionMode};
use taureau_sketches::{KllSketch, SpaceSaving};

use crate::pump::{METRICS_TOPIC, SPANS_TOPIC};
use crate::report::{HealthReport, OpHealth};
use crate::slo::{AlertEvent, AlertState, SloPolicy};
use crate::window::{RateWindow, RollingQuantile};
use crate::wire;

/// Tuning for a [`Monitor`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// KLL accuracy parameter for latency sketches (rank error ~O(1/k)).
    pub quantile_k: usize,
    /// How many hot functions space-saving tracks.
    pub top_k: usize,
    /// Fast window for latency quantiles, error rates and burn rates.
    pub fast_window: Duration,
    /// Slices per window (more slices = smoother eviction).
    pub window_slices: usize,
    /// Slow window for burn-rate policies.
    pub slow_window: Duration,
    /// Minimum events in a window before a policy can fire (hysteresis
    /// against alerting on the first slow request of a quiet stream).
    pub min_samples: u64,
    /// Maximum flight-recorder dumps kept in the blackbox namespace.
    pub max_dumps: usize,
    /// Maximum spans included in one dump when no specific trace is
    /// implicated (alert-firing dumps take the most recent history).
    pub max_dump_spans: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            quantile_k: 200,
            top_k: 8,
            fast_window: Duration::from_secs(10),
            window_slices: 10,
            slow_window: Duration::from_secs(60),
            min_samples: 20,
            max_dumps: 32,
            max_dump_spans: 512,
        }
    }
}

/// Per-operation folded statistics.
struct OpStats {
    /// All-time latency sketch (for end-of-run quantile tables).
    cumulative: KllSketch,
    /// Windowed latency sketch (for SLO evaluation — recovers when the
    /// bad interval ages out).
    rolling: RollingQuantile,
    total_fast: RateWindow,
    errors_fast: RateWindow,
    total_slow: RateWindow,
    errors_slow: RateWindow,
}

impl OpStats {
    fn new(cfg: &MonitorConfig) -> Self {
        Self {
            cumulative: KllSketch::new(cfg.quantile_k),
            rolling: RollingQuantile::new(cfg.fast_window, cfg.window_slices, cfg.quantile_k),
            total_fast: RateWindow::new(cfg.fast_window, cfg.window_slices),
            errors_fast: RateWindow::new(cfg.fast_window, cfg.window_slices),
            total_slow: RateWindow::new(cfg.slow_window, cfg.window_slices),
            errors_slow: RateWindow::new(cfg.slow_window, cfg.window_slices),
        }
    }
}

struct PolicyRuntime {
    policy: SloPolicy,
    firing: bool,
}

/// What one [`Monitor::poll`] round did.
#[derive(Debug, Clone, Default)]
pub struct PollSummary {
    /// Span events consumed this round.
    pub spans: usize,
    /// Metric events consumed this round.
    pub metrics: usize,
    /// Frames that failed to decode this round.
    pub decode_errors: usize,
    /// Policies that transitioned to firing this round.
    pub fired: usize,
    /// Policies that transitioned to resolved this round.
    pub resolved: usize,
    /// Blackbox dump ids written this round.
    pub dumps: Vec<String>,
}

/// Errors from monitor construction or polling.
#[derive(Debug)]
pub enum MonitorError {
    /// The telemetry transport failed.
    Pulsar(PulsarError),
    /// The blackbox store failed.
    Jiffy(JiffyError),
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Pulsar(e) => write!(f, "telemetry transport: {e}"),
            Self::Jiffy(e) => write!(f, "blackbox store: {e}"),
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<PulsarError> for MonitorError {
    fn from(e: PulsarError) -> Self {
        Self::Pulsar(e)
    }
}

impl From<JiffyError> for MonitorError {
    fn from(e: JiffyError) -> Self {
        Self::Jiffy(e)
    }
}

/// Streaming consumer of the telemetry topics. See the crate docs for
/// where it sits in the pipeline.
pub struct Monitor {
    cfg: MonitorConfig,
    clock: SharedClock,
    span_consumer: Consumer,
    metric_consumer: Consumer,
    ops: BTreeMap<String, OpStats>,
    /// Cluster-collected operations keyed by `(origin node, op)` — kept
    /// apart from `ops` so the in-process `&str` lookup fast path stays
    /// allocation-free and local/remote measurements never mix.
    remote_ops: BTreeMap<(u64, String), OpStats>,
    remote_events: u64,
    hot_functions: SpaceSaving,
    counters: BTreeMap<String, u64>,
    metric_sketches: BTreeMap<String, KllSketch>,
    startups_fast: RateWindow,
    cold_fast: RateWindow,
    policies: Vec<PolicyRuntime>,
    alerts: Vec<AlertEvent>,
    alert_seq: u64,
    flight_recorder: Option<Tracer>,
    blackbox: Option<Jiffy>,
    registries: Vec<(String, MetricsRegistry)>,
    dump_ids: Vec<String>,
    dumped: HashSet<String>,
    pending_failure_dumps: Vec<u64>,
    decode_errors: u64,
    dump_errors: u64,
}

impl Monitor {
    /// Subscribe to the telemetry topics of `cluster` (creating them if
    /// no pump has yet), evaluating policies against `clock`.
    pub fn new(cluster: &PulsarCluster, clock: SharedClock) -> Result<Self, MonitorError> {
        Self::with_config(cluster, clock, MonitorConfig::default())
    }

    /// [`Monitor::new`] with explicit tuning.
    pub fn with_config(
        cluster: &PulsarCluster,
        clock: SharedClock,
        cfg: MonitorConfig,
    ) -> Result<Self, MonitorError> {
        for topic in [SPANS_TOPIC, METRICS_TOPIC] {
            if cluster.partitions(topic).is_err() {
                cluster.create_topic(topic, 1)?;
            }
        }
        let span_consumer =
            cluster.subscribe(SPANS_TOPIC, "_monitor", SubscriptionMode::Exclusive)?;
        let metric_consumer =
            cluster.subscribe(METRICS_TOPIC, "_monitor", SubscriptionMode::Exclusive)?;
        Ok(Self {
            hot_functions: SpaceSaving::new(cfg.top_k),
            startups_fast: RateWindow::new(cfg.fast_window, cfg.window_slices),
            cold_fast: RateWindow::new(cfg.fast_window, cfg.window_slices),
            cfg,
            clock,
            span_consumer,
            metric_consumer,
            ops: BTreeMap::new(),
            remote_ops: BTreeMap::new(),
            remote_events: 0,
            counters: BTreeMap::new(),
            metric_sketches: BTreeMap::new(),
            policies: Vec::new(),
            alerts: Vec::new(),
            alert_seq: 0,
            flight_recorder: None,
            blackbox: None,
            registries: Vec::new(),
            dump_ids: Vec::new(),
            dumped: HashSet::new(),
            pending_failure_dumps: Vec::new(),
            decode_errors: 0,
            dump_errors: 0,
        })
    }

    /// Add a policy to evaluate on every poll.
    pub fn with_policy(mut self, policy: SloPolicy) -> Self {
        self.policies.push(PolicyRuntime {
            policy,
            firing: false,
        });
        self
    }

    /// Attach the tracer whose retained ring buffer serves as the flight
    /// recorder for blackbox dumps.
    pub fn with_flight_recorder(mut self, tracer: &Tracer) -> Self {
        self.flight_recorder = Some(tracer.clone());
        self
    }

    /// Attach the Jiffy store that receives `/blackbox/<alert-id>` dumps.
    pub fn with_blackbox(mut self, jiffy: &Jiffy) -> Self {
        self.blackbox = Some(jiffy.clone());
        self
    }

    /// Attach a subsystem metrics registry; its snapshot (including
    /// histogram summaries) is embedded in dumps and health reports under
    /// `prefix`.
    pub fn with_registry(mut self, prefix: &str, registry: &MetricsRegistry) -> Self {
        self.registries.push((prefix.to_string(), registry.clone()));
        self
    }

    /// Drain both telemetry topics, fold the events, evaluate policies,
    /// and write any triggered blackbox dumps.
    pub fn poll(&mut self) -> Result<PollSummary, MonitorError> {
        let mut summary = PollSummary::default();
        // Consuming over an instrumented cluster must not emit telemetry
        // about the consumption (the same feedback loop the pump guards
        // against on the publish side).
        let (span_msgs, metric_msgs) = suppress_telemetry(|| {
            Ok::<_, PulsarError>((self.span_consumer.drain()?, self.metric_consumer.drain()?))
        })?;
        for msg in span_msgs {
            match wire::decode_span(&msg.payload) {
                Some(ev) => {
                    self.fold_span(&ev);
                    summary.spans += 1;
                }
                None => {
                    self.decode_errors += 1;
                    summary.decode_errors += 1;
                }
            }
            self.span_consumer.ack(msg.id)?;
        }
        for msg in metric_msgs {
            match wire::decode_metric(&msg.payload) {
                Some((name, delta)) => {
                    self.fold_metric(&name, delta);
                    summary.metrics += 1;
                }
                None => {
                    self.decode_errors += 1;
                    summary.decode_errors += 1;
                }
            }
            self.metric_consumer.ack(msg.id)?;
        }

        let now = self.clock.now();
        // Invocation failures dump the implicated trace.
        for trace_id in std::mem::take(&mut self.pending_failure_dumps) {
            let id = format!("invoke-failure-{trace_id:016x}");
            if let Some(id) = self.dump(&id, Some(trace_id), "invocation failure", now) {
                summary.dumps.push(id);
            }
        }
        // Policy transitions; firing alerts dump recent history.
        let transitions = self.evaluate(now);
        for event in transitions {
            match event.state {
                AlertState::Firing => {
                    summary.fired += 1;
                    self.alert_seq += 1;
                    let id = format!("alert-{}-{}", self.alert_seq, event.policy);
                    let reason = format!("alert firing: {event}");
                    if let Some(id) = self.dump(&id, None, &reason, now) {
                        summary.dumps.push(id);
                    }
                }
                AlertState::Resolved => summary.resolved += 1,
            }
            self.alerts.push(event);
        }
        Ok(summary)
    }

    fn fold_span(&mut self, ev: &wire::SpanEvent) {
        let at = Duration::from_micros(ev.end_us);
        // Same `&str`-first lookup as `fold_metric`: avoid cloning the op
        // name on the per-span hot path once the op has been seen.
        if !self.ops.contains_key(&ev.name) {
            self.ops.insert(ev.name.clone(), OpStats::new(&self.cfg));
        }
        let stats = self.ops.get_mut(&ev.name).expect("just inserted");
        let latency_us = ev.duration_us() as f64;
        stats.cumulative.update(latency_us);
        stats.rolling.record(at, latency_us);
        stats.total_fast.record(at, 1);
        stats.total_slow.record(at, 1);
        let errored = ev.attr("outcome") == Some("error");
        if errored {
            stats.errors_fast.record(at, 1);
            stats.errors_slow.record(at, 1);
        }
        if ev.name == "faas.invoke" {
            if let Some(function) = ev.attr("function") {
                self.hot_functions.add(function.as_bytes(), 1);
            }
            if errored {
                self.pending_failure_dumps.push(ev.trace_id);
            }
        }
        if ev.name == "faas.startup" {
            self.startups_fast.record(at, 1);
            if ev.attr("kind") == Some("cold") {
                self.cold_fast.record(at, 1);
            }
        }
    }

    fn fold_metric(&mut self, name: &str, delta: u64) {
        // `*_us` metrics are latency samples, everything else a counter.
        // Look up by `&str` before falling back to insertion: the entry API
        // would allocate an owned key on every event, and after warm-up
        // every event hits an existing key.
        if name.ends_with("_us") {
            if let Some(sketch) = self.metric_sketches.get_mut(name) {
                sketch.update(delta as f64);
            } else {
                let mut sketch = KllSketch::new(self.cfg.quantile_k);
                sketch.update(delta as f64);
                self.metric_sketches.insert(name.to_string(), sketch);
            }
        } else if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Fold a span event relayed from another node by the cluster
    /// observability plane. Keyed by `(node, op)` so the health report
    /// can show per-node latency side by side — the whole point of
    /// grey-failure hunting.
    pub fn ingest_remote_span(&mut self, node: u64, ev: &wire::SpanEvent) {
        self.remote_events += 1;
        let key = (node, ev.name.clone());
        if !self.remote_ops.contains_key(&key) {
            self.remote_ops.insert(key.clone(), OpStats::new(&self.cfg));
        }
        let stats = self.remote_ops.get_mut(&key).expect("just inserted");
        let at = Duration::from_micros(ev.end_us);
        let latency_us = ev.duration_us() as f64;
        stats.cumulative.update(latency_us);
        stats.rolling.record(at, latency_us);
        stats.total_fast.record(at, 1);
        stats.total_slow.record(at, 1);
        if ev.attr("outcome") == Some("error") {
            stats.errors_fast.record(at, 1);
            stats.errors_slow.record(at, 1);
        }
    }

    /// Fold a counter metric relayed from another node, namespaced
    /// `node<N>.` so per-node counters never collide with local ones.
    pub fn ingest_remote_metric(&mut self, node: u64, name: &str, delta: u64) {
        self.remote_events += 1;
        self.fold_metric(&format!("node{node}.{name}"), delta);
    }

    /// Remote (cluster-collected) events folded so far.
    pub fn remote_events(&self) -> u64 {
        self.remote_events
    }

    /// Evaluate every policy at `now`, returning only *transitions*.
    fn evaluate(&mut self, now: Duration) -> Vec<AlertEvent> {
        let min_samples = self.cfg.min_samples;
        let mut transitions = Vec::new();
        for i in 0..self.policies.len() {
            let policy = self.policies[i].policy.clone();
            let was_firing = self.policies[i].firing;
            let op = policy.op().to_string();
            let Some(stats) = self.ops.get_mut(&op) else {
                continue;
            };
            let (breaching, value, threshold) = match &policy {
                SloPolicy::LatencyQuantile { q, max, .. } => {
                    let threshold = max.as_micros() as f64;
                    if stats.rolling.count(now) < min_samples {
                        (false, 0.0, threshold)
                    } else {
                        let value = stats.rolling.quantile(now, *q).unwrap_or(0.0);
                        (value > threshold, value, threshold)
                    }
                }
                SloPolicy::ErrorRate { max_ratio, .. } => {
                    let total = stats.total_fast.count(now);
                    if total < min_samples {
                        (false, 0.0, *max_ratio)
                    } else {
                        let ratio = stats.errors_fast.count(now) as f64 / total as f64;
                        (ratio > *max_ratio, ratio, *max_ratio)
                    }
                }
                SloPolicy::BurnRate { budget, factor, .. } => {
                    let fast_total = stats.total_fast.count(now);
                    let slow_total = stats.total_slow.count(now);
                    if fast_total < min_samples || slow_total < min_samples {
                        (false, 0.0, *factor)
                    } else {
                        let fast_burn =
                            stats.errors_fast.count(now) as f64 / fast_total as f64 / budget;
                        let slow_burn =
                            stats.errors_slow.count(now) as f64 / slow_total as f64 / budget;
                        // Fire only when both windows burn hot (slow
                        // suppresses blips); resolve once the fast window
                        // recovers (it ages out first).
                        let breaching = if was_firing {
                            fast_burn > *factor
                        } else {
                            fast_burn > *factor && slow_burn > *factor
                        };
                        (breaching, fast_burn, *factor)
                    }
                }
            };
            if breaching != was_firing {
                self.policies[i].firing = breaching;
                transitions.push(AlertEvent {
                    at: now,
                    policy: policy.name(),
                    state: if breaching {
                        AlertState::Firing
                    } else {
                        AlertState::Resolved
                    },
                    value,
                    threshold,
                });
            }
        }
        transitions
    }

    /// Write one blackbox dump. Returns the dump id, or `None` when the
    /// dump was deduplicated, capped, impossible (no blackbox store) or
    /// failed (counted in `dump_errors`).
    fn dump(
        &mut self,
        id: &str,
        focus_trace: Option<u64>,
        reason: &str,
        now: Duration,
    ) -> Option<String> {
        let jiffy = self.blackbox.clone()?;
        if self.dumped.contains(id) || self.dumped.len() >= self.cfg.max_dumps {
            return None;
        }
        let spans = match &self.flight_recorder {
            Some(tracer) => {
                let all = tracer.spans();
                match focus_trace {
                    Some(trace_id) => all
                        .into_iter()
                        .filter(|s| s.trace_id.0 == trace_id)
                        .collect(),
                    None => {
                        let skip = all.len().saturating_sub(self.cfg.max_dump_spans);
                        all.into_iter().skip(skip).collect()
                    }
                }
            }
            None => Vec::new(),
        };
        let summary = self.render_dump_summary(id, reason, now, &spans);
        let trace_json = render_trace_json(&spans);
        // Blackbox writes over an instrumented Jiffy must not emit
        // telemetry about themselves.
        let result = suppress_telemetry(|| -> Result<(), JiffyError> {
            let base = format!("/blackbox/{id}");
            jiffy
                .create_file(format!("{base}/summary.txt").as_str())?
                .append(summary.as_bytes())?;
            jiffy
                .create_file(format!("{base}/trace.json").as_str())?
                .append(trace_json.as_bytes())?;
            Ok(())
        });
        match result {
            Ok(()) => {
                self.dumped.insert(id.to_string());
                self.dump_ids.push(id.to_string());
                Some(id.to_string())
            }
            Err(_) => {
                self.dump_errors += 1;
                None
            }
        }
    }

    fn render_dump_summary(
        &self,
        id: &str,
        reason: &str,
        now: Duration,
        spans: &[taureau_core::trace::SpanRecord],
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "blackbox dump: {id}");
        let _ = writeln!(out, "reason: {reason}");
        let _ = writeln!(out, "clock: {:.6}s", now.as_secs_f64());
        let _ = writeln!(out, "spans: {}", spans.len());
        let _ = writeln!(out);
        let _ = writeln!(out, "== trace ==");
        out.push_str(&render_span_tree(spans));
        let _ = writeln!(out);
        let _ = writeln!(out, "== counters (telemetry stream) ==");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} {value}");
        }
        for (prefix, registry) in &self.registries {
            let _ = writeln!(out);
            let _ = writeln!(out, "== metrics: {prefix} ==");
            out.push_str(&registry.render_prometheus_prefixed(prefix));
        }
        out
    }

    /// Snapshot the folded state as a [`HealthReport`].
    pub fn health_report(&mut self) -> HealthReport {
        let now = self.clock.now();
        fn op_health(
            op: String,
            node: Option<u64>,
            stats: &mut OpStats,
            now: Duration,
        ) -> OpHealth {
            let total = stats.total_fast.count(now);
            let errors = stats.errors_fast.count(now);
            OpHealth {
                op,
                node,
                count: stats.cumulative.total(),
                p50_us: stats.cumulative.quantile(0.50).unwrap_or(0.0),
                p90_us: stats.cumulative.quantile(0.90).unwrap_or(0.0),
                p99_us: stats.cumulative.quantile(0.99).unwrap_or(0.0),
                max_us: stats.cumulative.quantile(1.0).unwrap_or(0.0),
                error_rate: if total == 0 {
                    0.0
                } else {
                    errors as f64 / total as f64
                },
            }
        }
        let mut ops = Vec::new();
        for (name, stats) in self.ops.iter_mut() {
            ops.push(op_health(name.clone(), None, stats, now));
        }
        for ((node, name), stats) in self.remote_ops.iter_mut() {
            ops.push(op_health(name.clone(), Some(*node), stats, now));
        }
        ops.sort_by(|a, b| (&a.op, a.node).cmp(&(&b.op, b.node)));
        let mut histogram_summaries = Vec::new();
        for (prefix, registry) in &self.registries {
            for (name, summary) in registry.histogram_summaries() {
                histogram_summaries.push((format!("{prefix}{name}"), summary));
            }
        }
        HealthReport {
            at: now,
            ops,
            top_functions: self.top_functions(),
            counters: self.counters.clone().into_iter().collect(),
            active_alerts: self.active_alerts(),
            alerts: self.alerts.clone(),
            histogram_summaries,
            cold_start_rate: self.cold_start_rate(),
            decode_errors: self.decode_errors,
        }
    }

    /// All alert transitions so far, in order.
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.alerts
    }

    /// Names of policies currently in breach.
    pub fn active_alerts(&self) -> Vec<String> {
        self.policies
            .iter()
            .filter(|p| p.firing)
            .map(|p| p.policy.name())
            .collect()
    }

    /// All-time latency quantile (µs) for an operation, from its sketch.
    pub fn quantile_us(&self, op: &str, q: f64) -> Option<f64> {
        self.ops.get(op)?.cumulative.quantile(q)
    }

    /// All-time event count for an operation.
    pub fn op_count(&self, op: &str) -> u64 {
        self.ops.get(op).map_or(0, |s| s.cumulative.total())
    }

    /// Operations seen so far, sorted by name.
    pub fn op_names(&self) -> Vec<String> {
        self.ops.keys().cloned().collect()
    }

    /// Error rate of `op` over the fast window ending now.
    pub fn error_rate(&mut self, op: &str) -> f64 {
        let now = self.clock.now();
        match self.ops.get_mut(op) {
            Some(stats) => {
                let total = stats.total_fast.count(now);
                if total == 0 {
                    0.0
                } else {
                    stats.errors_fast.count(now) as f64 / total as f64
                }
            }
            None => 0.0,
        }
    }

    /// Fraction of container starts that were cold over the fast window.
    pub fn cold_start_rate(&mut self) -> f64 {
        let now = self.clock.now();
        let starts = self.startups_fast.count(now);
        if starts == 0 {
            0.0
        } else {
            self.cold_fast.count(now) as f64 / starts as f64
        }
    }

    /// Hot functions by estimated invocation count, heaviest first.
    pub fn top_functions(&self) -> Vec<(String, u64)> {
        let mut hitters: Vec<(String, u64)> = self
            .hot_functions
            .heavy_hitters()
            .into_iter()
            .map(|h| (String::from_utf8_lossy(&h.item).into_owned(), h.count))
            .collect();
        hitters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        hitters
    }

    /// Folded value of a counter metric from the telemetry stream.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Quantile (µs) of a `*_us` metric sample stream, if seen.
    pub fn metric_quantile(&self, name: &str, q: f64) -> Option<f64> {
        self.metric_sketches.get(name)?.quantile(q)
    }

    /// Blackbox dump ids written so far, in order.
    pub fn dump_ids(&self) -> &[String] {
        &self.dump_ids
    }

    /// Telemetry frames that failed to decode.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Dumps that failed to write.
    pub fn dump_errors(&self) -> u64 {
        self.dump_errors
    }
}

impl fmt::Debug for Monitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Monitor")
            .field("ops", &self.ops.len())
            .field("policies", &self.policies.len())
            .field("alerts", &self.alerts.len())
            .finish_non_exhaustive()
    }
}

/// Render spans as an indented causal tree (children under parents,
/// orphans — whose parents fell out of the retention window — as roots).
fn render_span_tree(spans: &[taureau_core::trace::SpanRecord]) -> String {
    use std::fmt::Write as _;
    let ids: HashSet<u64> = spans.iter().map(|s| s.span_id.0).collect();
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut roots = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent {
            Some(p) if ids.contains(&p.0) => children.entry(p.0).or_default().push(i),
            _ => roots.push(i),
        }
    }
    // Render in start order at every level.
    let by_start = |indices: &mut Vec<usize>| {
        indices.sort_by_key(|&i| (spans[i].start, spans[i].span_id.0));
    };
    by_start(&mut roots);
    for indices in children.values_mut() {
        by_start(indices);
    }
    fn walk(
        out: &mut String,
        spans: &[taureau_core::trace::SpanRecord],
        children: &BTreeMap<u64, Vec<usize>>,
        i: usize,
        depth: usize,
    ) {
        let s = &spans[i];
        let _ = write!(
            out,
            "{:indent$}{} [{}] {}us",
            "",
            s.name,
            s.system,
            s.duration().as_micros(),
            indent = depth * 2
        );
        for (k, v) in &s.attrs {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        if let Some(kids) = children.get(&s.span_id.0) {
            for &k in kids {
                walk(out, spans, children, k, depth + 1);
            }
        }
    }
    let mut out = String::new();
    for &r in &roots {
        walk(&mut out, spans, &children, r, 0);
    }
    out
}

/// Minimal JSON array of span objects (hand-rolled: the serde shim's
/// derives are inert). Public so the cluster observability plane can
/// write collector-side captures in the same blackbox format.
pub fn render_trace_json(spans: &[taureau_core::trace::SpanRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"trace_id\":\"{}\",\"span_id\":\"{}\",\"name\":{},\"system\":{},\"start_us\":{},\"end_us\":{}",
            s.trace_id,
            s.span_id,
            json_string(&s.name),
            json_string(s.system),
            s.start.as_micros(),
            s.end.as_micros(),
        );
        if let Some(p) = s.parent {
            let _ = write!(out, ",\"parent_span_id\":\"{p}\"");
        }
        if !s.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (j, (k, v)) in s.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(k), json_string(v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push(']');
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pump::TelemetryPump;
    use std::sync::Arc;
    use taureau_core::clock::VirtualClock;
    use taureau_core::trace::TelemetrySink;
    use taureau_jiffy::JiffyConfig;
    use taureau_pulsar::PulsarConfig;

    /// A full in-process telemetry pipeline on one virtual clock.
    struct Pipeline {
        clock: Arc<VirtualClock>,
        tracer: Tracer,
        sink: TelemetrySink,
        pump: TelemetryPump,
    }

    fn pipeline() -> (Pipeline, PulsarCluster) {
        let clock = Arc::new(VirtualClock::new());
        let cluster = PulsarCluster::new(PulsarConfig::default(), clock.clone());
        let tracer = Tracer::new(clock.clone());
        let sink = TelemetrySink::new(65_536);
        tracer.set_telemetry(sink.clone());
        let pump = TelemetryPump::new(sink.clone(), &cluster).unwrap();
        (
            Pipeline {
                clock,
                tracer,
                sink,
                pump,
            },
            cluster,
        )
    }

    fn small_windows() -> MonitorConfig {
        MonitorConfig {
            fast_window: Duration::from_millis(100),
            slow_window: Duration::from_millis(400),
            min_samples: 3,
            ..MonitorConfig::default()
        }
    }

    fn record_invoke(p: &Pipeline, function: &str, latency: Duration, ok: bool) {
        let mut span = p.tracer.span("taureau-faas", "faas.invoke");
        span.attr("function", function);
        span.attr("outcome", if ok { "ok" } else { "error" });
        p.clock.advance(latency);
    }

    #[test]
    fn folds_spans_into_per_op_sketches_and_topk() {
        let (mut p, cluster) = pipeline();
        let mut monitor = Monitor::new(&cluster, p.clock.clone()).unwrap();
        for i in 0..100 {
            let function = if i % 10 == 0 { "rare" } else { "hot" };
            record_invoke(&p, function, Duration::from_millis(2), true);
            p.clock.advance(Duration::from_millis(1));
        }
        p.pump.pump();
        let summary = monitor.poll().unwrap();
        assert_eq!(summary.spans, 100);
        assert_eq!(summary.decode_errors, 0);
        assert_eq!(monitor.op_count("faas.invoke"), 100);
        let p50 = monitor.quantile_us("faas.invoke", 0.5).unwrap();
        assert!((p50 - 2_000.0).abs() < 100.0, "p50 {p50}");
        let top = monitor.top_functions();
        assert_eq!(top[0].0, "hot");
        assert_eq!(top[0].1, 90);
        assert!(top.iter().any(|(f, _)| f == "rare"));
    }

    #[test]
    fn latency_policy_fires_once_and_resolves_once() {
        let (mut p, cluster) = pipeline();
        let mut monitor = Monitor::with_config(&cluster, p.clock.clone(), small_windows())
            .unwrap()
            .with_policy(SloPolicy::parse("p99 faas.invoke < 10ms").unwrap());
        // Healthy, then a fault burst, then healthy again; poll every
        // round so sustained breach still yields exactly one transition.
        let mut timeline = Vec::new();
        for round in 0..120 {
            let latency = if (40..60).contains(&round) {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(2)
            };
            record_invoke(&p, "api", latency, true);
            p.clock.advance(Duration::from_millis(3));
            p.pump.pump();
            let s = monitor.poll().unwrap();
            timeline.push((s.fired, s.resolved));
        }
        let fired: usize = timeline.iter().map(|t| t.0).sum();
        let resolved: usize = timeline.iter().map(|t| t.1).sum();
        assert_eq!(fired, 1, "alert must fire exactly once");
        assert_eq!(resolved, 1, "alert must resolve exactly once");
        assert!(monitor.active_alerts().is_empty());
        let alerts = monitor.alerts();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].state, AlertState::Firing);
        assert_eq!(alerts[1].state, AlertState::Resolved);
        assert!(alerts[0].at < alerts[1].at);
    }

    #[test]
    fn error_rate_policy_tracks_outcome_attrs() {
        let (mut p, cluster) = pipeline();
        let mut monitor = Monitor::with_config(&cluster, p.clock.clone(), small_windows())
            .unwrap()
            .with_policy(SloPolicy::parse("error_rate faas.invoke < 20%").unwrap());
        for round in 0..60 {
            let ok = !(20..40).contains(&round) || round % 2 == 0;
            record_invoke(&p, "api", Duration::from_millis(1), ok);
            p.clock.advance(Duration::from_millis(4));
            p.pump.pump();
            monitor.poll().unwrap();
        }
        let alerts = monitor.alerts();
        assert_eq!(alerts.len(), 2, "timeline: {alerts:?}");
        assert_eq!(alerts[0].state, AlertState::Firing);
        assert_eq!(alerts[1].state, AlertState::Resolved);
    }

    #[test]
    fn failure_dump_lands_in_blackbox_namespace() {
        let (mut p, cluster) = pipeline();
        let jiffy = Jiffy::new(JiffyConfig::default(), p.clock.clone());
        let mut monitor = Monitor::new(&cluster, p.clock.clone())
            .unwrap()
            .with_flight_recorder(&p.tracer)
            .with_blackbox(&jiffy);
        // A failing invocation with an inner span, recorded as one trace.
        {
            let mut span = p.tracer.span("taureau-faas", "faas.invoke");
            span.attr("function", "ingest");
            span.attr("outcome", "error");
            let mut inner = p.tracer.span("taureau-jiffy", "jiffy.kv_put");
            inner.attr("bytes", 64);
            p.clock.advance(Duration::from_millis(1));
        }
        p.pump.pump();
        let summary = monitor.poll().unwrap();
        assert_eq!(summary.dumps.len(), 1);
        let id = &summary.dumps[0];
        assert!(id.starts_with("invoke-failure-"));
        let text = jiffy
            .open_file(format!("/blackbox/{id}/summary.txt").as_str())
            .unwrap()
            .contents()
            .unwrap();
        let text = String::from_utf8(text.to_vec()).unwrap();
        assert!(text.contains("faas.invoke"), "summary: {text}");
        assert!(text.contains("jiffy.kv_put"));
        assert!(text.contains("outcome=error"));
        let json = jiffy
            .open_file(format!("/blackbox/{id}/trace.json").as_str())
            .unwrap()
            .contents()
            .unwrap();
        let json = String::from_utf8(json.to_vec()).unwrap();
        assert!(json.contains("\"name\":\"jiffy.kv_put\""));
        // Re-polling the same failure does not dump twice.
        let again = monitor.poll().unwrap();
        assert!(again.dumps.is_empty());
    }

    #[test]
    fn malformed_frames_are_counted_not_fatal() {
        let (p, cluster) = pipeline();
        let mut monitor = Monitor::new(&cluster, p.clock.clone()).unwrap();
        cluster
            .producer(SPANS_TOPIC)
            .unwrap()
            .send(b"not a telemetry frame")
            .unwrap();
        let summary = monitor.poll().unwrap();
        assert_eq!(summary.spans, 0);
        assert_eq!(summary.decode_errors, 1);
        assert_eq!(monitor.decode_errors(), 1);
    }

    #[test]
    fn health_report_summarises_folded_state() {
        let (mut p, cluster) = pipeline();
        let registry = MetricsRegistry::new();
        registry.histogram("exec_duration_us").record(1_500);
        let mut monitor = Monitor::new(&cluster, p.clock.clone())
            .unwrap()
            .with_registry("faas_", &registry);
        for _ in 0..10 {
            record_invoke(&p, "api", Duration::from_millis(2), true);
            p.sink.metric("faas.invocations_ok", 1);
            p.clock.advance(Duration::from_millis(1));
        }
        p.sink.metric("faas.invoke_latency_us", 2_000);
        p.pump.pump();
        monitor.poll().unwrap();
        let report = monitor.health_report();
        let text = report.render_text();
        assert!(text.contains("faas.invoke"));
        assert!(text.contains("faas.invocations_ok"));
        assert!(text.contains("count=1"), "histogram summary: {text}");
        let prom = report.render_prometheus();
        assert!(prom.contains("taureau_monitor_op_latency_us"));
        assert!(prom.contains("taureau_monitor_alert_active"));
        assert_eq!(monitor.counter("faas.invocations_ok"), 10);
        assert_eq!(
            monitor.metric_quantile("faas.invoke_latency_us", 0.5),
            Some(2_000.0)
        );
    }

    #[test]
    fn remote_spans_fold_per_node_and_render_node_labels() {
        let (p, cluster) = pipeline();
        let mut monitor = Monitor::new(&cluster, p.clock.clone()).unwrap();
        // The same op from two nodes, with very different latency: the
        // report must keep them apart.
        for (node, duration_us, n) in [(1u64, 800u64, 5), (2, 9_000, 5)] {
            for i in 0..n {
                let ev = wire::SpanEvent {
                    trace_id: 10 * node + i,
                    span_id: 100 * node + i,
                    parent: None,
                    name: "cluster.publish".to_string(),
                    system: "taureau-cluster".to_string(),
                    start_us: 1_000,
                    end_us: 1_000 + duration_us,
                    attrs: vec![("outcome".to_string(), "ok".to_string())],
                };
                monitor.ingest_remote_span(node, &ev);
            }
        }
        monitor.ingest_remote_metric(2, "pulsar.publishes", 7);
        assert_eq!(monitor.remote_events(), 11);
        assert_eq!(monitor.counter("node2.pulsar.publishes"), 7);
        let report = monitor.health_report();
        let per_node: Vec<_> = report
            .ops
            .iter()
            .filter(|o| o.op == "cluster.publish")
            .collect();
        assert_eq!(per_node.len(), 2);
        assert_eq!(per_node[0].node, Some(1));
        assert_eq!(per_node[1].node, Some(2));
        assert!(per_node[0].p50_us < per_node[1].p50_us);
        let prom = report.render_prometheus();
        assert!(prom.contains("op=\"cluster.publish\",node=\"1\""));
        assert!(prom.contains("op=\"cluster.publish\",node=\"2\""));
    }

    #[test]
    fn no_dropped_spans_warning_under_default_test_config() {
        // CI greps `cargo test -q -p taureau-monitor` output for this
        // warning: the default pipeline config must not shed telemetry.
        let (mut p, cluster) = pipeline();
        let mut monitor = Monitor::new(&cluster, p.clock.clone()).unwrap();
        for _ in 0..2_000 {
            record_invoke(&p, "api", Duration::from_micros(500), true);
            p.pump.pump();
        }
        monitor.poll().unwrap();
        let dropped = p.tracer.dropped_spans() + p.sink.dropped();
        if dropped > 0 {
            eprintln!("warning: dropped_spans = {dropped}");
        }
        assert_eq!(monitor.op_count("faas.invoke"), 2_000);
        assert_eq!(dropped, 0);
    }
}
