//! # taureau-monitor
//!
//! Self-hosted monitoring for the *Le Taureau* stack: the stack's own
//! streaming sketches (`taureau-sketches`) turned onto the stack's own
//! telemetry — the paper's Fig. 3 "sketches as the canonical serverless
//! streaming workload" pattern, dogfooded as a monitoring plane.
//!
//! The loop closes end to end:
//!
//! 1. Instrumented subsystems record spans into a bounded
//!    [`Tracer`](taureau_core::trace::Tracer) flight recorder and push
//!    span/metric events onto a non-blocking
//!    [`TelemetrySink`](taureau_core::trace::TelemetrySink).
//! 2. A [`TelemetryPump`] drains the sink and publishes framed events onto
//!    dedicated Pulsar topics ([`SPANS_TOPIC`], [`METRICS_TOPIC`]) —
//!    telemetry rides the same messaging substrate as user traffic.
//! 3. A [`Monitor`] consumes those topics and folds events into
//!    per-operation latency quantile sketches, error/cold-start rate
//!    windows and top-K hot functions, evaluates declarative
//!    [`SloPolicy`]s into firing/resolved [`AlertEvent`]s, and on alert
//!    firing (or invocation failure) dumps the causally-complete recent
//!    trace plus a metrics snapshot into a Jiffy `/blackbox/<alert-id>`
//!    namespace for post-mortem reads.
//! 4. A [`HealthReport`] renders the folded state as text or Prometheus
//!    exposition format.
//!
//! Every stage is bounded and lossy-by-design: full queues drop and count
//! rather than block, so monitoring can never stall the hot path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod monitor;
pub mod pump;
pub mod report;
pub mod slo;
pub mod window;
pub mod wire;

pub use monitor::{render_trace_json, Monitor, MonitorConfig, MonitorError, PollSummary};
pub use pump::{TelemetryPump, METRICS_TOPIC, SPANS_TOPIC};
pub use report::{HealthReport, OpHealth};
pub use slo::{AlertEvent, AlertState, SloParseError, SloPolicy};
pub use window::{RateWindow, RollingQuantile};
pub use wire::SpanEvent;
