//! Time-windowed statistics the SLO evaluator folds telemetry into.
//!
//! Both structures here are *bucketed* rings over clock time: the window
//! is split into a fixed number of slices, events land in the slice their
//! timestamp falls into, and slices older than the window are evicted on
//! the next touch. That gives O(slices) memory regardless of event rate,
//! and — crucially for alerting — lets breached statistics *recover* once
//! the bad interval ages out, so alerts can transition back to resolved
//! (a cumulative sketch would stay polluted forever).

use std::collections::VecDeque;
use std::time::Duration;

use taureau_sketches::{KllSketch, Mergeable};

/// Count of events over a sliding time window, bucketed into slices.
#[derive(Debug, Clone)]
pub struct RateWindow {
    slice_us: u64,
    slices: usize,
    /// (slice index, count) pairs, oldest first.
    buckets: VecDeque<(u64, u64)>,
}

impl RateWindow {
    /// A window covering `window` of clock time, split into `slices`
    /// buckets (both must be non-zero).
    pub fn new(window: Duration, slices: usize) -> Self {
        assert!(slices >= 1, "rate window needs at least one slice");
        let slice_us = (window.as_micros() as u64 / slices as u64).max(1);
        Self {
            slice_us,
            slices,
            buckets: VecDeque::new(),
        }
    }

    /// Total clock time the window covers.
    pub fn window(&self) -> Duration {
        Duration::from_micros(self.slice_us * self.slices as u64)
    }

    fn slice_of(&self, at: Duration) -> u64 {
        at.as_micros() as u64 / self.slice_us
    }

    fn evict(&mut self, current: u64) {
        while let Some(&(idx, _)) = self.buckets.front() {
            if idx + self.slices as u64 <= current {
                self.buckets.pop_front();
            } else {
                break;
            }
        }
    }

    /// Record `n` events at clock time `at`.
    pub fn record(&mut self, at: Duration, n: u64) {
        let idx = self.slice_of(at);
        self.evict(idx);
        match self.buckets.back_mut() {
            Some((last, count)) if *last == idx => *count += n,
            _ => self.buckets.push_back((idx, n)),
        }
    }

    /// Events inside the window ending at clock time `now`.
    pub fn count(&mut self, now: Duration) -> u64 {
        let current = self.slice_of(now);
        self.evict(current);
        self.buckets.iter().map(|&(_, c)| c).sum()
    }
}

/// Quantiles over a sliding time window: one small KLL sketch per time
/// slice, merged on query. Recording is O(1) amortized; querying merges
/// at most `slices` sketches.
#[derive(Debug, Clone)]
pub struct RollingQuantile {
    k: usize,
    slice_us: u64,
    slices: usize,
    /// (slice index, sketch) pairs, oldest first.
    ring: VecDeque<(u64, KllSketch)>,
}

impl RollingQuantile {
    /// A rolling window covering `window`, split into `slices` sub-sketches
    /// of accuracy `k` (see [`KllSketch::new`]).
    pub fn new(window: Duration, slices: usize, k: usize) -> Self {
        assert!(slices >= 1, "rolling quantile needs at least one slice");
        let slice_us = (window.as_micros() as u64 / slices as u64).max(1);
        Self {
            k,
            slice_us,
            slices,
            ring: VecDeque::new(),
        }
    }

    fn slice_of(&self, at: Duration) -> u64 {
        at.as_micros() as u64 / self.slice_us
    }

    fn evict(&mut self, current: u64) {
        while let Some(&(idx, _)) = self.ring.front() {
            if idx + self.slices as u64 <= current {
                self.ring.pop_front();
            } else {
                break;
            }
        }
    }

    /// Record one sample observed at clock time `at`.
    pub fn record(&mut self, at: Duration, value: f64) {
        let idx = self.slice_of(at);
        self.evict(idx);
        match self.ring.back_mut() {
            Some((last, sketch)) if *last == idx => sketch.update(value),
            _ => {
                let mut sketch = KllSketch::new(self.k);
                sketch.update(value);
                self.ring.push_back((idx, sketch));
            }
        }
    }

    /// Samples inside the window ending at `now`.
    pub fn count(&mut self, now: Duration) -> u64 {
        let current = self.slice_of(now);
        self.evict(current);
        self.ring.iter().map(|(_, s)| s.total()).sum()
    }

    /// Quantile estimate over the window ending at `now`; `None` when the
    /// window holds no samples.
    pub fn quantile(&mut self, now: Duration, q: f64) -> Option<f64> {
        let current = self.slice_of(now);
        self.evict(current);
        let mut iter = self.ring.iter();
        let mut merged = iter.next()?.1.clone();
        for (_, sketch) in iter {
            // Same `k` everywhere by construction, so merge cannot fail.
            merged.merge(sketch).expect("uniform k across slices");
        }
        merged.quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn rate_window_counts_and_evicts() {
        let mut w = RateWindow::new(ms(10), 5);
        w.record(ms(0), 3);
        w.record(ms(4), 2);
        assert_eq!(w.count(ms(4)), 5);
        // 12ms: the slice containing t=0 aged out, t=4 still in.
        assert_eq!(w.count(ms(12)), 2);
        // 30ms: everything aged out.
        assert_eq!(w.count(ms(30)), 0);
    }

    #[test]
    fn rate_window_merges_same_slice_records() {
        let mut w = RateWindow::new(ms(10), 2);
        for _ in 0..100 {
            w.record(ms(1), 1);
        }
        assert_eq!(w.count(ms(1)), 100);
    }

    #[test]
    fn rolling_quantile_recovers_after_bad_interval() {
        let mut rq = RollingQuantile::new(ms(100), 10, 64);
        // Healthy traffic: 5ms latencies.
        for t in 0..50u64 {
            rq.record(ms(t * 2), 5_000.0);
        }
        let healthy = rq.quantile(ms(100), 0.99).unwrap();
        assert!((healthy - 5_000.0).abs() < 1.0);
        // Fault: 150ms latencies for a while.
        for t in 50..100u64 {
            rq.record(ms(t * 2), 150_000.0);
        }
        assert!(rq.quantile(ms(200), 0.99).unwrap() > 100_000.0);
        // Fault clears; once the window slides past it, p99 recovers.
        for t in 100..200u64 {
            rq.record(ms(t * 2), 5_000.0);
        }
        let recovered = rq.quantile(ms(400), 0.99).unwrap();
        assert!((recovered - 5_000.0).abs() < 1.0, "p99 was {recovered}");
    }

    #[test]
    fn rolling_quantile_empty_window_is_none() {
        let mut rq = RollingQuantile::new(Duration::from_millis(10), 2, 64);
        assert_eq!(rq.quantile(Duration::ZERO, 0.5), None);
        rq.record(Duration::ZERO, 1.0);
        assert!(rq.quantile(Duration::ZERO, 0.5).is_some());
        assert_eq!(rq.count(Duration::ZERO), 1);
        // Far in the future the sample has aged out.
        assert_eq!(rq.quantile(Duration::from_secs(1), 0.5), None);
    }
}
