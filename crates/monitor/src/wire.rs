//! Framed binary encoding of telemetry events for the Pulsar transport.
//!
//! The workspace's serde shim derives are inert (see `shims/README.md`),
//! so the wire format is hand-rolled: a two-byte header (`b'T'` magic +
//! record tag) followed by little-endian fixed-width integers and
//! `u16`-length-prefixed UTF-8 strings. Decoders are total — malformed
//! frames decode to `None` and are counted by the consumer, never panicked
//! on; the telemetry plane must survive garbage on its own topics.

use taureau_core::trace::SpanRecord;

/// Frame magic: first byte of every telemetry record.
const MAGIC: u8 = b'T';
/// Record tag for span frames.
const TAG_SPAN: u8 = b'S';
/// Record tag for metric frames.
const TAG_METRIC: u8 = b'M';

/// A decoded span event, the monitor-side view of a
/// [`SpanRecord`]. Owned strings throughout (`SpanRecord::system` is a
/// `&'static str` on the producer side, which cannot survive a wire hop).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Trace the span belongs to.
    pub trace_id: u64,
    /// The span's own id.
    pub span_id: u64,
    /// Causal parent span id, `None` for trace roots.
    pub parent: Option<u64>,
    /// Owning subsystem, e.g. `taureau-faas`.
    pub system: String,
    /// Operation name, e.g. `faas.invoke`.
    pub name: String,
    /// Span open timestamp, microseconds of clock time.
    pub start_us: u64,
    /// Span close timestamp, microseconds of clock time.
    pub end_us: u64,
    /// Key/value attributes.
    pub attrs: Vec<(String, String)>,
}

impl SpanEvent {
    /// Build from a producer-side record.
    pub fn from_record(r: &SpanRecord) -> Self {
        Self {
            trace_id: r.trace_id.0,
            span_id: r.span_id.0,
            parent: r.parent.map(|p| p.0),
            system: r.system.to_string(),
            name: r.name.clone(),
            start_us: r.start.as_micros() as u64,
            end_us: r.end.as_micros() as u64,
            attrs: r
                .attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    /// Span duration in microseconds (saturating).
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Value of an attribute, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u16(&mut self) -> Option<u16> {
        let bytes = self.buf.get(self.pos..self.pos + 2)?;
        self.pos += 2;
        Some(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes: [u8; 8] = self.buf.get(self.pos..self.pos + 8)?.try_into().ok()?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        let bytes = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// Encode a span event as one telemetry frame.
pub fn encode_span(ev: &SpanEvent) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + ev.name.len() + ev.system.len());
    out.push(MAGIC);
    out.push(TAG_SPAN);
    put_u64(&mut out, ev.trace_id);
    put_u64(&mut out, ev.span_id);
    match ev.parent {
        Some(p) => {
            out.push(1);
            put_u64(&mut out, p);
        }
        None => out.push(0),
    }
    put_u64(&mut out, ev.start_us);
    put_u64(&mut out, ev.end_us);
    put_str(&mut out, &ev.system);
    put_str(&mut out, &ev.name);
    let n_attrs = ev.attrs.len().min(u16::MAX as usize);
    out.extend_from_slice(&(n_attrs as u16).to_le_bytes());
    for (k, v) in ev.attrs.iter().take(n_attrs) {
        put_str(&mut out, k);
        put_str(&mut out, v);
    }
    out
}

/// Decode a span frame; `None` on any malformed input.
pub fn decode_span(bytes: &[u8]) -> Option<SpanEvent> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.u8()? != MAGIC || r.u8()? != TAG_SPAN {
        return None;
    }
    let trace_id = r.u64()?;
    let span_id = r.u64()?;
    let parent = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        _ => return None,
    };
    let start_us = r.u64()?;
    let end_us = r.u64()?;
    let system = r.str()?;
    let name = r.str()?;
    let n_attrs = r.u16()? as usize;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        let k = r.str()?;
        let v = r.str()?;
        attrs.push((k, v));
    }
    Some(SpanEvent {
        trace_id,
        span_id,
        parent,
        system,
        name,
        start_us,
        end_us,
        attrs,
    })
}

/// Encode a metric delta as one telemetry frame.
pub fn encode_metric(name: &str, delta: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + name.len());
    out.push(MAGIC);
    out.push(TAG_METRIC);
    put_u64(&mut out, delta);
    put_str(&mut out, name);
    out
}

/// Decode a metric frame; `None` on any malformed input.
pub fn decode_metric(bytes: &[u8]) -> Option<(String, u64)> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.u8()? != MAGIC || r.u8()? != TAG_METRIC {
        return None;
    }
    let delta = r.u64()?;
    let name = r.str()?;
    Some((name, delta))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> SpanEvent {
        SpanEvent {
            trace_id: 0xdead_beef,
            span_id: 42,
            parent: Some(41),
            system: "taureau-faas".to_string(),
            name: "faas.invoke".to_string(),
            start_us: 1_000,
            end_us: 3_500,
            attrs: vec![
                ("function".to_string(), "thumbnail".to_string()),
                ("outcome".to_string(), "ok".to_string()),
            ],
        }
    }

    #[test]
    fn span_roundtrip() {
        let ev = sample_event();
        let decoded = decode_span(&encode_span(&ev)).unwrap();
        assert_eq!(decoded, ev);
        assert_eq!(decoded.duration_us(), 2_500);
        assert_eq!(decoded.attr("outcome"), Some("ok"));
        assert_eq!(decoded.attr("missing"), None);
    }

    #[test]
    fn rootless_span_roundtrip() {
        let mut ev = sample_event();
        ev.parent = None;
        ev.attrs.clear();
        assert_eq!(decode_span(&encode_span(&ev)).unwrap(), ev);
    }

    #[test]
    fn metric_roundtrip() {
        let frame = encode_metric("faas.cold_starts", 7);
        assert_eq!(
            decode_metric(&frame),
            Some(("faas.cold_starts".to_string(), 7))
        );
    }

    #[test]
    fn malformed_frames_decode_to_none() {
        assert_eq!(decode_span(&[]), None);
        assert_eq!(decode_metric(&[]), None);
        assert_eq!(decode_span(b"garbage frame"), None);
        // Wrong tag for the decoder in use.
        let ev = sample_event();
        assert_eq!(decode_metric(&encode_span(&ev)), None);
        assert_eq!(decode_span(&encode_metric("x", 1)), None);
        // Truncated at every prefix length still returns None, not panic.
        let frame = encode_span(&ev);
        for cut in 0..frame.len() {
            assert_eq!(decode_span(&frame[..cut]), None);
        }
    }

    #[test]
    fn from_record_converts_static_fields() {
        use std::sync::Arc;
        use taureau_core::clock::VirtualClock;
        use taureau_core::trace::Tracer;

        let clock = Arc::new(VirtualClock::new());
        let tracer = Tracer::new(clock.clone());
        {
            let mut g = tracer.span("taureau-test", "op");
            g.attr("k", "v");
            clock.advance(std::time::Duration::from_micros(9));
        }
        let record = &tracer.spans()[0];
        let ev = SpanEvent::from_record(record);
        assert_eq!(ev.system, "taureau-test");
        assert_eq!(ev.name, "op");
        assert_eq!(ev.duration_us(), 9);
        assert_eq!(ev.attr("k"), Some("v"));
    }
}
