//! Declarative SLO policies and the alert events they produce.
//!
//! Policies are written in a one-line syntax (also accepted by
//! [`SloPolicy::parse`]):
//!
//! ```text
//! p99 faas.invoke < 60ms            latency quantile threshold
//! error_rate faas.invoke < 5%       error ratio over the fast window
//! burn_rate faas.invoke budget 1% factor 14
//! ```
//!
//! A burn-rate policy implements the multi-window error-budget pattern:
//! it fires when the error rate exceeds `factor ×` the budget over *both*
//! a fast and a slow window (fast for responsiveness, slow to suppress
//! blips), and resolves when the fast window recovers.

use std::fmt;
use std::time::Duration;

/// One declarative service-level objective over a traced operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SloPolicy {
    /// `p<q> <op> < <duration>`: the windowed latency quantile of `op`
    /// must stay below `max`.
    LatencyQuantile {
        /// Operation (span name), e.g. `faas.invoke`.
        op: String,
        /// Quantile in (0, 1], e.g. 0.99.
        q: f64,
        /// Latency threshold.
        max: Duration,
    },
    /// `error_rate <op> < <pct>%`: the fraction of `op` events with
    /// `outcome=error` over the fast window must stay below `max_ratio`.
    ErrorRate {
        /// Operation (span name).
        op: String,
        /// Maximum error fraction in [0, 1].
        max_ratio: f64,
    },
    /// `burn_rate <op> budget <pct>% factor <n>`: error-budget burn rate
    /// (error rate ÷ budget) must stay below `factor` on both the fast
    /// and the slow window.
    BurnRate {
        /// Operation (span name).
        op: String,
        /// Error budget as a fraction, e.g. 0.01 for a 99% SLO.
        budget: f64,
        /// Burn-rate multiple that pages, e.g. 14.
        factor: f64,
    },
}

impl SloPolicy {
    /// The operation this policy watches.
    pub fn op(&self) -> &str {
        match self {
            Self::LatencyQuantile { op, .. }
            | Self::ErrorRate { op, .. }
            | Self::BurnRate { op, .. } => op,
        }
    }

    /// Stable human-readable identity, used as the alert id.
    pub fn name(&self) -> String {
        match self {
            Self::LatencyQuantile { op, q, max } => {
                format!("p{}-{}-lt-{}us", fmt_q(*q), op, max.as_micros())
            }
            Self::ErrorRate { op, max_ratio } => {
                format!("error-rate-{}-lt-{:.4}", op, max_ratio)
            }
            Self::BurnRate { op, budget, factor } => {
                format!("burn-rate-{}-budget-{:.4}-x{}", op, budget, factor)
            }
        }
    }

    /// Parse the one-line policy syntax (see module docs). Whitespace
    /// separated; durations accept `us`, `ms` and `s` suffixes.
    pub fn parse(s: &str) -> Result<Self, SloParseError> {
        let tokens: Vec<&str> = s.split_whitespace().collect();
        let err = || SloParseError {
            input: s.to_string(),
        };
        match tokens.as_slice() {
            [q, op, "<", dur] if q.starts_with('p') => {
                let pct: f64 = q[1..].parse().map_err(|_| err())?;
                if !(0.0..=100.0).contains(&pct) || pct == 0.0 {
                    return Err(err());
                }
                Ok(Self::LatencyQuantile {
                    op: op.to_string(),
                    q: pct / 100.0,
                    max: parse_duration(dur).ok_or_else(err)?,
                })
            }
            ["error_rate", op, "<", pct] => Ok(Self::ErrorRate {
                op: op.to_string(),
                max_ratio: parse_percent(pct).ok_or_else(err)?,
            }),
            ["burn_rate", op, "budget", pct, "factor", factor] => Ok(Self::BurnRate {
                op: op.to_string(),
                budget: parse_percent(pct).ok_or_else(err)?,
                factor: factor.parse().map_err(|_| err())?,
            }),
            _ => Err(err()),
        }
    }
}

impl fmt::Display for SloPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LatencyQuantile { op, q, max } => {
                write!(f, "p{} {} < {:?}", fmt_q(*q), op, max)
            }
            Self::ErrorRate { op, max_ratio } => {
                write!(f, "error_rate {} < {}%", op, max_ratio * 100.0)
            }
            Self::BurnRate { op, budget, factor } => {
                write!(
                    f,
                    "burn_rate {} budget {}% factor {}",
                    op,
                    budget * 100.0,
                    factor
                )
            }
        }
    }
}

/// Render a quantile fraction the way it appears in policy syntax
/// (0.99 → "99", 0.999 → "99.9").
fn fmt_q(q: f64) -> String {
    let pct = q * 100.0;
    if (pct - pct.round()).abs() < 1e-9 {
        format!("{}", pct.round() as u64)
    } else {
        format!("{pct}")
    }
}

fn parse_duration(s: &str) -> Option<Duration> {
    let (num, unit) = s.split_at(s.find(|c: char| c.is_ascii_alphabetic())?);
    let value: f64 = num.parse().ok()?;
    if value < 0.0 {
        return None;
    }
    let micros = match unit {
        "us" => value,
        "ms" => value * 1_000.0,
        "s" => value * 1_000_000.0,
        _ => return None,
    };
    Some(Duration::from_micros(micros as u64))
}

fn parse_percent(s: &str) -> Option<f64> {
    let ratio: f64 = s.strip_suffix('%')?.parse().ok()?;
    if !(0.0..=100.0).contains(&ratio) {
        return None;
    }
    Some(ratio / 100.0)
}

/// A policy string that did not match the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloParseError {
    /// The offending input.
    pub input: String,
}

impl fmt::Display for SloParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unparseable SLO policy: {:?}", self.input)
    }
}

impl std::error::Error for SloParseError {}

/// Whether an alert is currently breaching or has recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// The policy transitioned into breach.
    Firing,
    /// The policy transitioned back to healthy.
    Resolved,
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Firing => "FIRING",
            Self::Resolved => "RESOLVED",
        })
    }
}

/// One transition on the alert stream. The evaluator only emits
/// *transitions* — a breach fires exactly once and resolves exactly once,
/// however many evaluation rounds it spans.
#[derive(Debug, Clone)]
pub struct AlertEvent {
    /// Clock time of the transition.
    pub at: Duration,
    /// [`SloPolicy::name`] of the policy that transitioned.
    pub policy: String,
    /// Direction of the transition.
    pub state: AlertState,
    /// Observed value at the transition (µs for latency policies, ratio
    /// for error-rate, burn multiple for burn-rate).
    pub value: f64,
    /// The policy threshold in the same unit as `value`.
    pub threshold: f64,
}

impl fmt::Display for AlertEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10.3}s] {:8} {} (value {:.1}, threshold {:.1})",
            self.at.as_secs_f64(),
            self.state.to_string(),
            self.policy,
            self.value,
            self.threshold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_latency_quantile() {
        let p = SloPolicy::parse("p99 faas.invoke < 250ms").unwrap();
        assert_eq!(
            p,
            SloPolicy::LatencyQuantile {
                op: "faas.invoke".to_string(),
                q: 0.99,
                max: Duration::from_millis(250),
            }
        );
        assert_eq!(p.op(), "faas.invoke");
        assert!(p.name().contains("p99-faas.invoke"));
        // Fractional quantiles and other units parse too.
        match SloPolicy::parse("p99.9 x < 1s").unwrap() {
            SloPolicy::LatencyQuantile { op, q, max } => {
                assert_eq!(op, "x");
                assert!((q - 0.999).abs() < 1e-12);
                assert_eq!(max, Duration::from_secs(1));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            SloPolicy::parse("p50 x < 500us").unwrap(),
            SloPolicy::LatencyQuantile {
                op: "x".to_string(),
                q: 0.5,
                max: Duration::from_micros(500),
            }
        );
    }

    #[test]
    fn parses_error_rate_and_burn_rate() {
        assert_eq!(
            SloPolicy::parse("error_rate faas.invoke < 5%").unwrap(),
            SloPolicy::ErrorRate {
                op: "faas.invoke".to_string(),
                max_ratio: 0.05,
            }
        );
        assert_eq!(
            SloPolicy::parse("burn_rate faas.invoke budget 1% factor 14").unwrap(),
            SloPolicy::BurnRate {
                op: "faas.invoke".to_string(),
                budget: 0.01,
                factor: 14.0,
            }
        );
    }

    #[test]
    fn rejects_malformed_policies() {
        for bad in [
            "",
            "p99 faas.invoke",
            "p0 x < 10ms",
            "p101 x < 10ms",
            "pxx x < 10ms",
            "p99 x < 10lightyears",
            "error_rate x < 5",
            "error_rate x < 200%",
            "burn_rate x budget 1% factor nope",
            "utterly wrong",
        ] {
            assert!(SloPolicy::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for src in [
            "p99 faas.invoke < 250ms",
            "error_rate faas.invoke < 5%",
            "burn_rate faas.invoke budget 1% factor 14",
        ] {
            let p = SloPolicy::parse(src).unwrap();
            let reparsed = SloPolicy::parse(&p.to_string());
            assert_eq!(reparsed.unwrap(), p, "display {:?} reparses", p.to_string());
        }
    }
}
