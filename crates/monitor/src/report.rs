//! Renderers for the monitor's folded state.
//!
//! [`HealthReport`] is a plain-data snapshot (taken by
//! [`Monitor::health_report`](crate::Monitor::health_report)) with two
//! renderings: a human-readable text block for terminals and dumps, and
//! Prometheus text exposition format for scrape endpoints.

use std::time::Duration;

use taureau_core::metrics::escape_label_value;

use crate::slo::{AlertEvent, AlertState};

/// Folded health of one traced operation.
#[derive(Debug, Clone)]
pub struct OpHealth {
    /// Operation (span name), e.g. `faas.invoke`.
    pub op: String,
    /// Originating node for remote (cluster-collected) operations; `None`
    /// for in-process measurements. Rendered as a `node` Prometheus label
    /// and an `@nN` suffix in text output.
    pub node: Option<u64>,
    /// All-time event count.
    pub count: u64,
    /// All-time p50 latency, microseconds.
    pub p50_us: f64,
    /// All-time p90 latency, microseconds.
    pub p90_us: f64,
    /// All-time p99 latency, microseconds.
    pub p99_us: f64,
    /// All-time maximum latency, microseconds.
    pub max_us: f64,
    /// Error fraction over the fast window ending at the snapshot.
    pub error_rate: f64,
}

/// Point-in-time snapshot of everything the monitor knows.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Clock time of the snapshot.
    pub at: Duration,
    /// Per-operation health, sorted by operation name.
    pub ops: Vec<OpHealth>,
    /// Hot functions by estimated invocation count, heaviest first.
    pub top_functions: Vec<(String, u64)>,
    /// Folded counter metrics from the telemetry stream.
    pub counters: Vec<(String, u64)>,
    /// Policies currently in breach.
    pub active_alerts: Vec<String>,
    /// Full alert transition history.
    pub alerts: Vec<AlertEvent>,
    /// `(name, summary)` lines from attached metrics registries (see
    /// [`Histogram::summary`](taureau_core::metrics::Histogram::summary)).
    pub histogram_summaries: Vec<(String, String)>,
    /// Fraction of container starts that were cold over the fast window.
    pub cold_start_rate: f64,
    /// Telemetry frames that failed to decode, all-time.
    pub decode_errors: u64,
}

impl HealthReport {
    /// Render as a human-readable text block.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "health @ {:.3}s", self.at.as_secs_f64());
        let _ = writeln!(
            out,
            "status: {}",
            if self.active_alerts.is_empty() {
                "HEALTHY".to_string()
            } else {
                format!("{} ALERT(S) FIRING", self.active_alerts.len())
            }
        );
        for name in &self.active_alerts {
            let _ = writeln!(out, "  firing: {name}");
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<24} {:>9} {:>10} {:>10} {:>10} {:>10} {:>7}",
            "operation", "count", "p50(us)", "p90(us)", "p99(us)", "max(us)", "err%"
        );
        for op in &self.ops {
            let name = match op.node {
                Some(node) => format!("{}@n{node}", op.op),
                None => op.op.clone(),
            };
            let _ = writeln!(
                out,
                "{:<24} {:>9} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>6.2}%",
                name,
                op.count,
                op.p50_us,
                op.p90_us,
                op.p99_us,
                op.max_us,
                op.error_rate * 100.0
            );
        }
        if !self.top_functions.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "hot functions:");
            for (function, count) in &self.top_functions {
                let _ = writeln!(out, "  {function:<20} ~{count} invocations");
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "cold start rate (fast window): {:.1}%",
            self.cold_start_rate * 100.0
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "telemetry counters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<28} {value}");
            }
        }
        if !self.histogram_summaries.is_empty() {
            let _ = writeln!(out, "subsystem histograms:");
            for (name, summary) in &self.histogram_summaries {
                let _ = writeln!(out, "  {name:<28} {summary}");
            }
        }
        if !self.alerts.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "alert timeline:");
            for alert in &self.alerts {
                let _ = writeln!(out, "  {alert}");
            }
        }
        if self.decode_errors > 0 {
            let _ = writeln!(out, "decode errors: {}", self.decode_errors);
        }
        out
    }

    /// Render in Prometheus text exposition format, all metric names
    /// prefixed `taureau_monitor_`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        // `op="..."` or `op="...",node="N"` — op escaped, node numeric.
        let op_labels = |op: &OpHealth| {
            let name = escape_label_value(&op.op);
            match op.node {
                Some(node) => format!("op=\"{name}\",node=\"{node}\""),
                None => format!("op=\"{name}\""),
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE taureau_monitor_op_latency_us summary");
        for op in &self.ops {
            let labels = op_labels(op);
            for (q, v) in [(0.5, op.p50_us), (0.9, op.p90_us), (0.99, op.p99_us)] {
                let _ = writeln!(
                    out,
                    "taureau_monitor_op_latency_us{{{labels},quantile=\"{q}\"}} {v:.0}",
                );
            }
            let _ = writeln!(
                out,
                "taureau_monitor_op_latency_us_count{{{labels}}} {}",
                op.count
            );
        }
        let _ = writeln!(out, "# TYPE taureau_monitor_op_error_rate gauge");
        for op in &self.ops {
            let _ = writeln!(
                out,
                "taureau_monitor_op_error_rate{{{}}} {:.6}",
                op_labels(op),
                op.error_rate
            );
        }
        let _ = writeln!(out, "# TYPE taureau_monitor_alert_active gauge");
        for name in &self.active_alerts {
            let _ = writeln!(
                out,
                "taureau_monitor_alert_active{{policy=\"{}\"}} 1",
                escape_label_value(name)
            );
        }
        let _ = writeln!(
            out,
            "# TYPE taureau_monitor_alert_transitions_total counter"
        );
        let fired = self
            .alerts
            .iter()
            .filter(|a| a.state == AlertState::Firing)
            .count();
        let _ = writeln!(
            out,
            "taureau_monitor_alert_transitions_total{{state=\"firing\"}} {fired}"
        );
        let _ = writeln!(
            out,
            "taureau_monitor_alert_transitions_total{{state=\"resolved\"}} {}",
            self.alerts.len() - fired
        );
        let _ = writeln!(out, "# TYPE taureau_monitor_hot_function gauge");
        for (function, count) in &self.top_functions {
            let _ = writeln!(
                out,
                "taureau_monitor_hot_function{{function=\"{}\"}} {count}",
                escape_label_value(function)
            );
        }
        let _ = writeln!(out, "# TYPE taureau_monitor_cold_start_rate gauge");
        let _ = writeln!(
            out,
            "taureau_monitor_cold_start_rate {:.6}",
            self.cold_start_rate
        );
        let _ = writeln!(out, "# TYPE taureau_monitor_telemetry_counter gauge");
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "taureau_monitor_telemetry_counter{{name=\"{}\"}} {value}",
                escape_label_value(name)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> HealthReport {
        HealthReport {
            at: Duration::from_secs(12),
            ops: vec![
                OpHealth {
                    op: "faas.invoke".to_string(),
                    node: None,
                    count: 1000,
                    p50_us: 2_100.0,
                    p90_us: 4_000.0,
                    p99_us: 9_500.0,
                    max_us: 52_000.0,
                    error_rate: 0.015,
                },
                OpHealth {
                    op: "cluster.publish".to_string(),
                    node: Some(3),
                    count: 120,
                    p50_us: 900.0,
                    p90_us: 1_800.0,
                    p99_us: 6_200.0,
                    max_us: 9_000.0,
                    error_rate: 0.0,
                },
            ],
            top_functions: vec![("thumbnail".to_string(), 640)],
            counters: vec![("faas.invocations_ok".to_string(), 985)],
            active_alerts: vec!["p99-faas.invoke-lt-60000us".to_string()],
            alerts: vec![AlertEvent {
                at: Duration::from_secs(8),
                policy: "p99-faas.invoke-lt-60000us".to_string(),
                state: AlertState::Firing,
                value: 150_000.0,
                threshold: 60_000.0,
            }],
            histogram_summaries: vec![(
                "faas_exec_duration_us".to_string(),
                "count=1000 p50=2000 p90=4000 p99=9000 max=50000".to_string(),
            )],
            cold_start_rate: 0.05,
            decode_errors: 0,
        }
    }

    #[test]
    fn text_rendering_covers_all_sections() {
        let text = sample_report().render_text();
        assert!(text.contains("1 ALERT(S) FIRING"));
        assert!(text.contains("faas.invoke"));
        assert!(text.contains("cluster.publish@n3"));
        assert!(text.contains("thumbnail"));
        assert!(text.contains("faas.invocations_ok"));
        assert!(text.contains("faas_exec_duration_us"));
        assert!(text.contains("count=1000 p50=2000"));
        assert!(text.contains("alert timeline:"));
        assert!(text.contains("FIRING"));
        assert!(text.contains("cold start rate"));
    }

    #[test]
    fn healthy_report_says_so() {
        let mut report = sample_report();
        report.active_alerts.clear();
        assert!(report.render_text().contains("status: HEALTHY"));
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let prom = sample_report().render_prometheus();
        assert!(prom
            .contains("taureau_monitor_op_latency_us{op=\"faas.invoke\",quantile=\"0.99\"} 9500"));
        assert!(prom.contains("taureau_monitor_op_latency_us_count{op=\"faas.invoke\"} 1000"));
        assert!(
            prom.contains("taureau_monitor_alert_active{policy=\"p99-faas.invoke-lt-60000us\"} 1")
        );
        assert!(prom.contains("taureau_monitor_alert_transitions_total{state=\"firing\"} 1"));
        assert!(prom.contains("taureau_monitor_hot_function{function=\"thumbnail\"} 640"));
        assert!(prom.contains("taureau_monitor_cold_start_rate 0.050000"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "line: {line}");
        }
    }

    #[test]
    fn prometheus_node_labels_and_escaping() {
        let mut report = sample_report();
        report.ops[0].op = "weird\"op\\n".to_string();
        let prom = report.render_prometheus();
        // Remote ops carry a node label; local ops don't.
        assert!(prom.contains(
            "taureau_monitor_op_latency_us{op=\"cluster.publish\",node=\"3\",quantile=\"0.5\"} 900"
        ));
        assert!(prom.contains(
            "taureau_monitor_op_latency_us_count{op=\"cluster.publish\",node=\"3\"} 120"
        ));
        assert!(prom
            .contains("taureau_monitor_op_error_rate{op=\"cluster.publish\",node=\"3\"} 0.000000"));
        // Quote and backslash in an op name are escaped, not emitted raw.
        assert!(prom.contains("op=\"weird\\\"op\\\\n\""));
        assert!(!prom.contains("op=\"weird\"op"));
    }
}
