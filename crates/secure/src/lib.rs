//! # taureau-secure
//!
//! Security primitives for the serverless cloud, per §6 of *Le Taureau*:
//! "FaaS platforms lead to increased network communications due to
//! external storage accesses, leaking more information to a network
//! adversary. … [this] incentivizes the exploration of security
//! primitives that hide network access patterns in the cloud, e.g., using
//! ORAMs".
//!
//! [`PathOram`] implements Stefanov et al.'s **Path ORAM** (the paper's
//! reference [169]) over a pluggable bucket store: every logical block
//! access reads and rewrites one uniformly random root-to-leaf path, so
//! the storage server (or a network observer between a serverless function
//! and its state store) learns nothing about *which* logical block was
//! touched or whether accesses repeat. The price is a bandwidth blow-up of
//! `Z·(log N + 1)` physical blocks per logical access — measured by the
//! access counters and the `oram` bench (experiment E17).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod oram;

pub use oram::{BucketStore, MemoryBucketStore, PathOram};
