//! Path ORAM (Stefanov et al., CCS'13).
//!
//! State: a complete binary tree of buckets (Z slots each) held by the
//! untrusted store, a client-side *position map* (block → random leaf) and
//! a small client-side *stash*. Invariant: block `b` lives somewhere on
//! the path from the root to `position[b]`, or in the stash.
//!
//! Every access — read or write alike — does exactly the same physical
//! work: read all buckets on one root-to-leaf path, then rewrite the same
//! path, greedily evicting stash blocks as deep as their (freshly
//! re-randomized) positions allow. An adversary observing bucket accesses
//! sees a sequence of uniformly random paths, independent of the logical
//! access pattern (tested below).

use std::collections::HashMap;

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use taureau_core::rng::det_rng;

/// Slots per bucket (Z = 4, the standard choice with negligible stash
/// overflow probability).
pub const BUCKET_SIZE: usize = 4;

/// The untrusted storage interface: an array of buckets, each holding up
/// to [`BUCKET_SIZE`] `(block_id, data)` pairs.
pub trait BucketStore {
    /// Read an entire bucket.
    fn read_bucket(&mut self, index: usize) -> Vec<(u32, Vec<u8>)>;
    /// Overwrite an entire bucket.
    fn write_bucket(&mut self, index: usize, contents: Vec<(u32, Vec<u8>)>);
    /// Number of buckets.
    fn len(&self) -> usize;
    /// Whether the store has no buckets.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory bucket store that records which buckets were touched — the
/// adversary's view, used by the pattern-hiding tests.
#[derive(Debug)]
pub struct MemoryBucketStore {
    buckets: Vec<Vec<(u32, Vec<u8>)>>,
    /// Total bucket reads + writes.
    pub accesses: u64,
    /// Leaf-level bucket indices touched, in order (the observable trace).
    pub leaf_trace: Vec<usize>,
    first_leaf: usize,
}

impl MemoryBucketStore {
    /// Store with `buckets` empty buckets, of which the last
    /// `(buckets + 1) / 2` are leaves.
    pub fn new(buckets: usize) -> Self {
        Self {
            buckets: vec![Vec::new(); buckets],
            accesses: 0,
            leaf_trace: Vec::new(),
            first_leaf: buckets / 2,
        }
    }
}

impl BucketStore for MemoryBucketStore {
    fn read_bucket(&mut self, index: usize) -> Vec<(u32, Vec<u8>)> {
        self.accesses += 1;
        if index >= self.first_leaf {
            self.leaf_trace.push(index - self.first_leaf);
        }
        self.buckets[index].clone()
    }

    fn write_bucket(&mut self, index: usize, contents: Vec<(u32, Vec<u8>)>) {
        debug_assert!(contents.len() <= BUCKET_SIZE);
        self.accesses += 1;
        self.buckets[index] = contents;
    }

    fn len(&self) -> usize {
        self.buckets.len()
    }
}

/// The Path ORAM client.
pub struct PathOram<S: BucketStore> {
    store: S,
    /// Tree height: levels are 0 (root) ..= height (leaves).
    height: u32,
    leaves: usize,
    /// block id -> assigned leaf.
    position: Vec<usize>,
    stash: HashMap<u32, Vec<u8>>,
    rng: ChaCha8Rng,
    /// Logical accesses served.
    pub logical_accesses: u64,
}

impl PathOram<MemoryBucketStore> {
    /// ORAM over an in-memory store sized for `capacity` logical blocks.
    pub fn new(capacity: usize, seed: u64) -> Self {
        let leaves = capacity.next_power_of_two().max(2);
        let buckets = 2 * leaves - 1;
        Self::with_store(capacity, MemoryBucketStore::new(buckets), seed)
    }
}

impl<S: BucketStore> PathOram<S> {
    /// ORAM over an existing store (must hold `2 * capacity.next_power_of_two() - 1`
    /// buckets).
    pub fn with_store(capacity: usize, store: S, seed: u64) -> Self {
        assert!(capacity >= 1);
        let leaves = capacity.next_power_of_two().max(2);
        assert_eq!(store.len(), 2 * leaves - 1, "store sized wrongly");
        let height = leaves.trailing_zeros();
        let mut rng = det_rng(seed);
        let position = (0..capacity).map(|_| rng.gen_range(0..leaves)).collect();
        Self {
            store,
            height,
            leaves,
            position,
            stash: HashMap::new(),
            rng,
            logical_accesses: 0,
        }
    }

    /// Logical capacity.
    pub fn capacity(&self) -> usize {
        self.position.len()
    }

    /// Current stash occupancy (should stay O(log N)).
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Tree height (path length is `height + 1` buckets).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The untrusted store (for inspecting the adversary's view).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Bucket index at `level` on the path to `leaf` (heap layout:
    /// root = 0, leaf nodes start at `leaves - 1`).
    fn node_at(&self, leaf: usize, level: u32) -> usize {
        let mut node = leaf + self.leaves - 1;
        for _ in level..self.height {
            node = (node - 1) / 2;
        }
        node
    }

    /// Read block `id`, optionally replacing its contents. Returns the
    /// previous contents (None if never written). Read and write perform
    /// identical physical work.
    pub fn access(&mut self, id: u32, new_data: Option<Vec<u8>>) -> Option<Vec<u8>> {
        assert!((id as usize) < self.position.len(), "block id out of range");
        self.logical_accesses += 1;
        let x = self.position[id as usize];
        // Remap before anything observable happens.
        self.position[id as usize] = self.rng.gen_range(0..self.leaves);

        // Read the whole path into the stash.
        for level in 0..=self.height {
            let bucket = self.store.read_bucket(self.node_at(x, level));
            for (bid, data) in bucket {
                self.stash.insert(bid, data);
            }
        }

        let old = match new_data {
            Some(data) => self.stash.insert(id, data),
            None => self.stash.get(&id).cloned(),
        };

        // Write the path back, deepest level first, evicting every stash
        // block that may legally live there.
        for level in (0..=self.height).rev() {
            let bucket_idx = self.node_at(x, level);
            let mut bucket = Vec::with_capacity(BUCKET_SIZE);
            let eligible: Vec<u32> = self
                .stash
                .keys()
                .copied()
                .filter(|&bid| self.node_at(self.position[bid as usize], level) == bucket_idx)
                .take(BUCKET_SIZE)
                .collect();
            for bid in eligible {
                let data = self.stash.remove(&bid).expect("present");
                bucket.push((bid, data));
            }
            self.store.write_bucket(bucket_idx, bucket);
        }
        old
    }

    /// Convenience read.
    pub fn read(&mut self, id: u32) -> Option<Vec<u8>> {
        self.access(id, None)
    }

    /// Convenience write; returns the previous contents.
    pub fn write(&mut self, id: u32, data: Vec<u8>) -> Option<Vec<u8>> {
        self.access(id, Some(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes() {
        let mut oram = PathOram::new(64, 1);
        assert_eq!(oram.read(3), None);
        assert_eq!(oram.write(3, b"hello".to_vec()), None);
        assert_eq!(oram.read(3), Some(b"hello".to_vec()));
        assert_eq!(oram.write(3, b"world".to_vec()), Some(b"hello".to_vec()));
        assert_eq!(oram.read(3), Some(b"world".to_vec()));
    }

    #[test]
    fn matches_model_under_random_workload() {
        let mut oram = PathOram::new(256, 2);
        let mut model: HashMap<u32, Vec<u8>> = HashMap::new();
        let mut rng = det_rng(3);
        for _ in 0..5000 {
            let id = rng.gen_range(0..256u32);
            if rng.gen::<bool>() {
                let val = vec![rng.gen::<u8>(); 8];
                let old = oram.write(id, val.clone());
                assert_eq!(old, model.insert(id, val));
            } else {
                assert_eq!(oram.read(id), model.get(&id).cloned());
            }
        }
    }

    #[test]
    fn stash_stays_small() {
        let mut oram = PathOram::new(1024, 4);
        let mut rng = det_rng(5);
        // Fill completely, then hammer random accesses.
        for id in 0..1024u32 {
            oram.write(id, vec![0u8; 16]);
        }
        let mut max_stash = 0;
        for _ in 0..20_000 {
            let id = rng.gen_range(0..1024u32);
            oram.read(id);
            max_stash = max_stash.max(oram.stash_len());
        }
        // Theory: stash is O(log N) w.h.p. for Z=4; allow generous slack.
        assert!(max_stash < 120, "stash grew to {max_stash}");
    }

    #[test]
    fn bandwidth_is_z_log_n() {
        let mut oram = PathOram::new(256, 6);
        let before = oram.store().accesses;
        oram.read(0);
        let per_access = oram.store().accesses - before;
        // height = log2(256) = 8 → 9 buckets read + 9 written.
        assert_eq!(per_access, 2 * (oram.height() as u64 + 1));
    }

    #[test]
    fn access_pattern_is_indistinguishable() {
        // Adversary's view: the sequence of leaf paths. Compare the trace
        // of a degenerate workload (same block forever) against a uniform
        // random workload: their leaf histograms must both be ~uniform.
        let n_ops = 8000;
        let mut same = PathOram::new(64, 7);
        same.write(5, vec![1]);
        for _ in 0..n_ops {
            same.read(5);
        }
        let mut random = PathOram::new(64, 8);
        let mut rng = det_rng(9);
        for _ in 0..n_ops {
            random.read(rng.gen_range(0..64u32));
        }
        let histogram = |trace: &[usize], leaves: usize| -> Vec<f64> {
            let mut h = vec![0f64; leaves];
            for &l in trace {
                h[l] += 1.0;
            }
            let total: f64 = h.iter().sum();
            h.iter().map(|c| c / total).collect()
        };
        let h_same = histogram(&same.store().leaf_trace, 64);
        let h_rand = histogram(&random.store().leaf_trace, 64);
        // Total-variation distance between the two observable
        // distributions must be small: the adversary cannot tell the
        // workloads apart.
        let tv: f64 = h_same
            .iter()
            .zip(&h_rand)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.08, "observable distributions differ: TV = {tv}");
        // And each is individually close to uniform.
        for (i, &p) in h_same.iter().enumerate() {
            assert!(
                (p - 1.0 / 64.0).abs() < 0.012,
                "leaf {i} visited with probability {p}"
            );
        }
    }

    #[test]
    fn reads_and_writes_are_physically_identical() {
        let mut a = PathOram::new(128, 11);
        let mut b = PathOram::new(128, 11);
        // Same seed → same position maps and path choices; one only
        // reads, the other only writes. The bucket access *count* and leaf
        // traces must be identical.
        for i in 0..500u32 {
            a.read(i % 128);
            b.write(i % 128, vec![i as u8]);
        }
        assert_eq!(a.store().accesses, b.store().accesses);
        assert_eq!(a.store().leaf_trace, b.store().leaf_trace);
    }

    #[test]
    fn capacity_one_edge_case() {
        let mut oram = PathOram::new(1, 13);
        oram.write(0, b"solo".to_vec());
        assert_eq!(oram.read(0), Some(b"solo".to_vec()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let mut oram = PathOram::new(8, 14);
        oram.read(8);
    }
}
