//! # taureau-dag
//!
//! A parallel, fault-tolerant DAG workflow engine over the serverless
//! stack — the composition layer Le Taureau's "Look Forward" (§4–§6)
//! argues platforms must grow: functions chained over messaging with
//! ephemeral shared state, not single isolated invocations.
//!
//! The existing [`taureau_orchestration`] crate runs *linear* state
//! machines; real analytics workloads are DAG-shaped (Carver et al., *In
//! Search of a Fast and Efficient Serverless DAG Engine*), and surviving
//! them needs retries plus checkpointed state (Zhang et al.,
//! *Fault-tolerant and Transactional Stateful Serverless Workflows*).
//! This crate supplies both:
//!
//! - [`graph`]: DAG builder and validator — cycle detection, topological
//!   [frontiers](graph::Dag::frontiers), [critical
//!   path](graph::Dag::critical_path), and a
//!   [chain-DAG view](graph::Dag::from_state_machine) of linear state
//!   machines so both workflow models share one executor.
//! - [`policy`]: retry backoff, size-based intermediate-data passing
//!   (Wukong's locality argument: small values inline, large values
//!   through Jiffy), and the executor configuration.
//! - [`executor`]: frontier-parallel scheduling against the
//!   `taureau-faas` container pool, per-node retry with exponential
//!   backoff, output spill to Jiffy, node-completion events on Pulsar,
//!   and workflow-level checkpointing so a crashed job resumes from its
//!   last completed frontier.
//!
//! Every run emits a causally-linked span tree (`dag.run` → `dag.node` →
//! `dag.retry`/`dag.checkpoint` plus the subsystems' own spans) through
//! [`taureau_core::trace`], across worker threads.
//!
//! ```
//! use taureau_core::clock::VirtualClock;
//! use taureau_dag::{DagBuilder, DagExecutor};
//! use taureau_faas::{FaasPlatform, FunctionSpec, PlatformConfig};
//!
//! let platform = FaasPlatform::new(PlatformConfig::deterministic(), VirtualClock::shared());
//! platform
//!     .register(FunctionSpec::new("echo", "t", |ctx| Ok(ctx.payload.to_vec())))
//!     .unwrap();
//! let dag = DagBuilder::new()
//!     .node("fan", "echo", &[])
//!     .node("left", "echo", &["fan"])
//!     .node("right", "echo", &["fan"])
//!     .node("join", "echo", &["left", "right"])
//!     .build()
//!     .unwrap();
//! let report = DagExecutor::new(&platform).run(&dag, "demo", b"in").unwrap();
//! assert_eq!(report.frontiers, 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod executor;
pub mod graph;
pub mod policy;

pub use error::DagError;
pub use executor::{DagExecutor, NodeOutcome, WorkflowReport};
pub use graph::{Dag, DagBuilder, DagNode};
pub use policy::{DataPassing, ExecutorConfig, RetryPolicy};
