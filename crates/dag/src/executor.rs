//! The DAG executor: frontier-parallel scheduling of FaaS invocations with
//! retry, size-based data passing through Jiffy, Pulsar completion events,
//! and checkpointed resume.
//!
//! Execution proceeds frontier by frontier (see
//! [`Dag::frontiers`](crate::graph::Dag::frontiers)): every node in a
//! frontier is independent, so the executor fans them out across up to
//! [`ExecutorConfig::max_parallelism`] worker threads sharing the
//! platform's container pool. A node's input is assembled from its
//! dependencies' outputs — the workflow input for roots, the single
//! parent's output verbatim, or a
//! [`frame`](taureau_orchestration::frame)-packed list for fan-in nodes
//! (parents in declared dependency order).
//!
//! Fault tolerance is layered per the Zhang et al. design the issue cites:
//! *within* a run, transient invocation failures retry with exponential
//! backoff ([`RetryPolicy`]); *across* runs, every completed node is
//! checkpointed to a Jiffy KV under `/dag-<job>/checkpoint`, so re-running
//! the same job after a crash skips every node already done and resumes
//! from the last completed frontier.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use taureau_core::cost::Dollars;
use taureau_core::metrics::MetricsRegistry;
use taureau_core::trace::{SpanContext, SpanGuard};
use taureau_faas::{FaasError, FaasPlatform};
use taureau_jiffy::Jiffy;
use taureau_orchestration::frame;
use taureau_pulsar::Producer;

use crate::error::DagError;
use crate::graph::Dag;
use crate::policy::{DataPassing, ExecutorConfig, RetryPolicy};

/// Subsystem label stamped on every span this crate emits.
const TRACE_SYSTEM: &str = "taureau-dag";

/// Checkpoint value tag: payload bytes follow inline.
const CKPT_INLINE: u8 = b'I';
/// Checkpoint value tag: a Jiffy file path (UTF-8) follows.
const CKPT_FILE: u8 = b'F';
/// Ctx-carrying variants: a 16-byte [`SpanContext`] (the `dag.node` span
/// that produced the value) sits between the tag and the classic body, so
/// a later run restoring the checkpoint can link back into the original
/// trace. Untraced runs keep emitting the classic tags bit-identically.
const CKPT_INLINE_CTX: u8 = b'i';
/// Ctx-carrying spilled-file variant; see [`CKPT_INLINE_CTX`].
const CKPT_FILE_CTX: u8 = b'f';

/// What a worker thread hands back for one node.
type NodeResult = Result<(Stored, NodeOutcome), DagError>;

/// Where a completed node's output lives.
#[derive(Debug, Clone)]
enum Stored {
    /// In executor memory (refcounted; cloning a fetch is a pointer bump).
    Inline(Bytes),
    /// Spilled to a Jiffy file.
    Spilled {
        /// Jiffy file path holding the bytes.
        path: String,
        /// Output size in bytes.
        len: u64,
    },
}

impl Stored {
    fn len(&self) -> usize {
        match self {
            Stored::Inline(b) => b.len(),
            Stored::Spilled { len, .. } => *len as usize,
        }
    }
}

/// Outcome of one node within a [`WorkflowReport`].
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Node name.
    pub name: String,
    /// Function the node invoked.
    pub function: String,
    /// Invocation attempts this run (0 when restored from a checkpoint).
    pub attempts: u32,
    /// Execution time of the successful attempt.
    pub exec: Duration,
    /// Dollars billed for the successful attempt.
    pub cost: Dollars,
    /// Output size in bytes.
    pub output_bytes: usize,
    /// Whether the output was spilled to Jiffy.
    pub spilled: bool,
    /// Whether the node was skipped because a checkpoint already had it.
    pub from_checkpoint: bool,
}

/// What a workflow run produced and how it ran.
#[derive(Debug, Clone)]
pub struct WorkflowReport {
    /// Workflow output: the sole sink's output verbatim, or a
    /// [`frame`]-packed list of every sink's output (in node order) when
    /// the DAG has several sinks.
    ///
    /// Refcounted: for a single-sink DAG with an inline output this is the
    /// very allocation the sink's handler returned — no copy on the way out.
    pub output: Bytes,
    /// Per-node outcomes, in node-declaration order.
    pub nodes: Vec<NodeOutcome>,
    /// Clock time from run start to workflow output.
    pub makespan: Duration,
    /// Number of topological frontiers executed.
    pub frontiers: usize,
    /// Invocation attempts across all nodes this run (retries included,
    /// checkpointed nodes excluded).
    pub invocations: u32,
    /// Failed attempts that were retried.
    pub retries: u32,
    /// Nodes restored from the checkpoint instead of re-invoked.
    pub resumed: usize,
    /// Bytes of intermediate data spilled to Jiffy this run.
    pub spilled_bytes: u64,
}

impl WorkflowReport {
    /// Sum of billed dollars across executed nodes.
    pub fn total_cost(&self) -> Dollars {
        self.nodes.iter().map(|n| n.cost).sum()
    }

    /// Sum of execution time across executed nodes — what a purely
    /// sequential run would pay on the clock (compute only).
    pub fn total_exec(&self) -> Duration {
        self.nodes.iter().map(|n| n.exec).sum()
    }
}

/// Executes [`Dag`]s against a FaaS platform. Construction is cheap; one
/// executor can run many workflows.
#[derive(Clone)]
pub struct DagExecutor {
    platform: FaasPlatform,
    state: Option<Jiffy>,
    events: Option<Producer>,
    cfg: ExecutorConfig,
    metrics: MetricsRegistry,
}

impl DagExecutor {
    /// An executor over `platform` with default [`ExecutorConfig`], no
    /// state store, and no event topic.
    pub fn new(platform: &FaasPlatform) -> Self {
        Self {
            platform: platform.clone(),
            state: None,
            events: None,
            cfg: ExecutorConfig::default(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Attach a Jiffy deployment for intermediate-data spill and
    /// checkpointing. Without one, all data passes inline and checkpoints
    /// are disabled regardless of [`ExecutorConfig::checkpoint`].
    pub fn with_state(mut self, jiffy: &Jiffy) -> Self {
        self.state = Some(jiffy.clone());
        self
    }

    /// Publish a completion event per node to this Pulsar producer. Events
    /// are keyed by node name with payload `<job>:<node>:<attempts>`, so
    /// per-node ordering is preserved across runs.
    pub fn with_events(mut self, producer: Producer) -> Self {
        self.events = Some(producer);
        self
    }

    /// Override the execution policy.
    pub fn with_config(mut self, cfg: ExecutorConfig) -> Self {
        assert!(cfg.max_parallelism >= 1);
        assert!(cfg.retry.max_attempts >= 1);
        self.cfg = cfg;
        self
    }

    /// Executor metrics: `nodes_completed`, `retries`, `checkpoint_hits`,
    /// `spills`, `event_errors`.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The executor's policy.
    pub fn config(&self) -> &ExecutorConfig {
        &self.cfg
    }

    /// Run `dag` as job `job` with `input` fed to every root node.
    ///
    /// `job` identifies the workflow instance for checkpointing: re-running
    /// a failed job with the same id resumes from its last completed
    /// frontier; a successful run clears the job's namespace, so the next
    /// run with that id starts fresh.
    pub fn run(&self, dag: &Dag, job: &str, input: &[u8]) -> Result<WorkflowReport, DagError> {
        // One copy at the workflow boundary; every root thereafter shares it.
        let input = Bytes::copy_from_slice(input);
        let tracer = self.platform.tracer();
        let clock = self.platform.clock().clone();
        let started = clock.now();
        let mut root_span = tracer.span(TRACE_SYSTEM, "dag.run");
        root_span.attr("job", job);
        root_span.attr("nodes", dag.len());
        let root_ctx = root_span.context();

        let n = dag.len();
        let mut outputs: Vec<Option<Stored>> = vec![None; n];
        let mut outcomes: Vec<Option<NodeOutcome>> = vec![None; n];

        // Open (or create) the checkpoint and restore completed nodes.
        let checkpointing = self.cfg.checkpoint && self.state.is_some();
        let ckpt = if checkpointing {
            let store = self.state.as_ref().expect("state store attached");
            let path = format!("/dag-{job}/checkpoint");
            Some(
                store
                    .open_kv(path.as_str())
                    .or_else(|_| store.create_kv(path.as_str(), 2))?,
            )
        } else {
            None
        };
        let mut resumed = 0usize;
        if let Some(ckpt) = &ckpt {
            for i in 0..n {
                let node = dag.node(i);
                let Ok(Some(value)) = ckpt.get(node.name.as_bytes()) else {
                    continue;
                };
                let Some((stored, origin)) = decode_checkpoint(&value) else {
                    continue;
                };
                self.metrics.counter("checkpoint_hits").inc();
                // Restoring under a tracer links this run back into the
                // trace of the run that produced the checkpoint: the
                // `dag.restore` span is a child of the original `dag.node`
                // span recovered from the frame header.
                if origin.is_some() {
                    let mut restore = tracer.span_child_of(TRACE_SYSTEM, "dag.restore", origin);
                    restore.attr("node", &node.name);
                    restore.attr("job", job);
                    restore.attr("bytes", stored.len());
                }
                outcomes[i] = Some(NodeOutcome {
                    name: node.name.clone(),
                    function: node.function.clone(),
                    attempts: 0,
                    exec: Duration::ZERO,
                    cost: 0.0,
                    output_bytes: stored.len(),
                    spilled: matches!(stored, Stored::Spilled { .. }),
                    from_checkpoint: true,
                });
                outputs[i] = Some(stored);
                resumed += 1;
            }
        }
        root_span.attr("resumed", resumed);

        let invocations = AtomicU32::new(0);
        let retries = AtomicU32::new(0);
        let spilled_bytes = AtomicU64::new(0);

        let frontiers = dag.frontiers();
        for frontier in &frontiers {
            let pending: Vec<usize> = frontier
                .iter()
                .copied()
                .filter(|&i| outputs[i].is_none())
                .collect();
            if pending.is_empty() {
                continue;
            }
            // Fan the frontier out across worker threads pulling node
            // indices from a shared cursor. Dependencies all live in
            // earlier frontiers, so `outputs` is read-only here.
            let slots: Mutex<Vec<Option<NodeResult>>> = {
                let mut v = Vec::with_capacity(pending.len());
                v.resize_with(pending.len(), || None);
                Mutex::new(v)
            };
            let cursor = AtomicUsize::new(0);
            let workers = self.cfg.max_parallelism.min(pending.len());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= pending.len() {
                            break;
                        }
                        let i = pending[k];
                        let r = self.run_node(
                            dag,
                            i,
                            job,
                            &input,
                            &outputs,
                            root_ctx,
                            ckpt.as_ref(),
                            &invocations,
                            &retries,
                            &spilled_bytes,
                        );
                        slots.lock()[k] = Some(r);
                    });
                }
            });
            for (k, slot) in slots.into_inner().into_iter().enumerate() {
                let (stored, outcome) = slot.expect("every frontier slot is filled")?;
                let i = pending[k];
                outputs[i] = Some(stored);
                outcomes[i] = Some(outcome);
            }
        }

        // Assemble the workflow output from the sinks.
        let sinks = dag.sinks();
        let output = if sinks.len() == 1 {
            self.fetch(outputs[sinks[0]].as_ref().expect("sink completed"))?
        } else {
            let mut items = Vec::with_capacity(sinks.len());
            for &s in &sinks {
                items.push(self.fetch(outputs[s].as_ref().expect("sink completed"))?);
            }
            Bytes::from(frame::pack(&items))
        };

        // The job finished: its ephemeral state (checkpoint + spilled
        // intermediates) has served its purpose.
        if let Some(store) = &self.state {
            let _ = store.remove_namespace(format!("/dag-{job}").as_str());
        }

        root_span.attr("output_bytes", output.len());
        Ok(WorkflowReport {
            output,
            nodes: outcomes
                .into_iter()
                .map(|o| o.expect("every node completed"))
                .collect(),
            makespan: clock.now().saturating_sub(started),
            frontiers: frontiers.len(),
            invocations: invocations.load(Ordering::Relaxed),
            retries: retries.load(Ordering::Relaxed),
            resumed,
            spilled_bytes: spilled_bytes.load(Ordering::Relaxed),
        })
    }

    /// Run one node to completion on the calling worker thread.
    #[allow(clippy::too_many_arguments)]
    fn run_node(
        &self,
        dag: &Dag,
        i: usize,
        job: &str,
        input: &Bytes,
        outputs: &[Option<Stored>],
        root_ctx: Option<SpanContext>,
        ckpt: Option<&taureau_jiffy::KvHandle>,
        invocations: &AtomicU32,
        retries: &AtomicU32,
        spilled_bytes: &AtomicU64,
    ) -> Result<(Stored, NodeOutcome), DagError> {
        let tracer = self.platform.tracer();
        let node = dag.node(i);
        let mut span = tracer.span_child_of(TRACE_SYSTEM, "dag.node", root_ctx);
        span.attr("node", &node.name);
        span.attr("function", &node.function);

        // Assemble the input: workflow input for roots, the sole parent's
        // output verbatim (a refcount bump, not a copy), or a framed list
        // for fan-in — `frame::pack` is the one copy point on this path.
        let deps = dag.deps_of(i);
        let payload: Bytes = match deps {
            [] => input.clone(),
            [d] => self.fetch(outputs[*d].as_ref().expect("dependency completed"))?,
            many => {
                let mut items = Vec::with_capacity(many.len());
                for &d in many {
                    items.push(self.fetch(outputs[d].as_ref().expect("dependency completed"))?);
                }
                Bytes::from(frame::pack(&items))
            }
        };

        let retry = self.cfg.retry;
        let result =
            self.invoke_with_backoff(&node.function, &payload, retry, &span, retries, invocations);
        let (r, attempts) = match result {
            Ok(ok) => ok,
            Err((attempts, source)) => {
                span.attr("failed_after", attempts);
                return Err(DagError::NodeFailed {
                    node: node.name.clone(),
                    attempts,
                    source,
                });
            }
        };
        span.attr("attempts", attempts);

        // Store the output: spill to Jiffy past the inline threshold, and
        // checkpoint so a re-run of this job skips the node.
        let spill = self.state.is_some()
            && matches!(self.cfg.data_passing,
                DataPassing::SizeBased { inline_max } if r.output.len() > inline_max);
        let stored = if spill {
            let mut spill_span = tracer.span_child_of(TRACE_SYSTEM, "dag.spill", span.context());
            let store = self.state.as_ref().expect("state store attached");
            let path = format!("/dag-{job}/intermediate/{}", node.name);
            spill_span.attr("node", &node.name);
            spill_span.attr("bytes", r.output.len());
            let file = store
                .open_file(path.as_str())
                .or_else(|_| store.create_file(path.as_str()))?;
            file.append_bytes(r.output.clone())?;
            spilled_bytes.fetch_add(r.output.len() as u64, Ordering::Relaxed);
            self.metrics.counter("spills").inc();
            Stored::Spilled {
                path,
                len: r.output.len() as u64,
            }
        } else {
            Stored::Inline(r.output.clone())
        };
        if let Some(ckpt) = ckpt {
            let mut ckpt_span =
                tracer.span_child_of(TRACE_SYSTEM, "dag.checkpoint", span.context());
            ckpt_span.attr("node", &node.name);
            ckpt_span.attr("bytes", stored.len());
            ckpt.put(
                node.name.as_bytes(),
                &encode_checkpoint(&stored, span.context()),
            )?;
        }

        // Completion event — observability, not correctness: failures are
        // counted but never fail the node.
        if let Some(events) = &self.events {
            let payload = format!("{job}:{}:{attempts}", node.name);
            if events
                .send_keyed(node.name.as_bytes(), payload.as_bytes())
                .is_err()
            {
                self.metrics.counter("event_errors").inc();
            }
        }

        self.metrics.counter("nodes_completed").inc();
        if let Some(sink) = tracer.telemetry() {
            sink.metric("dag.nodes_completed", 1);
        }
        Ok((
            stored,
            NodeOutcome {
                name: node.name.clone(),
                function: node.function.clone(),
                attempts,
                exec: r.exec_duration,
                cost: r.cost,
                output_bytes: r.output.len(),
                spilled: spill,
                from_checkpoint: false,
            },
        ))
    }

    /// Invoke with per-attempt backoff, recording a `dag.retry` span per
    /// failed transient attempt. Returns the successful result and the
    /// attempts used, or the final error and the attempts wasted.
    fn invoke_with_backoff(
        &self,
        function: &str,
        payload: &Bytes,
        retry: RetryPolicy,
        node_span: &SpanGuard,
        retries: &AtomicU32,
        invocations: &AtomicU32,
    ) -> Result<(taureau_faas::InvocationResult, u32), (u32, FaasError)> {
        let tracer = self.platform.tracer();
        for attempt in 1..=retry.max_attempts {
            invocations.fetch_add(1, Ordering::Relaxed);
            match self.platform.invoke(function, payload.clone()) {
                Ok(r) => return Ok((r, attempt)),
                Err(e @ (FaasError::ExecutionFailed { .. } | FaasError::Timeout { .. }))
                    if attempt < retry.max_attempts =>
                {
                    retries.fetch_add(1, Ordering::Relaxed);
                    self.metrics.counter("retries").inc();
                    if let Some(sink) = tracer.telemetry() {
                        sink.metric("dag.retries", 1);
                    }
                    let backoff = retry.backoff(attempt);
                    let mut retry_span =
                        tracer.span_child_of(TRACE_SYSTEM, "dag.retry", node_span.context());
                    retry_span.attr("function", function);
                    retry_span.attr("attempt", attempt);
                    retry_span.attr("backoff_us", backoff.as_micros());
                    retry_span.attr("error", &e);
                    self.platform.clock().sleep(backoff);
                }
                Err(e) => return Err((attempt, e)),
            }
        }
        unreachable!("loop returns on the final attempt")
    }

    /// Materialise a stored output. Inline outputs come back as a
    /// refcount bump on the handler's buffer; spilled outputs come back as
    /// whatever the Jiffy file rope yields (zero-copy when the spill was a
    /// single append, which it always is on this path).
    fn fetch(&self, stored: &Stored) -> Result<Bytes, DagError> {
        match stored {
            Stored::Inline(b) => Ok(b.clone()),
            Stored::Spilled { path, .. } => {
                let store = self
                    .state
                    .as_ref()
                    .expect("spilled outputs require a state store");
                Ok(store.open_file(path.as_str())?.contents()?)
            }
        }
    }
}

/// Encode a [`Stored`] output as a checkpoint KV value. A producing span
/// context rides in the frame header (between tag and body); `None`
/// produces the classic tags, bit-identical to pre-context checkpoints.
fn encode_checkpoint(stored: &Stored, ctx: Option<SpanContext>) -> Vec<u8> {
    let (plain_tag, ctx_tag) = match stored {
        Stored::Inline(_) => (CKPT_INLINE, CKPT_INLINE_CTX),
        Stored::Spilled { .. } => (CKPT_FILE, CKPT_FILE_CTX),
    };
    let mut v = Vec::with_capacity(1 + SpanContext::WIRE_LEN + 9 + stored.len());
    match ctx {
        Some(ctx) => {
            v.push(ctx_tag);
            v.extend_from_slice(&ctx.to_bytes());
        }
        None => v.push(plain_tag),
    }
    match stored {
        Stored::Inline(b) => v.extend_from_slice(b),
        Stored::Spilled { path, len } => {
            v.extend_from_slice(&len.to_le_bytes());
            v.extend_from_slice(path.as_bytes());
        }
    }
    v
}

/// Decode a checkpoint KV value into the stored output and the context of
/// the span that produced it (absent for classic frames); `None` if
/// malformed.
fn decode_checkpoint(value: &[u8]) -> Option<(Stored, Option<SpanContext>)> {
    let (tag, mut rest) = value.split_first()?;
    let ctx = match *tag {
        CKPT_INLINE_CTX | CKPT_FILE_CTX => {
            let ctx = SpanContext::from_bytes(rest.get(..SpanContext::WIRE_LEN)?)?;
            rest = rest.get(SpanContext::WIRE_LEN..)?;
            Some(ctx)
        }
        _ => None,
    };
    let stored = match *tag {
        CKPT_INLINE | CKPT_INLINE_CTX => Stored::Inline(Bytes::copy_from_slice(rest)),
        CKPT_FILE | CKPT_FILE_CTX => {
            let len = u64::from_le_bytes(rest.get(..8)?.try_into().ok()?);
            let path = String::from_utf8(rest.get(8..)?.to_vec()).ok()?;
            Stored::Spilled { path, len }
        }
        _ => return None,
    };
    Some((stored, ctx))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    use taureau_core::clock::VirtualClock;
    use taureau_core::trace::Tracer;
    use taureau_faas::{FunctionSpec, PlatformConfig};
    use taureau_jiffy::JiffyConfig;
    use taureau_pulsar::{PulsarCluster, PulsarConfig, SubscriptionMode};

    use super::*;
    use crate::graph::DagBuilder;

    fn platform() -> FaasPlatform {
        let p = FaasPlatform::new(PlatformConfig::deterministic(), VirtualClock::shared());
        p.register(FunctionSpec::new("echo", "t", |ctx| {
            Ok(ctx.payload.to_vec())
        }))
        .unwrap();
        p.register(FunctionSpec::new("exclaim", "t", |ctx| {
            let mut out = ctx.payload.to_vec();
            out.push(b'!');
            Ok(out)
        }))
        .unwrap();
        p.register(FunctionSpec::new("concat", "t", |ctx| {
            let parts = frame::unpack(&ctx.payload).ok_or("malformed frame")?;
            Ok(parts.concat())
        }))
        .unwrap();
        p
    }

    fn diamond() -> Dag {
        DagBuilder::new()
            .node("src", "echo", &[])
            .node("left", "exclaim", &["src"])
            .node("right", "exclaim", &["src"])
            .node("join", "concat", &["left", "right"])
            .build()
            .unwrap()
    }

    #[test]
    fn diamond_runs_and_frames_fan_in() {
        let p = platform();
        let report = DagExecutor::new(&p).run(&diamond(), "d1", b"in").unwrap();
        assert_eq!(report.output, b"in!in!");
        assert_eq!(report.frontiers, 3);
        assert_eq!(report.invocations, 4);
        assert_eq!(report.retries, 0);
        assert_eq!(report.resumed, 0);
        assert_eq!(report.nodes.len(), 4);
        assert!(report.nodes.iter().all(|n| n.attempts == 1 && !n.spilled));
        assert!(report.total_cost() > 0.0);
    }

    #[test]
    fn multi_sink_output_is_framed() {
        let p = platform();
        let dag = DagBuilder::new()
            .node("src", "echo", &[])
            .node("a", "exclaim", &["src"])
            .node("b", "echo", &["src"])
            .build()
            .unwrap();
        let report = DagExecutor::new(&p).run(&dag, "d2", b"x").unwrap();
        let sinks = frame::unpack(&report.output).unwrap();
        assert_eq!(sinks, vec![b"x!".to_vec(), b"x".to_vec()]);
    }

    #[test]
    fn transient_failures_retry_with_backoff() {
        let p = platform();
        let failures = Arc::new(AtomicU32::new(2));
        let f = failures.clone();
        p.register(FunctionSpec::new("flaky", "t", move |ctx| {
            if f.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok()
            {
                Err("transient".into())
            } else {
                Ok(ctx.payload.to_vec())
            }
        }))
        .unwrap();
        let dag = Dag::chain(&[("a", "echo"), ("b", "flaky")]).unwrap();
        let exec = DagExecutor::new(&p);
        let report = exec.run(&dag, "r1", b"ok").unwrap();
        assert_eq!(report.output, b"ok");
        assert_eq!(report.retries, 2);
        assert_eq!(report.invocations, 4); // 1 for a, 3 for b
        assert_eq!(report.nodes[1].attempts, 3);
        assert_eq!(exec.metrics().counter("retries").get(), 2);
    }

    #[test]
    fn retry_budget_exhaustion_names_the_node() {
        let p = platform();
        p.register(FunctionSpec::new("doomed", "t", |_| Err("always".into())))
            .unwrap();
        let dag = Dag::chain(&[("a", "echo"), ("b", "doomed"), ("c", "echo")]).unwrap();
        let err = DagExecutor::new(&p)
            .with_config(ExecutorConfig {
                retry: RetryPolicy {
                    max_attempts: 2,
                    ..RetryPolicy::default()
                },
                ..ExecutorConfig::default()
            })
            .run(&dag, "r2", b"x")
            .unwrap_err();
        match err {
            DagError::NodeFailed {
                node,
                attempts,
                source,
            } => {
                assert_eq!(node, "b");
                assert_eq!(attempts, 2);
                assert!(matches!(source, FaasError::ExecutionFailed { .. }));
            }
            other => panic!("expected NodeFailed, got {other:?}"),
        }
    }

    #[test]
    fn crashed_run_resumes_from_checkpoint() {
        let p = platform();
        let jiffy = Jiffy::new(JiffyConfig::default(), p.clock().clone());
        let broken = Arc::new(AtomicU32::new(1));
        let b = broken.clone();
        p.register(FunctionSpec::new("fragile", "t", move |ctx| {
            if b.load(Ordering::SeqCst) == 1 {
                Err("crashed".into())
            } else {
                let mut out = ctx.payload.to_vec();
                out.push(b'*');
                Ok(out)
            }
        }))
        .unwrap();
        let dag = DagBuilder::new()
            .node("src", "echo", &[])
            .node("left", "exclaim", &["src"])
            .node("right", "exclaim", &["src"])
            .node("join", "concat", &["left", "right"])
            .node("sink", "fragile", &["join"])
            .build()
            .unwrap();
        let exec = DagExecutor::new(&p)
            .with_state(&jiffy)
            .with_config(ExecutorConfig {
                retry: RetryPolicy {
                    max_attempts: 2,
                    ..RetryPolicy::default()
                },
                ..ExecutorConfig::default()
            });
        // Run 1 "crashes" at the sink; the first four nodes are
        // checkpointed.
        assert!(matches!(
            exec.run(&dag, "ck", b"in"),
            Err(DagError::NodeFailed { ref node, .. }) if node == "sink"
        ));
        // Run 2 (the operator fixed the bug) resumes: only the sink runs.
        broken.store(0, Ordering::SeqCst);
        let report = exec.run(&dag, "ck", b"in").unwrap();
        assert_eq!(report.output, b"in!in!*");
        assert_eq!(report.resumed, 4);
        assert_eq!(report.invocations, 1);
        assert!(report.nodes[0].from_checkpoint);
        assert_eq!(report.nodes[0].attempts, 0);
        assert!(!report.nodes[4].from_checkpoint);
        assert_eq!(exec.metrics().counter("checkpoint_hits").get(), 4);
        // Success cleared the job's namespace: a third run starts fresh.
        let report = exec.run(&dag, "ck", b"in").unwrap();
        assert_eq!(report.resumed, 0);
        assert_eq!(report.invocations, 5);
    }

    #[test]
    fn checkpoint_frame_codec_roundtrips_span_context() {
        use taureau_core::trace::{SpanId, TraceId};
        let ctx = SpanContext {
            trace_id: TraceId(11),
            span_id: SpanId(22),
        };
        let inline = Stored::Inline(Bytes::from_static(b"out"));
        let spilled = Stored::Spilled {
            path: "/dag-j/intermediate/n".into(),
            len: 7,
        };
        for stored in [&inline, &spilled] {
            // Untraced: classic tag, and the frame decodes with no origin.
            let classic = encode_checkpoint(stored, None);
            assert!(classic[0] == CKPT_INLINE || classic[0] == CKPT_FILE);
            let (got, origin) = decode_checkpoint(&classic).unwrap();
            assert_eq!(origin, None);
            assert_eq!(got.len(), stored.len());
            // Traced: ctx rides in the header, body unchanged after it.
            let traced = encode_checkpoint(stored, Some(ctx));
            assert!(traced[0] == CKPT_INLINE_CTX || traced[0] == CKPT_FILE_CTX);
            assert_eq!(&traced[1 + SpanContext::WIRE_LEN..], &classic[1..]);
            let (got, origin) = decode_checkpoint(&traced).unwrap();
            assert_eq!(origin, Some(ctx));
            assert_eq!(got.len(), stored.len());
        }
        // Malformed frames are rejected, not misread.
        assert!(decode_checkpoint(b"").is_none());
        assert!(decode_checkpoint(&[CKPT_INLINE_CTX, 1, 2]).is_none());
        assert!(decode_checkpoint(&[b'?', 0]).is_none());
    }

    #[test]
    fn restore_links_back_into_the_producing_trace() {
        let p = platform();
        let tracer = Tracer::new(p.clock().clone());
        p.set_tracer(tracer.clone());
        let jiffy = Jiffy::new(JiffyConfig::default(), p.clock().clone());
        let broken = Arc::new(AtomicU32::new(1));
        let b = broken.clone();
        p.register(FunctionSpec::new("fragile", "t", move |ctx| {
            if b.load(Ordering::SeqCst) == 1 {
                Err("crashed".into())
            } else {
                Ok(ctx.payload.to_vec())
            }
        }))
        .unwrap();
        let dag = Dag::chain(&[("a", "echo"), ("sink", "fragile")]).unwrap();
        let exec = DagExecutor::new(&p)
            .with_state(&jiffy)
            .with_config(ExecutorConfig {
                retry: RetryPolicy {
                    max_attempts: 1,
                    ..RetryPolicy::default()
                },
                ..ExecutorConfig::default()
            });
        assert!(exec.run(&dag, "tr", b"x").is_err());
        // The first run's dag.node span for "a" produced the checkpoint.
        let producer = tracer
            .spans()
            .into_iter()
            .find(|s| s.name == "dag.node" && s.attrs.iter().any(|(k, v)| *k == "node" && v == "a"))
            .unwrap();
        broken.store(0, Ordering::SeqCst);
        let report = exec.run(&dag, "tr", b"x").unwrap();
        assert_eq!(report.resumed, 1);
        // The second run's restore span is a child of that span: one causal
        // chain across two executor runs.
        let restore = tracer
            .spans()
            .into_iter()
            .find(|s| s.name == "dag.restore")
            .unwrap();
        assert_eq!(restore.trace_id, producer.trace_id);
        assert_eq!(restore.parent, Some(producer.span_id));
    }

    #[test]
    fn large_outputs_spill_to_jiffy_and_round_trip() {
        let p = platform();
        let jiffy = Jiffy::new(JiffyConfig::default(), p.clock().clone());
        p.register(FunctionSpec::new("inflate", "t", |ctx| {
            // 100 KB — larger than the 32 KB inline threshold and the
            // 64 KB Jiffy block.
            Ok(ctx.payload.repeat(50_000))
        }))
        .unwrap();
        p.register(FunctionSpec::new("measure", "t", |ctx| {
            Ok(ctx.payload.len().to_le_bytes().to_vec())
        }))
        .unwrap();
        let dag = Dag::chain(&[("big", "inflate"), ("len", "measure")]).unwrap();
        let exec = DagExecutor::new(&p).with_state(&jiffy);
        let report = exec.run(&dag, "sp", b"ab").unwrap();
        assert_eq!(report.output, 100_000usize.to_le_bytes().to_vec());
        assert_eq!(report.spilled_bytes, 100_000);
        assert!(report.nodes[0].spilled);
        assert!(!report.nodes[1].spilled);
        assert_eq!(exec.metrics().counter("spills").get(), 1);
    }

    #[test]
    fn completion_events_reach_pulsar() {
        let p = platform();
        let pulsar = PulsarCluster::new(PulsarConfig::default(), p.clock().clone());
        pulsar.create_topic("dag-events", 2).unwrap();
        let mut consumer = pulsar
            .subscribe("dag-events", "watcher", SubscriptionMode::Exclusive)
            .unwrap();
        let exec = DagExecutor::new(&p).with_events(pulsar.producer("dag-events").unwrap());
        exec.run(&diamond(), "ev", b"x").unwrap();
        let events = consumer.drain().unwrap();
        assert_eq!(events.len(), 4);
        let mut seen: Vec<String> = events
            .iter()
            .map(|m| m.payload_str().unwrap().to_string())
            .collect();
        seen.sort();
        assert_eq!(
            seen,
            vec!["ev:join:1", "ev:left:1", "ev:right:1", "ev:src:1"]
        );
        assert_eq!(exec.metrics().counter("event_errors").get(), 0);
    }

    #[test]
    fn run_emits_one_causally_linked_span_tree() {
        let p = platform();
        let tracer = Tracer::new(p.clock().clone());
        p.set_tracer(tracer.clone());
        let jiffy = Jiffy::new(JiffyConfig::default(), p.clock().clone());
        let exec = DagExecutor::new(&p).with_state(&jiffy);
        exec.run(&diamond(), "tr", b"x").unwrap();
        let spans = tracer.spans();
        let root = spans.iter().find(|s| s.name == "dag.run").unwrap();
        let nodes: Vec<_> = spans.iter().filter(|s| s.name == "dag.node").collect();
        assert_eq!(nodes.len(), 4);
        for node in &nodes {
            assert_eq!(node.trace_id, root.trace_id);
            assert_eq!(node.parent, Some(root.span_id));
        }
        let checkpoints: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "dag.checkpoint")
            .collect();
        assert_eq!(checkpoints.len(), 4);
        for ck in &checkpoints {
            assert_eq!(ck.trace_id, root.trace_id);
            assert!(nodes.iter().any(|n| ck.parent == Some(n.span_id)));
        }
        // The platform's own invocation spans join the same tree, nested
        // under the worker's dag.node span.
        let invokes: Vec<_> = spans.iter().filter(|s| s.name == "faas.invoke").collect();
        assert_eq!(invokes.len(), 4);
        for inv in &invokes {
            assert_eq!(inv.trace_id, root.trace_id);
            assert!(nodes.iter().any(|n| inv.parent == Some(n.span_id)));
        }
    }

    #[test]
    fn sequential_config_still_completes() {
        let p = platform();
        let report = DagExecutor::new(&p)
            .with_config(ExecutorConfig {
                max_parallelism: 1,
                ..ExecutorConfig::default()
            })
            .run(&diamond(), "seq", b"in")
            .unwrap();
        assert_eq!(report.output, b"in!in!");
    }
}
