//! DAG construction and validation: builder, cycle detection, topological
//! frontiers, and the critical path.
//!
//! A workflow is a set of named nodes, each invoking one FaaS function and
//! depending on zero or more other nodes. Validation happens once at
//! [`DagBuilder::build`]; a constructed [`Dag`] is immutable and
//! guaranteed acyclic, so the executor can schedule
//! [frontier-by-frontier](Dag::frontiers) without re-checking anything.

use std::collections::HashMap;

use taureau_orchestration::statemachine::StateMachine;

use crate::error::DagError;

/// One workflow node: invoke `function` once every dependency's output is
/// available.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// Unique node name within the DAG.
    pub name: String,
    /// Registered FaaS function this node invokes.
    pub function: String,
    /// Names of nodes whose outputs this node consumes, in the order the
    /// node wants them framed (see the executor's input-assembly rules).
    pub deps: Vec<String>,
}

/// Incrementally declares nodes, then validates the whole graph at once.
#[derive(Debug, Clone, Default)]
pub struct DagBuilder {
    nodes: Vec<DagNode>,
}

impl DagBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a node. `deps` name nodes this one waits for; order matters
    /// for multi-parent input framing.
    pub fn node(
        mut self,
        name: impl Into<String>,
        function: impl Into<String>,
        deps: &[&str],
    ) -> Self {
        self.nodes.push(DagNode {
            name: name.into(),
            function: function.into(),
            deps: deps.iter().map(|d| d.to_string()).collect(),
        });
        self
    }

    /// Validate and freeze the graph: rejects empty graphs, duplicate
    /// names, unknown or self dependencies, and cycles.
    pub fn build(self) -> Result<Dag, DagError> {
        if self.nodes.is_empty() {
            return Err(DagError::Empty);
        }
        let mut index = HashMap::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            if index.insert(node.name.clone(), i).is_some() {
                return Err(DagError::DuplicateNode(node.name.clone()));
            }
        }
        let mut deps = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let mut resolved = Vec::with_capacity(node.deps.len());
            for dep in &node.deps {
                if dep == &node.name {
                    return Err(DagError::SelfDependency(node.name.clone()));
                }
                let &di = index.get(dep).ok_or_else(|| DagError::UnknownDependency {
                    node: node.name.clone(),
                    dep: dep.clone(),
                })?;
                resolved.push(di);
            }
            deps.push(resolved);
        }
        let mut dependents = vec![Vec::new(); self.nodes.len()];
        for (i, ds) in deps.iter().enumerate() {
            for &d in ds {
                dependents[d].push(i);
            }
        }
        // Kahn's algorithm: peel zero-in-degree nodes; anything left over
        // sits on (or behind) a cycle.
        let mut indegree: Vec<usize> = deps.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| indegree[i] == 0)
            .collect();
        let mut ordered = 0usize;
        while let Some(i) = ready.pop() {
            ordered += 1;
            for &j in &dependents[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(j);
                }
            }
        }
        if ordered < self.nodes.len() {
            let stuck = (0..self.nodes.len())
                .filter(|&i| indegree[i] > 0)
                .map(|i| self.nodes[i].name.clone())
                .collect();
            return Err(DagError::Cycle(stuck));
        }
        Ok(Dag {
            nodes: self.nodes,
            index,
            deps,
            dependents,
        })
    }
}

/// A validated, immutable, acyclic workflow graph.
#[derive(Debug, Clone)]
pub struct Dag {
    nodes: Vec<DagNode>,
    index: HashMap<String, usize>,
    deps: Vec<Vec<usize>>,
    dependents: Vec<Vec<usize>>,
}

impl Dag {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG has no nodes (never true for a built DAG).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, in declaration order (node indices index this slice).
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// The node at `i`.
    pub fn node(&self, i: usize) -> &DagNode {
        &self.nodes[i]
    }

    /// Index of the named node.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Dependency indices of node `i`, in declared order.
    pub fn deps_of(&self, i: usize) -> &[usize] {
        &self.deps[i]
    }

    /// Indices of nodes that depend on node `i`.
    pub fn dependents_of(&self, i: usize) -> &[usize] {
        &self.dependents[i]
    }

    /// Nodes with no dependencies (they receive the workflow input).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.deps[i].is_empty())
            .collect()
    }

    /// Nodes nothing depends on (their outputs form the workflow output).
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.dependents[i].is_empty())
            .collect()
    }

    /// Earliest-start level of each node: 0 for roots, otherwise one more
    /// than the deepest dependency.
    fn levels(&self) -> Vec<usize> {
        // Declaration order is not topological, so iterate to a fixed
        // point level-by-level via repeated relaxation over edges. The
        // graph is acyclic with ≤ n levels, so n passes suffice; in
        // practice this loop exits after (depth + 1) passes.
        let n = self.nodes.len();
        let mut level = vec![0usize; n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for &d in &self.deps[i] {
                    if level[i] < level[d] + 1 {
                        level[i] = level[d] + 1;
                        changed = true;
                    }
                }
            }
        }
        level
    }

    /// Topological frontiers: frontier `k` holds every node whose longest
    /// dependency chain has length `k`. All nodes in one frontier are
    /// mutually independent and runnable in parallel once the previous
    /// frontier completed; together the frontiers cover every node exactly
    /// once.
    pub fn frontiers(&self) -> Vec<Vec<usize>> {
        let level = self.levels();
        let depth = level.iter().copied().max().map_or(0, |m| m + 1);
        let mut frontiers = vec![Vec::new(); depth];
        for (i, &l) in level.iter().enumerate() {
            frontiers[l].push(i);
        }
        frontiers
    }

    /// One longest dependency chain (root → … → sink), as node indices.
    /// Its length is the number of sequential steps no amount of
    /// parallelism can remove — the denominator of critical-path
    /// efficiency.
    pub fn critical_path(&self) -> Vec<usize> {
        let level = self.levels();
        let Some(end) = (0..self.nodes.len()).max_by_key(|&i| level[i]) else {
            return Vec::new();
        };
        let mut path = vec![end];
        let mut cur = end;
        while level[cur] > 0 {
            let &prev = self.deps[cur]
                .iter()
                .find(|&&d| level[d] + 1 == level[cur])
                .expect("a node above level 0 has a deepest dependency");
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        path
    }

    /// A linear chain DAG: each stage depends on the previous one.
    pub fn chain(stages: &[(&str, &str)]) -> Result<Dag, DagError> {
        let mut b = DagBuilder::new();
        let mut prev: Option<&str> = None;
        for (name, function) in stages {
            b = match prev {
                Some(p) => b.node(*name, *function, &[p]),
                None => b.node(*name, *function, &[]),
            };
            prev = Some(name);
        }
        b.build()
    }

    /// Express a linear [`StateMachine`] as a chain-DAG, so both workflow
    /// models run on one executor. Fails with [`DagError::NotAChain`] for
    /// machines that branch, loop, or dangle — those need the state
    /// machine's runtime routing.
    pub fn from_state_machine(m: &StateMachine) -> Result<Dag, DagError> {
        let chain = m.linear_chain().ok_or(DagError::NotAChain)?;
        let stages: Vec<(&str, &str)> = chain
            .iter()
            .map(|(s, f)| (s.as_str(), f.as_str()))
            .collect();
        Dag::chain(&stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        DagBuilder::new()
            .node("a", "f", &[])
            .node("b", "f", &["a"])
            .node("c", "f", &["a"])
            .node("d", "f", &["b", "c"])
            .build()
            .unwrap()
    }

    #[test]
    fn diamond_frontiers_and_paths() {
        let dag = diamond();
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.roots(), vec![0]);
        assert_eq!(dag.sinks(), vec![3]);
        assert_eq!(dag.frontiers(), vec![vec![0], vec![1, 2], vec![3]]);
        let cp = dag.critical_path();
        assert_eq!(cp.len(), 3);
        assert_eq!((cp[0], cp[2]), (0, 3));
        assert_eq!(dag.deps_of(3), &[1, 2]);
        assert_eq!(dag.dependents_of(0), &[1, 2]);
    }

    #[test]
    fn validation_rejects_malformed_graphs() {
        assert!(matches!(DagBuilder::new().build(), Err(DagError::Empty)));
        assert!(matches!(
            DagBuilder::new()
                .node("a", "f", &[])
                .node("a", "g", &[])
                .build(),
            Err(DagError::DuplicateNode(ref n)) if n == "a"
        ));
        assert!(matches!(
            DagBuilder::new().node("a", "f", &["ghost"]).build(),
            Err(DagError::UnknownDependency { ref node, ref dep }) if node == "a" && dep == "ghost"
        ));
        assert!(matches!(
            DagBuilder::new().node("a", "f", &["a"]).build(),
            Err(DagError::SelfDependency(ref n)) if n == "a"
        ));
        let cyclic = DagBuilder::new()
            .node("a", "f", &["c"])
            .node("b", "f", &["a"])
            .node("c", "f", &["b"])
            .build();
        match cyclic {
            Err(DagError::Cycle(names)) => assert_eq!(names.len(), 3),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn cycle_error_names_only_stuck_nodes() {
        // An acyclic prefix feeding a cycle: the prefix is peeled off, the
        // cycle members remain.
        let r = DagBuilder::new()
            .node("pre", "f", &[])
            .node("x", "f", &["pre", "y"])
            .node("y", "f", &["x"])
            .build();
        match r {
            Err(DagError::Cycle(mut names)) => {
                names.sort();
                assert_eq!(names, vec!["x".to_string(), "y".to_string()]);
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn chain_and_state_machine_conversion() {
        let dag = Dag::chain(&[("extract", "fx"), ("transform", "ft"), ("load", "fl")]).unwrap();
        assert_eq!(dag.frontiers(), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(dag.critical_path(), vec![0, 1, 2]);

        use taureau_orchestration::statemachine::{State, Transition};
        let m = StateMachine::new("s1")
            .state(
                "s1",
                State {
                    function: "f1".into(),
                    next: Transition::Always("s2".into()),
                },
            )
            .state(
                "s2",
                State {
                    function: "f2".into(),
                    next: Transition::End,
                },
            );
        let dag = Dag::from_state_machine(&m).unwrap();
        assert_eq!(dag.len(), 2);
        assert_eq!(dag.node(0).function, "f1");
        assert_eq!(dag.node(1).deps, vec!["s1".to_string()]);

        let looping = StateMachine::new("spin").state(
            "spin",
            State {
                function: "f".into(),
                next: Transition::Always("spin".into()),
            },
        );
        assert!(matches!(
            Dag::from_state_machine(&looping),
            Err(DagError::NotAChain)
        ));
    }
}
