//! DAG construction and execution errors.

use taureau_faas::FaasError;
use taureau_jiffy::JiffyError;

/// Errors from building or executing a workflow DAG.
#[derive(Debug)]
pub enum DagError {
    /// The DAG has no nodes.
    Empty,
    /// Two nodes share a name.
    DuplicateNode(String),
    /// A node depends on a name that is not in the DAG.
    UnknownDependency {
        /// The node declaring the dependency.
        node: String,
        /// The missing dependency name.
        dep: String,
    },
    /// A node depends on itself.
    SelfDependency(String),
    /// The dependency graph contains a cycle; names are the nodes left
    /// unorderable once every acyclic prefix was peeled off.
    Cycle(Vec<String>),
    /// A state machine could not be expressed as a chain-DAG (it branches,
    /// loops, or dangles). See
    /// [`linear_chain`](taureau_orchestration::statemachine::StateMachine::linear_chain).
    NotAChain,
    /// A node's invocation failed after exhausting its retry budget.
    NodeFailed {
        /// The failing node.
        node: String,
        /// Attempts made before giving up.
        attempts: u32,
        /// The final platform error.
        source: FaasError,
    },
    /// Checkpoint or intermediate-data storage failed.
    State(JiffyError),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::Empty => write!(f, "dag has no nodes"),
            DagError::DuplicateNode(n) => write!(f, "duplicate node: {n}"),
            DagError::UnknownDependency { node, dep } => {
                write!(f, "node {node} depends on unknown node {dep}")
            }
            DagError::SelfDependency(n) => write!(f, "node {n} depends on itself"),
            DagError::Cycle(names) => write!(f, "dependency cycle among: {}", names.join(", ")),
            DagError::NotAChain => write!(f, "state machine is not a linear chain"),
            DagError::NodeFailed {
                node,
                attempts,
                source,
            } => write!(f, "node {node} failed after {attempts} attempts: {source}"),
            DagError::State(e) => write!(f, "workflow state store failed: {e}"),
        }
    }
}

impl std::error::Error for DagError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DagError::NodeFailed { source, .. } => Some(source),
            DagError::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JiffyError> for DagError {
    fn from(e: JiffyError) -> Self {
        DagError::State(e)
    }
}
