//! Execution policies: retry backoff, intermediate-data passing, and the
//! executor knobs that bundle them.

use std::time::Duration;

/// Per-node retry with exponential backoff. Attempt `k`'s failure sleeps
/// `base × multiplier^(k−1)`, capped at `max_backoff`, before attempt
/// `k+1`. Only transient platform errors (execution failure, timeout) are
/// retried; admission errors and unknown functions fail the node
/// immediately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per node (≥ 1; 1 disables retry).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base: Duration,
    /// Backoff growth factor per subsequent attempt.
    pub multiplier: f64,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// No retries: one attempt, fail fast.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Backoff to sleep after the `attempt`-th failure (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.multiplier.powi(attempt.saturating_sub(1) as i32);
        self.base.mul_f64(exp).min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
        }
    }
}

/// How a node's output reaches its dependents (and the checkpoint).
///
/// Wukong's observation: small intermediates are cheapest passed inline
/// with the task, while large ones belong in shared ephemeral storage.
/// `SizeBased` captures that hybrid; `Inline` keeps everything in the
/// executor's memory (no Jiffy traffic, no durability for large values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPassing {
    /// Always pass outputs in executor memory.
    Inline,
    /// Spill outputs larger than `inline_max` bytes to Jiffy files under
    /// the workflow's namespace; smaller outputs stay inline.
    SizeBased {
        /// Largest output (bytes) still passed inline.
        inline_max: usize,
    },
}

impl Default for DataPassing {
    fn default() -> Self {
        DataPassing::SizeBased {
            inline_max: 32 * 1024,
        }
    }
}

/// Knobs for one executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorConfig {
    /// Worker threads invoking ready nodes concurrently (≥ 1; 1 yields
    /// sequential execution — the baseline E23 compares against).
    pub max_parallelism: usize,
    /// Per-node retry policy.
    pub retry: RetryPolicy,
    /// Intermediate-data passing policy.
    pub data_passing: DataPassing,
    /// Checkpoint completed nodes to Jiffy so a re-run of the same job
    /// resumes from the last completed frontier. Requires a state store
    /// to be attached; silently off without one.
    pub checkpoint: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            max_parallelism: 8,
            retry: RetryPolicy::default(),
            data_passing: DataPassing::default(),
            checkpoint: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(20), Duration::from_secs(1)); // capped
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }
}
