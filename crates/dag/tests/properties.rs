//! Property-based tests for the DAG validator and scheduler: arbitrary
//! acyclic graphs always validate, schedule without deadlock, and cover
//! every node exactly once; arbitrary cycle injection is always rejected.

use proptest::collection::vec;
use proptest::prelude::*;

use taureau_core::clock::VirtualClock;
use taureau_dag::{Dag, DagBuilder, DagError, DagExecutor, ExecutorConfig, RetryPolicy};
use taureau_faas::{FaasPlatform, FunctionSpec, PlatformConfig};

/// Build a DAG over `edges.len()` nodes where node `i` depends on node
/// `j < i` iff `edges[i][j]` is set. Forward-only edges make the graph
/// acyclic by construction.
fn build(edges: &[Vec<bool>]) -> Result<Dag, DagError> {
    let names: Vec<String> = (0..edges.len()).map(|i| format!("n{i}")).collect();
    let mut b = DagBuilder::new();
    for (i, row) in edges.iter().enumerate() {
        let deps: Vec<&str> = row
            .iter()
            .enumerate()
            .filter(|&(j, &on)| j < i && on)
            .map(|(j, _)| names[j].as_str())
            .collect();
        b = b.node(names[i].as_str(), "echo", &deps);
    }
    b.build()
}

fn echo_platform() -> FaasPlatform {
    let p = FaasPlatform::new(PlatformConfig::deterministic(), VirtualClock::shared());
    p.register(FunctionSpec::new("echo", "t", |ctx| {
        Ok(ctx.payload.to_vec())
    }))
    .unwrap();
    p
}

proptest! {
    /// Any forward-edge graph validates, and its topological frontiers
    /// cover every node exactly once with every dependency in a strictly
    /// earlier frontier.
    #[test]
    fn random_dags_validate_and_frontier_cover(edges in vec(vec(any::<bool>(), 0..10), 1..10)) {
        let dag = build(&edges).expect("forward-only edges are acyclic");
        let frontiers = dag.frontiers();
        let mut level = vec![None; dag.len()];
        for (l, frontier) in frontiers.iter().enumerate() {
            for &i in frontier {
                prop_assert!(level[i].is_none(), "node scheduled twice");
                level[i] = Some(l);
            }
        }
        for (i, l) in level.iter().enumerate() {
            let l = l.expect("every node is in some frontier");
            for &d in dag.deps_of(i) {
                prop_assert!(level[d].expect("dep scheduled") < l);
            }
        }
        // Critical path length equals the number of frontiers: the deepest
        // chain is exactly what serialises the schedule.
        prop_assert_eq!(dag.critical_path().len(), frontiers.len());
    }

    /// The executor drains any random DAG without deadlock: every node
    /// runs exactly once and the run terminates.
    #[test]
    fn random_dags_never_deadlock(edges in vec(vec(any::<bool>(), 0..8), 1..8)) {
        let dag = build(&edges).expect("forward-only edges are acyclic");
        let platform = echo_platform();
        let exec = DagExecutor::new(&platform).with_config(ExecutorConfig {
            max_parallelism: 4,
            retry: RetryPolicy::none(),
            ..ExecutorConfig::default()
        });
        let report = exec.run(&dag, "prop", b"x").unwrap();
        prop_assert_eq!(report.nodes.len(), dag.len());
        prop_assert_eq!(report.invocations, dag.len() as u32);
        prop_assert!(report.nodes.iter().all(|n| n.attempts == 1));
    }

    /// Closing any forward chain into a ring is always rejected as a
    /// cycle, no matter what extra forward edges ride along.
    #[test]
    fn cycle_injection_is_always_rejected(
        n in 2usize..9,
        extra in vec(vec(any::<bool>(), 0..9), 0..9),
    ) {
        let names: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
        let mut b = DagBuilder::new();
        for i in 0..n {
            let mut deps: Vec<&str> = Vec::new();
            if i == 0 {
                deps.push(names[n - 1].as_str()); // the back edge closing the ring
            } else {
                deps.push(names[i - 1].as_str());
            }
            if let Some(row) = extra.get(i) {
                for (j, &on) in row.iter().enumerate() {
                    if on && j < i.saturating_sub(1) {
                        deps.push(names[j].as_str());
                    }
                }
            }
            b = b.node(names[i].as_str(), "echo", &deps);
        }
        match b.build() {
            Err(DagError::Cycle(stuck)) => prop_assert!(!stuck.is_empty()),
            other => prop_assert!(false, "expected cycle rejection, got {:?}", other.map(|d| d.len())),
        }
    }
}
