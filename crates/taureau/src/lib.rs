//! # taureau
//!
//! The facade crate for the *Le Taureau* serverless stack — a from-scratch
//! Rust reproduction of the systems described in
//! "Le Taureau: Deconstructing the Serverless Landscape & A Look Forward"
//! (SIGMOD 2020). Depend on this crate to get the whole stack, or on the
//! individual `taureau-*` crates for a single subsystem.
//!
//! | Re-export | Subsystem |
//! |-----------|-----------|
//! | [`core`] | clocks, metrics, cost models, latency models |
//! | [`sketches`] | mergeable data sketches (Count-Min, HLL, …) |
//! | [`jiffy`] | ephemeral-state virtual memory (Figure 2) |
//! | [`pulsar`] | broker/bookie messaging + Pulsar Functions (Figure 1) |
//! | [`faas`] | the Function-as-a-Service runtime |
//! | [`orchestration`] | function composition (Lopez et al. properties) |
//! | [`dag`] | parallel, fault-tolerant DAG workflow engine |
//! | [`monitor`] | self-hosted SLO monitoring, alerts, flight recorder |
//! | [`prof`] | causal trace analysis: critical paths, contention reports |
//! | [`sim`] | cluster-scale cost/scaling simulator |
//! | [`apps`] | the paper's application workloads |
//! | [`baas`] | Backend-as-a-Service substrates (blob store, transactional DB) |
//!
//! See `examples/quickstart.rs` at the repository root for a first walk
//! through the API, and `EXPERIMENTS.md` for the experiment catalogue.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use taureau_apps as apps;
pub use taureau_baas as baas;
pub use taureau_cluster as cluster;
pub use taureau_core as core;
pub use taureau_dag as dag;
pub use taureau_faas as faas;
pub use taureau_jiffy as jiffy;
pub use taureau_monitor as monitor;
pub use taureau_orchestration as orchestration;
pub use taureau_prof as prof;
pub use taureau_pulsar as pulsar;
pub use taureau_secure as secure;
pub use taureau_sim as sim;
pub use taureau_sketches as sketches;

/// The most common entry points, for `use taureau::prelude::*`.
pub mod prelude {
    pub use taureau_cluster::{ClusterStack, ClusterStackConfig};
    pub use taureau_core::bytesize::ByteSize;
    pub use taureau_core::clock::{Clock, SharedClock, VirtualClock, WallClock};
    pub use taureau_core::metrics::MetricsRegistry;
    pub use taureau_core::trace::{TelemetrySink, Tracer, TracerConfig};
    pub use taureau_dag::{DagBuilder, DagExecutor, ExecutorConfig, RetryPolicy};
    pub use taureau_faas::{FaasPlatform, FunctionSpec, PlatformConfig};
    pub use taureau_jiffy::{Jiffy, JiffyConfig};
    pub use taureau_monitor::{HealthReport, Monitor, MonitorConfig, SloPolicy, TelemetryPump};
    pub use taureau_orchestration::{Composition, Orchestrator};
    pub use taureau_prof::{ContentionReport, CriticalPath, TraceGraph};
    pub use taureau_pulsar::{
        FunctionConfig, FunctionRuntime, PulsarCluster, PulsarConfig, SubscriptionMode,
    };
    pub use taureau_sketches::{CountMinSketch, HyperLogLog, Mergeable};
}
