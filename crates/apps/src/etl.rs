//! Serverless ETL (§3.1, Data Processing).
//!
//! "The typical use case is to read data from some serverless data store,
//! process it using a serverless function to extract, modify and write
//! useful elements of the data back to serverless storage." This module is
//! that pipeline: three black-box FaaS functions — **extract** (parse and
//! validate raw CSV records), **transform** (filter and enrich), **load**
//! (write to a Jiffy KV and maintain per-category aggregates) — composed
//! with the orchestration crate, batched through the frame codec.

use std::sync::Arc;

use taureau_faas::{FaasPlatform, FunctionSpec};
use taureau_jiffy::Jiffy;
use taureau_orchestration::{frame, Composition, Orchestrator};

/// A parsed record: `id,category,value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Unique id.
    pub id: u64,
    /// Category label.
    pub category: String,
    /// Numeric measure.
    pub value: f64,
}

impl Record {
    fn to_line(&self) -> String {
        format!("{},{},{}", self.id, self.category, self.value)
    }

    fn parse(line: &str) -> Option<Record> {
        let mut parts = line.split(',');
        let id = parts.next()?.trim().parse().ok()?;
        let category = parts.next()?.trim();
        if category.is_empty() {
            return None;
        }
        let value = parts.next()?.trim().parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Record {
            id,
            category: category.to_string(),
            value,
        })
    }
}

/// Generate raw CSV lines with a malformed fraction (the extract stage's
/// job is dropping those).
pub fn synthetic_lines(n: usize, malformed_every: usize, seed: u64) -> Vec<String> {
    use rand::Rng;
    let mut rng = taureau_core::rng::det_rng(seed);
    let categories = ["web", "iot", "mobile", "batch"];
    (0..n)
        .map(|i| {
            if malformed_every > 0 && i % malformed_every == malformed_every - 1 {
                "this,is,not a number".to_string()
            } else {
                let cat = categories[rng.gen_range(0..categories.len())];
                format!("{},{},{:.3}", i, cat, rng.gen_range(0.0..100.0))
            }
        })
        .collect()
}

/// The deployed pipeline: handles to its composition and state.
pub struct EtlPipeline {
    orchestrator: Orchestrator,
    composition: Composition,
    jiffy: Jiffy,
}

/// Result of one pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct EtlReport {
    /// Raw lines in.
    pub input_lines: usize,
    /// Records surviving extraction.
    pub extracted: usize,
    /// Records surviving the transform filter.
    pub loaded: usize,
    /// Basic function invocations billed.
    pub invocations: usize,
}

impl EtlPipeline {
    /// Register the three stages on the platform and return the pipeline.
    /// `min_value` is the transform stage's filter threshold;
    /// `enrich_factor` scales values (the "modify" step).
    pub fn deploy(
        platform: &FaasPlatform,
        jiffy: &Jiffy,
        min_value: f64,
        enrich_factor: f64,
    ) -> Self {
        // extract: framed raw lines -> framed valid record lines.
        platform
            .register(FunctionSpec::new("etl-extract", "etl", |ctx| {
                let lines = frame::unpack(&ctx.payload).ok_or("unframed input")?;
                let valid: Vec<Vec<u8>> = lines
                    .iter()
                    .filter_map(|raw| {
                        let line = std::str::from_utf8(raw).ok()?;
                        Record::parse(line).map(|r| r.to_line().into_bytes())
                    })
                    .collect();
                Ok(frame::pack(&valid))
            }))
            .expect("register extract");

        // transform: filter by min_value, scale by enrich_factor.
        platform
            .register(FunctionSpec::new("etl-transform", "etl", move |ctx| {
                let lines = frame::unpack(&ctx.payload).ok_or("unframed input")?;
                let out: Vec<Vec<u8>> = lines
                    .iter()
                    .filter_map(|raw| {
                        let line = std::str::from_utf8(raw).ok()?;
                        let mut r = Record::parse(line)?;
                        if r.value < min_value {
                            return None;
                        }
                        r.value *= enrich_factor;
                        Some(r.to_line().into_bytes())
                    })
                    .collect();
                Ok(frame::pack(&out))
            }))
            .expect("register transform");

        // load: write records into the Jiffy sink and bump aggregates.
        let sink = jiffy.clone();
        platform
            .register(FunctionSpec::new("etl-load", "etl", move |ctx| {
                let lines = frame::unpack(&ctx.payload).ok_or("unframed input")?;
                let kv = sink
                    .open_kv("/etl/sink")
                    .or_else(|_| sink.create_kv("/etl/sink", 4))
                    .map_err(|e| e.to_string())?;
                let agg = sink
                    .open_kv("/etl/aggregates")
                    .or_else(|_| sink.create_kv("/etl/aggregates", 1))
                    .map_err(|e| e.to_string())?;
                let mut loaded = 0u64;
                for raw in &lines {
                    let line = std::str::from_utf8(raw).map_err(|e| e.to_string())?;
                    let r = Record::parse(line).ok_or("corrupt record at load")?;
                    kv.put(&r.id.to_le_bytes(), line.as_bytes())
                        .map_err(|e| e.to_string())?;
                    // category -> (count, sum) running aggregate.
                    let key = format!("cat:{}", r.category);
                    let (mut count, mut sum) = agg
                        .get(key.as_bytes())
                        .map_err(|e| e.to_string())?
                        .map(|b| {
                            let c = u64::from_le_bytes(b[0..8].try_into().expect("8"));
                            let s = f64::from_le_bytes(b[8..16].try_into().expect("8"));
                            (c, s)
                        })
                        .unwrap_or((0, 0.0));
                    count += 1;
                    sum += r.value;
                    let mut buf = Vec::with_capacity(16);
                    buf.extend_from_slice(&count.to_le_bytes());
                    buf.extend_from_slice(&sum.to_le_bytes());
                    agg.put(key.as_bytes(), &buf).map_err(|e| e.to_string())?;
                    loaded += 1;
                }
                Ok(loaded.to_le_bytes().to_vec())
            }))
            .expect("register load");

        let orchestrator = Orchestrator::new(platform.clone());
        let composition = Composition::pipeline(["etl-extract", "etl-transform", "etl-load"]);
        Self {
            orchestrator,
            composition,
            jiffy: jiffy.clone(),
        }
    }

    /// Run the pipeline over a batch of raw lines.
    pub fn run(&self, lines: &[String]) -> Result<EtlReport, taureau_faas::FaasError> {
        let framed = frame::pack(
            &lines
                .iter()
                .map(|l| l.as_bytes().to_vec())
                .collect::<Vec<_>>(),
        );
        let report = self.orchestrator.run(&self.composition, &framed)?;
        let loaded =
            u64::from_le_bytes(report.output[..].try_into().expect("load returns u64")) as usize;
        let extracted = self
            .jiffy
            .open_kv("/etl/sink")
            .and_then(|kv| kv.len())
            .unwrap_or(0);
        Ok(EtlReport {
            input_lines: lines.len(),
            extracted,
            loaded,
            invocations: report.invocation_count(),
        })
    }

    /// Look up a loaded record by id.
    pub fn lookup(&self, id: u64) -> Option<Record> {
        let kv = self.jiffy.open_kv("/etl/sink").ok()?;
        let bytes = kv.get(&id.to_le_bytes()).ok()??;
        Record::parse(std::str::from_utf8(&bytes).ok()?)
    }

    /// (count, sum) aggregate for a category.
    pub fn aggregate(&self, category: &str) -> Option<(u64, f64)> {
        let agg = self.jiffy.open_kv("/etl/aggregates").ok()?;
        let b = agg.get(format!("cat:{category}").as_bytes()).ok()??;
        Some((
            u64::from_le_bytes(b[0..8].try_into().ok()?),
            f64::from_le_bytes(b[8..16].try_into().ok()?),
        ))
    }
}

/// Convenience: chunk lines into batches and run the pipeline per batch
/// (the event-driven shape: one batch per storage event).
pub fn run_batched(
    pipeline: &EtlPipeline,
    lines: &[String],
    batch: usize,
) -> Result<EtlReport, taureau_faas::FaasError> {
    assert!(batch > 0);
    let mut total = EtlReport {
        input_lines: 0,
        extracted: 0,
        loaded: 0,
        invocations: 0,
    };
    for chunk in lines.chunks(batch) {
        let r = pipeline.run(chunk)?;
        total.input_lines += r.input_lines;
        total.loaded += r.loaded;
        total.invocations += r.invocations;
        total.extracted = r.extracted; // sink size is cumulative
    }
    Ok(total)
}

/// Shared-ownership alias used by benches.
pub type SharedPipeline = Arc<EtlPipeline>;

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;
    use taureau_faas::PlatformConfig;
    use taureau_jiffy::JiffyConfig;

    fn setup() -> (FaasPlatform, Jiffy) {
        let clock = VirtualClock::shared();
        (
            FaasPlatform::new(PlatformConfig::deterministic(), clock.clone()),
            Jiffy::new(JiffyConfig::default(), clock),
        )
    }

    #[test]
    fn record_parsing() {
        assert_eq!(
            Record::parse("7,web,3.5"),
            Some(Record {
                id: 7,
                category: "web".into(),
                value: 3.5
            })
        );
        assert_eq!(Record::parse("x,web,3.5"), None);
        assert_eq!(Record::parse("7,,3.5"), None);
        assert_eq!(Record::parse("7,web,abc"), None);
        assert_eq!(Record::parse("7,web,3.5,extra"), None);
        assert_eq!(Record::parse(""), None);
    }

    #[test]
    fn pipeline_end_to_end() {
        let (platform, jiffy) = setup();
        let p = EtlPipeline::deploy(&platform, &jiffy, 0.0, 2.0);
        let lines = vec![
            "1,web,10.0".to_string(),
            "garbage".to_string(),
            "2,iot,5.0".to_string(),
        ];
        let report = p.run(&lines).unwrap();
        assert_eq!(report.input_lines, 3);
        assert_eq!(report.loaded, 2);
        assert_eq!(report.invocations, 3); // extract, transform, load
                                           // Enrichment doubled values.
        assert_eq!(p.lookup(1).unwrap().value, 20.0);
        assert_eq!(p.lookup(2).unwrap().value, 10.0);
        assert_eq!(p.lookup(99), None);
    }

    #[test]
    fn transform_filters_below_threshold() {
        let (platform, jiffy) = setup();
        let p = EtlPipeline::deploy(&platform, &jiffy, 50.0, 1.0);
        let lines = vec![
            "1,web,10.0".into(),
            "2,web,60.0".into(),
            "3,web,55.0".into(),
        ];
        let report = p.run(&lines).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(p.lookup(1), None);
        assert!(p.lookup(2).is_some());
    }

    #[test]
    fn aggregates_accumulate_per_category() {
        let (platform, jiffy) = setup();
        let p = EtlPipeline::deploy(&platform, &jiffy, 0.0, 1.0);
        p.run(&["1,web,10.0".into(), "2,web,20.0".into(), "3,iot,5.0".into()])
            .unwrap();
        assert_eq!(p.aggregate("web"), Some((2, 30.0)));
        assert_eq!(p.aggregate("iot"), Some((1, 5.0)));
        assert_eq!(p.aggregate("mobile"), None);
        // A second batch keeps accumulating.
        p.run(&["4,web,5.0".into()]).unwrap();
        assert_eq!(p.aggregate("web"), Some((3, 35.0)));
    }

    #[test]
    fn batched_runs_process_everything() {
        let (platform, jiffy) = setup();
        let p = EtlPipeline::deploy(&platform, &jiffy, 0.0, 1.0);
        let lines = synthetic_lines(100, 10, 1);
        let report = run_batched(&p, &lines, 16).unwrap();
        assert_eq!(report.input_lines, 100);
        assert_eq!(report.extracted, 90); // 10 malformed dropped
                                          // 7 batches × 3 stages.
        assert_eq!(report.invocations, 21);
    }

    #[test]
    fn billing_covers_only_the_three_stages() {
        let (platform, jiffy) = setup();
        let p = EtlPipeline::deploy(&platform, &jiffy, 0.0, 1.0);
        p.run(&["1,web,1.0".into()]).unwrap();
        assert_eq!(platform.billing().invocations("etl"), 3);
    }
}
