//! Serverless video processing (§5.1, Video).
//!
//! ExCamera's insight: split a video into chunks, encode chunks in
//! parallel on thousands of tiny serverless workers, and hand the small
//! amount of *inter-chunk state* (the reference frame at each boundary)
//! through fast ephemeral storage. This module reproduces the pattern at
//! laptop scale:
//!
//! - a synthetic "video" with temporal redundancy (so delta-encoding has
//!   something to exploit);
//! - a real codec: per-frame delta vs. the previous frame + run-length
//!   encoding (lossless);
//! - [`encode_serverless`]: one FaaS invocation per chunk, reading its
//!   frames and *the previous chunk's last frame* from Jiffy, writing the
//!   encoded chunk back — then a driver concatenates and verifies.
//!
//! The speedup claim is about the critical path: serial encode time is the
//! sum of chunk times; parallel is the max (plus assembly), which the
//! outcome reports.

use std::sync::Arc;
use std::time::Duration;

use taureau_faas::{FaasPlatform, FunctionSpec};
use taureau_jiffy::Jiffy;

/// A frame of `width × height` single-channel pixels.
pub type Frame = Vec<u8>;

/// Generate `frames` frames with strong temporal redundancy: a noisy
/// background that mostly persists, with a moving block.
pub fn synthetic_video(frames: usize, width: usize, height: usize, seed: u64) -> Vec<Frame> {
    use rand::Rng;
    let mut rng = taureau_core::rng::det_rng(seed);
    let mut base: Frame = (0..width * height)
        .map(|_| rng.gen_range(0..32u8))
        .collect();
    let mut out = Vec::with_capacity(frames);
    for f in 0..frames {
        // A few background pixels flicker…
        for _ in 0..(width * height / 100).max(1) {
            let i = rng.gen_range(0..base.len());
            base[i] = rng.gen_range(0..32);
        }
        let mut frame = base.clone();
        // …and a bright square moves across.
        let bx = (f * 2) % width.max(1);
        for dy in 0..(height / 4).max(1) {
            for dx in 0..(width / 4).max(1) {
                let x = (bx + dx) % width;
                let y = (height / 3 + dy) % height;
                frame[y * width + x] = 255;
            }
        }
        out.push(frame);
    }
    out
}

// --- Codec ---------------------------------------------------------------

/// RLE over bytes: `(count, value)` pairs with count ≤ 255.
fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut iter = data.iter().peekable();
    while let Some(&v) = iter.next() {
        let mut run = 1u8;
        while run < u8::MAX {
            match iter.peek() {
                Some(&&next) if next == v => {
                    iter.next();
                    run += 1;
                }
                _ => break,
            }
        }
        out.push(run);
        out.push(v);
    }
    out
}

fn rle_decode(data: &[u8]) -> Option<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::new();
    for pair in data.chunks_exact(2) {
        out.extend(std::iter::repeat_n(pair[1], pair[0] as usize));
    }
    Some(out)
}

/// Encode a chunk of frames against a reference frame (the previous
/// chunk's last frame; all-zero for the first chunk). Each frame is
/// delta-encoded against its predecessor and RLE-compressed. Output
/// format: `[frame_count u32] ([len u32][rle bytes])*`.
pub fn encode_chunk(frames: &[Frame], reference: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(frames.len() as u32).to_le_bytes());
    let mut prev = reference.clone();
    for frame in frames {
        let delta: Vec<u8> = frame
            .iter()
            .zip(&prev)
            .map(|(a, b)| a.wrapping_sub(*b))
            .collect();
        let rle = rle_encode(&delta);
        out.extend_from_slice(&(rle.len() as u32).to_le_bytes());
        out.extend_from_slice(&rle);
        prev = frame.clone();
    }
    out
}

/// Decode a chunk back to raw frames given the same reference frame.
pub fn decode_chunk(bytes: &[u8], reference: &Frame) -> Option<Vec<Frame>> {
    if bytes.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let mut pos = 4;
    let mut prev = reference.clone();
    let mut frames = Vec::with_capacity(count);
    for _ in 0..count {
        let len = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let delta = rle_decode(bytes.get(pos..pos + len)?)?;
        pos += len;
        if delta.len() != prev.len() {
            return None;
        }
        let frame: Frame = delta
            .iter()
            .zip(&prev)
            .map(|(d, p)| p.wrapping_add(*d))
            .collect();
        prev = frame.clone();
        frames.push(frame);
    }
    Some(frames)
}

// --- Serverless pipeline --------------------------------------------------

/// Outcome of the serverless encode.
#[derive(Debug)]
pub struct EncodeOutcome {
    /// Encoded bytes per chunk, in order (shared with the Jiffy file
    /// blocks they were read from).
    pub chunks: Vec<bytes::Bytes>,
    /// Raw input bytes.
    pub raw_bytes: u64,
    /// Total encoded bytes.
    pub encoded_bytes: u64,
    /// Per-chunk simulated encode times.
    pub chunk_times: Vec<Duration>,
    /// FaaS invocations used.
    pub invocations: u64,
}

impl EncodeOutcome {
    /// Compression ratio (raw / encoded).
    pub fn compression_ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.encoded_bytes.max(1) as f64
    }

    /// Serial critical path: sum of chunk times (one worker).
    pub fn serial_time(&self) -> Duration {
        self.chunk_times.iter().sum()
    }

    /// Parallel critical path: slowest chunk (ExCamera's fan-out win).
    pub fn parallel_time(&self) -> Duration {
        self.chunk_times.iter().max().copied().unwrap_or_default()
    }
}

/// Encode a video on the serverless stack: frames staged in Jiffy, one
/// invocation per `chunk_size`-frame chunk, boundary reference frames
/// handed off through Jiffy (the ephemeral inter-task state).
pub fn encode_serverless(
    platform: &FaasPlatform,
    jiffy: &Jiffy,
    video: Arc<Vec<Frame>>,
    chunk_size: usize,
    compute_per_frame: Duration,
    job: &str,
) -> EncodeOutcome {
    assert!(chunk_size >= 1 && !video.is_empty());
    let n_chunks = video.len().div_ceil(chunk_size);
    let frame_len = video[0].len();

    // Stage boundary reference frames: chunk i's reference is the last
    // frame of chunk i-1 (zeros for chunk 0) — the inter-chunk state.
    for c in 0..n_chunks {
        let reference: Frame = if c == 0 {
            vec![0u8; frame_len]
        } else {
            video[c * chunk_size - 1].clone()
        };
        let f = jiffy
            .create_file(format!("/{job}/ref/{c}").as_str())
            .expect("stage reference frame");
        f.append(&reference).expect("write reference");
    }

    let fn_name = format!("video-encode-{job}");
    let vid = Arc::clone(&video);
    let jf = jiffy.clone();
    let job_owned = job.to_string();
    let _ = platform.deregister(&fn_name);
    platform
        .register(FunctionSpec::new(&fn_name, "video", move |ctx| {
            let c: usize = ctx
                .payload_str()
                .and_then(|s| s.parse().ok())
                .ok_or("bad chunk id")?;
            let lo = c * chunk_size;
            let hi = ((c + 1) * chunk_size).min(vid.len());
            let reference = jf
                .open_file(format!("/{job_owned}/ref/{c}").as_str())
                .and_then(|f| f.contents())
                .map_err(|e| e.to_string())?;
            let encoded = encode_chunk(&vid[lo..hi], &reference.to_vec());
            let out = jf
                .create_file(format!("/{job_owned}/out/{c}").as_str())
                .map_err(|e| e.to_string())?;
            out.append(&encoded).map_err(|e| e.to_string())?;
            ctx.burn(compute_per_frame * (hi - lo) as u32);
            Ok(Vec::new())
        }))
        .expect("register encoder");

    let mut chunk_times = Vec::with_capacity(n_chunks);
    let mut invocations = 0u64;
    for c in 0..n_chunks {
        let r = platform
            .invoke(&fn_name, c.to_string().into_bytes())
            .expect("chunk invocation");
        invocations += 1;
        chunk_times.push(r.exec_duration);
    }

    let chunks: Vec<bytes::Bytes> = (0..n_chunks)
        .map(|c| {
            jiffy
                .open_file(format!("/{job}/out/{c}").as_str())
                .and_then(|f| f.contents())
                .expect("read encoded chunk")
        })
        .collect();
    let encoded_bytes = chunks.iter().map(|c| c.len() as u64).sum();
    let _ = platform.deregister(&fn_name);
    let _ = jiffy.remove_namespace(format!("/{job}").as_str());
    EncodeOutcome {
        chunks,
        raw_bytes: (video.len() * frame_len) as u64,
        encoded_bytes,
        chunk_times,
        invocations,
    }
}

/// Decode the chunked output back to frames (the verification path).
pub fn decode_all(
    outcome: &EncodeOutcome,
    video_len: usize,
    chunk_size: usize,
    frame_len: usize,
    original: &[Frame],
) -> Option<Vec<Frame>> {
    let mut frames = Vec::with_capacity(video_len);
    for (c, chunk) in outcome.chunks.iter().enumerate() {
        let reference: Frame = if c == 0 {
            vec![0u8; frame_len]
        } else {
            original[c * chunk_size - 1].clone()
        };
        frames.extend(decode_chunk(chunk, &reference)?);
    }
    Some(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;
    use taureau_faas::PlatformConfig;
    use taureau_jiffy::{Jiffy, JiffyConfig};

    fn setup() -> (FaasPlatform, Jiffy) {
        let clock = VirtualClock::shared();
        (
            FaasPlatform::new(PlatformConfig::deterministic(), clock.clone()),
            Jiffy::new(JiffyConfig::default(), clock),
        )
    }

    #[test]
    fn rle_roundtrip() {
        for data in [
            Vec::new(),
            vec![0u8; 1000],
            vec![1, 2, 3, 4, 5],
            vec![7u8; 300], // run longer than u8::MAX
        ] {
            assert_eq!(rle_decode(&rle_encode(&data)), Some(data));
        }
        assert_eq!(rle_decode(&[1]), None);
    }

    #[test]
    fn chunk_codec_lossless() {
        let video = synthetic_video(10, 32, 24, 1);
        let reference = vec![0u8; 32 * 24];
        let enc = encode_chunk(&video, &reference);
        let dec = decode_chunk(&enc, &reference).unwrap();
        assert_eq!(dec, video);
    }

    #[test]
    fn redundant_video_compresses() {
        let video = synthetic_video(30, 64, 48, 2);
        let reference = vec![0u8; 64 * 48];
        let enc = encode_chunk(&video, &reference);
        let raw = 30 * 64 * 48;
        assert!(
            enc.len() < raw / 2,
            "encoded {} of raw {raw} — no compression win",
            enc.len()
        );
    }

    #[test]
    fn serverless_encode_is_lossless_end_to_end() {
        let (platform, jiffy) = setup();
        let video = Arc::new(synthetic_video(24, 32, 24, 3));
        let out = encode_serverless(
            &platform,
            &jiffy,
            Arc::clone(&video),
            6,
            Duration::from_millis(10),
            "vtest",
        );
        assert_eq!(out.invocations, 4);
        let decoded = decode_all(&out, video.len(), 6, 32 * 24, &video).unwrap();
        assert_eq!(decoded, *video);
        assert!(!jiffy.exists("/vtest"));
    }

    #[test]
    fn parallel_critical_path_beats_serial() {
        let (platform, jiffy) = setup();
        let video = Arc::new(synthetic_video(40, 16, 16, 4));
        let out = encode_serverless(
            &platform,
            &jiffy,
            video,
            5,
            Duration::from_millis(20),
            "ptest",
        );
        // 8 chunks of 5 frames at 20 ms/frame: serial 800 ms, parallel
        // ~100 ms.
        assert!(out.serial_time() >= out.parallel_time() * 7);
    }

    #[test]
    fn uneven_final_chunk_handled() {
        let (platform, jiffy) = setup();
        let video = Arc::new(synthetic_video(10, 8, 8, 5));
        let out = encode_serverless(
            &platform,
            &jiffy,
            Arc::clone(&video),
            4, // chunks of 4, 4, 2
            Duration::from_millis(1),
            "uneven",
        );
        assert_eq!(out.invocations, 3);
        let decoded = decode_all(&out, video.len(), 4, 64, &video).unwrap();
        assert_eq!(decoded, *video);
    }

    #[test]
    fn compression_ratio_reported() {
        let (platform, jiffy) = setup();
        let video = Arc::new(synthetic_video(20, 32, 32, 6));
        let out = encode_serverless(
            &platform,
            &jiffy,
            video,
            5,
            Duration::from_millis(1),
            "ratio",
        );
        assert!(
            out.compression_ratio() > 1.5,
            "ratio {}",
            out.compression_ratio()
        );
    }
}
