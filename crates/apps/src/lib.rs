//! # taureau-apps
//!
//! The application workloads *Le Taureau* surveys, built on the
//! workspace's serverless stack (FaaS + Jiffy + Pulsar + orchestration):
//!
//! | Module | Paper section | What it reproduces |
//! |--------|---------------|--------------------|
//! | [`etl`] | §3.1 Data Processing | extract→transform→load over FaaS with Jiffy state |
//! | [`web`] | §3.1 Web Applications | static content + event-driven dynamic handlers |
//! | [`iot`] | §3.1 Internet of Things | device-registration functions over a serverless registry |
//! | [`graph`] | §5.1 Graph Processing (Toader et al.) | Pregel over FaaS workers with a memory engine (Jiffy) |
//! | [`matmul`] | §5.1 Matrix Multiplication (Werner et al.) | distributed Strassen & blocked matmul with ephemeral intermediates |
//! | [`ml`] | §5.2 Machine Learning | parameter-server training, hyperparameter search, coded straggler mitigation (Gupta et al.) |
//! | [`montecarlo`] | §5 "massively parallel" | fan-out π estimation and option pricing |
//! | [`seqcompare`] | §5.1 Sequence Comparison (Niu et al.) | all-pairs Smith–Waterman fan-out |
//! | [`streaming`] | §5.1 real-time analytics | event-time windowed operators as Pulsar functions |
//! | [`video`] | §5.1 Video (ExCamera/Sprocket) | chunked encoding pipeline with inter-chunk state |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod etl;
pub mod graph;
pub mod iot;
pub mod matmul;
pub mod ml;
pub mod montecarlo;
pub mod seqcompare;
pub mod streaming;
pub mod video;
pub mod web;
