//! Serverless IoT device management (§3.1, Internet of Things).
//!
//! "One particular use case is device registration management — whenever a
//! new IoT device registers, it triggers a serverless function, which in
//! turn populates a registry in a serverless data store. The stored
//! registry can then be queried using other serverless functions."
//!
//! Registrations arrive through a FaaS **queue trigger**; the registration
//! function writes the device into a Jiffy-backed registry; query
//! functions read it. Telemetry readings stream through a second function
//! that keeps per-device last-seen state.

use taureau_faas::trigger::TriggerManager;
use taureau_faas::{FaasPlatform, FunctionSpec};
use taureau_jiffy::Jiffy;

/// A device registration event, wire format `id|kind|location`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registration {
    /// Device identifier.
    pub device_id: String,
    /// Device kind (sensor class).
    pub kind: String,
    /// Deployment location.
    pub location: String,
}

impl Registration {
    /// Encode for the trigger payload.
    pub fn encode(&self) -> Vec<u8> {
        format!("{}|{}|{}", self.device_id, self.kind, self.location).into_bytes()
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let s = std::str::from_utf8(bytes).ok()?;
        let mut it = s.split('|');
        let device_id = it.next()?.to_string();
        let kind = it.next()?.to_string();
        let location = it.next()?.to_string();
        if device_id.is_empty() || it.next().is_some() {
            return None;
        }
        Some(Self {
            device_id,
            kind,
            location,
        })
    }
}

/// The deployed IoT backend.
pub struct IotBackend {
    platform: FaasPlatform,
    jiffy: Jiffy,
    triggers: TriggerManager,
    registration_queue: usize,
    telemetry_queue: usize,
}

impl IotBackend {
    /// Deploy the registration/telemetry functions and their queues.
    pub fn deploy(platform: &FaasPlatform, jiffy: &Jiffy) -> Self {
        let registry_store = jiffy.clone();
        platform
            .register(FunctionSpec::new("iot-register", "iot", move |ctx| {
                let reg = Registration::decode(&ctx.payload).ok_or("bad registration")?;
                let kv = registry_store
                    .open_kv("/iot/registry")
                    .or_else(|_| registry_store.create_kv("/iot/registry", 2))
                    .map_err(|e| e.to_string())?;
                kv.put(
                    reg.device_id.as_bytes(),
                    format!("{}|{}", reg.kind, reg.location).as_bytes(),
                )
                .map_err(|e| e.to_string())?;
                // Secondary index: kind -> comma-joined device ids.
                let idx_key = format!("kind:{}", reg.kind);
                let mut ids = kv
                    .get(idx_key.as_bytes())
                    .map_err(|e| e.to_string())?
                    .map(|b| String::from_utf8_lossy(&b).into_owned())
                    .unwrap_or_default();
                let already = ids.split(',').any(|i| i == reg.device_id);
                if !already {
                    if !ids.is_empty() {
                        ids.push(',');
                    }
                    ids.push_str(&reg.device_id);
                    kv.put(idx_key.as_bytes(), ids.as_bytes())
                        .map_err(|e| e.to_string())?;
                }
                Ok(Vec::new())
            }))
            .expect("register iot-register");

        let telemetry_store = jiffy.clone();
        platform
            .register(FunctionSpec::new("iot-telemetry", "iot", move |ctx| {
                // Payload: `device_id|reading`.
                let s = ctx.payload_str().ok_or("bad telemetry")?;
                let (id, reading) = s.split_once('|').ok_or("bad telemetry")?;
                let reading: f64 = reading.parse().map_err(|_| "bad reading")?;
                let kv = telemetry_store
                    .open_kv("/iot/telemetry")
                    .or_else(|_| telemetry_store.create_kv("/iot/telemetry", 2))
                    .map_err(|e| e.to_string())?;
                // Keep last reading and a running (count, sum).
                let stats_key = format!("stats:{id}");
                let (mut count, mut sum) = kv
                    .get(stats_key.as_bytes())
                    .map_err(|e| e.to_string())?
                    .map(|b| {
                        (
                            u64::from_le_bytes(b[0..8].try_into().expect("8")),
                            f64::from_le_bytes(b[8..16].try_into().expect("8")),
                        )
                    })
                    .unwrap_or((0, 0.0));
                count += 1;
                sum += reading;
                let mut buf = Vec::with_capacity(16);
                buf.extend_from_slice(&count.to_le_bytes());
                buf.extend_from_slice(&sum.to_le_bytes());
                kv.put(stats_key.as_bytes(), &buf)
                    .map_err(|e| e.to_string())?;
                kv.put(format!("last:{id}").as_bytes(), &reading.to_le_bytes())
                    .map_err(|e| e.to_string())?;
                Ok(Vec::new())
            }))
            .expect("register iot-telemetry");

        let triggers = TriggerManager::new(platform.clone());
        let registration_queue = triggers.add_queue("iot-register");
        let telemetry_queue = triggers.add_queue("iot-telemetry");
        Self {
            platform: platform.clone(),
            jiffy: jiffy.clone(),
            triggers,
            registration_queue,
            telemetry_queue,
        }
    }

    /// A device registers (event lands on the trigger queue).
    pub fn register_device(&self, reg: &Registration) {
        self.triggers
            .enqueue(self.registration_queue, &reg.encode());
    }

    /// A device reports a reading.
    pub fn report(&self, device_id: &str, reading: f64) {
        self.triggers.enqueue(
            self.telemetry_queue,
            format!("{device_id}|{reading}").as_bytes(),
        );
    }

    /// Pump all queued events through the functions; returns how many ran.
    pub fn process_events(&self) -> usize {
        self.triggers.run_due().map(|v| v.len()).unwrap_or(0)
    }

    /// Query: device metadata.
    pub fn lookup(&self, device_id: &str) -> Option<(String, String)> {
        let kv = self.jiffy.open_kv("/iot/registry").ok()?;
        let b = kv.get(device_id.as_bytes()).ok()??;
        let s = String::from_utf8(b.to_vec()).ok()?;
        let (kind, location) = s.split_once('|')?;
        Some((kind.to_string(), location.to_string()))
    }

    /// Query: device ids of a kind.
    pub fn devices_of_kind(&self, kind: &str) -> Vec<String> {
        let Some(kv) = self.jiffy.open_kv("/iot/registry").ok() else {
            return Vec::new();
        };
        kv.get(format!("kind:{kind}").as_bytes())
            .ok()
            .flatten()
            .map(|b| {
                String::from_utf8_lossy(&b)
                    .split(',')
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Query: (last, mean) of a device's readings.
    pub fn device_stats(&self, device_id: &str) -> Option<(f64, f64)> {
        let kv = self.jiffy.open_kv("/iot/telemetry").ok()?;
        let last = kv.get(format!("last:{device_id}").as_bytes()).ok()??;
        let last = f64::from_le_bytes(last[..].try_into().ok()?);
        let stats = kv.get(format!("stats:{device_id}").as_bytes()).ok()??;
        let count = u64::from_le_bytes(stats[0..8].try_into().ok()?);
        let sum = f64::from_le_bytes(stats[8..16].try_into().ok()?);
        Some((last, sum / count as f64))
    }

    /// The platform (for billing inspection).
    pub fn platform(&self) -> &FaasPlatform {
        &self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;
    use taureau_faas::PlatformConfig;
    use taureau_jiffy::JiffyConfig;

    fn setup() -> IotBackend {
        let clock = VirtualClock::shared();
        let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
        let jiffy = Jiffy::new(JiffyConfig::default(), clock);
        IotBackend::deploy(&platform, &jiffy)
    }

    fn reg(id: &str, kind: &str, loc: &str) -> Registration {
        Registration {
            device_id: id.into(),
            kind: kind.into(),
            location: loc.into(),
        }
    }

    #[test]
    fn registration_roundtrip() {
        let b = setup();
        b.register_device(&reg("dev-1", "thermometer", "cellar"));
        assert_eq!(b.lookup("dev-1"), None, "event not yet processed");
        assert_eq!(b.process_events(), 1);
        assert_eq!(
            b.lookup("dev-1"),
            Some(("thermometer".into(), "cellar".into()))
        );
    }

    #[test]
    fn kind_index_lists_devices() {
        let b = setup();
        b.register_device(&reg("t1", "thermometer", "attic"));
        b.register_device(&reg("t2", "thermometer", "cellar"));
        b.register_device(&reg("c1", "camera", "door"));
        b.process_events();
        let mut therm = b.devices_of_kind("thermometer");
        therm.sort();
        assert_eq!(therm, vec!["t1".to_string(), "t2".to_string()]);
        assert_eq!(b.devices_of_kind("camera"), vec!["c1".to_string()]);
        assert!(b.devices_of_kind("toaster").is_empty());
    }

    #[test]
    fn re_registration_updates_without_duplicate_index() {
        let b = setup();
        b.register_device(&reg("d", "sensor", "here"));
        b.register_device(&reg("d", "sensor", "there"));
        b.process_events();
        assert_eq!(b.lookup("d"), Some(("sensor".into(), "there".into())));
        assert_eq!(b.devices_of_kind("sensor"), vec!["d".to_string()]);
    }

    #[test]
    fn telemetry_tracks_last_and_mean() {
        // The paper's motivating example: "fermentation temperature
        // monitoring with a Raspberry Pi".
        let b = setup();
        b.register_device(&reg("fermenter", "thermometer", "cellar"));
        for t in [18.0, 19.0, 23.0] {
            b.report("fermenter", t);
        }
        b.process_events();
        let (last, mean) = b.device_stats("fermenter").unwrap();
        assert_eq!(last, 23.0);
        assert!((mean - 20.0).abs() < 1e-12);
        assert_eq!(b.device_stats("ghost"), None);
    }

    #[test]
    fn malformed_events_do_not_poison_the_queue() {
        let b = setup();
        b.triggers
            .enqueue(b.registration_queue, b"not a registration without pipes");
        b.register_device(&reg("ok", "sensor", "x"));
        // The malformed event fails its invocation; the valid one lands.
        b.process_events();
        assert!(b.lookup("ok").is_some());
    }

    #[test]
    fn each_event_is_a_billed_invocation() {
        let b = setup();
        for i in 0..5 {
            b.register_device(&reg(&format!("d{i}"), "sensor", "x"));
        }
        b.process_events();
        assert_eq!(b.platform().billing().invocations("iot"), 5);
    }
}
