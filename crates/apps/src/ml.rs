//! Serverless machine learning (§5.2).
//!
//! The paper's training story: "a dataset is partitioned into multiple
//! subsets and then each subset is used to train a given model in parallel
//! on independent serverless instances. Gradients computed by all the
//! instances are collected by a parameter server, which then updates the
//! network parameters." Iterative training is *stateful*, so the parameter
//! server here is a **Jiffy KV object** (the paper: "use of ephemeral
//! storage such as Jiffy can help drive further adoption of serverless for
//! model training").
//!
//! Straggler mitigation follows Gupta et al. [104] / Lee et al. [132]:
//! "in-built resiliency against stragglers … achieved based on
//! error-correcting codes to create redundant computation". We implement
//! the replication form of gradient coding: with redundancy `r`, worker
//! `i` computes shards `{i, i+1, …, i+r−1 (mod W)}`, and the driver needs
//! only the fastest subset of workers that covers all shards — experiment
//! E8 measures the epoch-time win under injected stragglers.
//!
//! Hyperparameter search (Zhang et al.'s Seneca): "concurrently invokes
//! functions for all combinations of the hyperparameters specified and
//! returns the configuration that results in the best score" —
//! [`hyperparameter_search`].

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use taureau_core::hash::hash64;
use taureau_faas::{FaasPlatform, FunctionSpec};
use taureau_jiffy::Jiffy;

/// A dense binary-classification dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature rows.
    pub x: Vec<Vec<f64>>,
    /// Labels in {0, 1}.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// Row range view (for sharding).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Dataset {
        Dataset {
            x: self.x[range.clone()].to_vec(),
            y: self.y[range].to_vec(),
        }
    }
}

/// Generate a linearly-separable-ish logistic dataset; returns the data and
/// the true weight vector.
pub fn synthetic_logreg(n: usize, d: usize, seed: u64) -> (Dataset, Vec<f64>) {
    use rand::Rng;
    let mut rng = taureau_core::rng::det_rng(seed);
    let true_w: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let logit: f64 = row.iter().zip(&true_w).map(|(a, b)| a * b).sum();
        // Mostly-separable labels with 5% flip noise (Bayes ≈ 95%).
        let clean = logit > 0.0;
        let label = if rng.gen::<f64>() < 0.05 {
            !clean
        } else {
            clean
        };
        y.push(if label { 1.0 } else { 0.0 });
        x.push(row);
    }
    (Dataset { x, y }, true_w)
}

/// Logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Mean log-loss of weights on a dataset.
pub fn log_loss(w: &[f64], ds: &Dataset) -> f64 {
    let mut total = 0.0;
    for (row, &label) in ds.x.iter().zip(&ds.y) {
        let z: f64 = row.iter().zip(w).map(|(a, b)| a * b).sum();
        let p = sigmoid(z).clamp(1e-12, 1.0 - 1e-12);
        total -= label * p.ln() + (1.0 - label) * (1.0 - p).ln();
    }
    total / ds.len() as f64
}

/// Classification accuracy at threshold 0.5.
pub fn accuracy(w: &[f64], ds: &Dataset) -> f64 {
    let correct =
        ds.x.iter()
            .zip(&ds.y)
            .filter(|(row, &label)| {
                let z: f64 = row.iter().zip(w).map(|(a, b)| a * b).sum();
                (sigmoid(z) >= 0.5) == (label >= 0.5)
            })
            .count();
    correct as f64 / ds.len() as f64
}

/// Unnormalised gradient sum and example count over a shard.
fn gradient_sum(w: &[f64], ds: &Dataset) -> (Vec<f64>, usize) {
    let d = w.len();
    let mut g = vec![0.0; d];
    for (row, &label) in ds.x.iter().zip(&ds.y) {
        let z: f64 = row.iter().zip(w).map(|(a, b)| a * b).sum();
        let err = sigmoid(z) - label;
        for (gi, xi) in g.iter_mut().zip(row) {
            *gi += err * xi;
        }
    }
    (g, ds.len())
}

/// Full-batch gradient-descent reference trainer. Returns the weights and
/// the per-epoch loss history.
pub fn train_local(ds: &Dataset, lr: f64, epochs: u32) -> (Vec<f64>, Vec<f64>) {
    let d = ds.dim();
    let mut w = vec![0.0; d];
    let mut history = Vec::with_capacity(epochs as usize);
    for _ in 0..epochs {
        let (g, n) = gradient_sum(&w, ds);
        for (wi, gi) in w.iter_mut().zip(&g) {
            *wi -= lr * gi / n as f64;
        }
        history.push(log_loss(&w, ds));
    }
    (w, history)
}

/// Serverless training configuration.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Learning rate.
    pub lr: f64,
    /// Epochs (synchronous rounds).
    pub epochs: u32,
    /// Worker functions per epoch (= data shards).
    pub workers: usize,
    /// Probability a worker straggles in a given epoch.
    pub straggler_prob: f64,
    /// Multiplier on a straggler's compute time.
    pub straggler_slowdown: f64,
    /// Gradient-coding redundancy: each worker computes this many shards
    /// (1 = uncoded).
    pub redundancy: usize,
    /// Simulated compute per example.
    pub compute_per_example: Duration,
    /// Seed for straggler injection.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            lr: 0.5,
            epochs: 10,
            workers: 4,
            straggler_prob: 0.0,
            straggler_slowdown: 5.0,
            redundancy: 1,
            compute_per_example: Duration::from_micros(100),
            seed: 0x5EED,
        }
    }
}

/// Outcome of a serverless training job.
#[derive(Debug)]
pub struct TrainingOutcome {
    /// Final weights.
    pub weights: Vec<f64>,
    /// Per-epoch training loss.
    pub loss_history: Vec<f64>,
    /// Per-epoch simulated wall time: how long the driver waited for the
    /// subset of workers it needed (all of them when uncoded; the fastest
    /// covering subset when coded).
    pub epoch_times: Vec<Duration>,
    /// Total worker invocations.
    pub invocations: u64,
}

impl TrainingOutcome {
    /// Sum of epoch times — the job's simulated critical path.
    pub fn total_time(&self) -> Duration {
        self.epoch_times.iter().sum()
    }
}

fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

fn encode_f64s(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Train logistic regression with a Jiffy-backed parameter server and FaaS
/// gradient workers.
pub fn train_serverless(
    platform: &FaasPlatform,
    jiffy: &Jiffy,
    ds: Arc<Dataset>,
    cfg: &TrainingConfig,
    job: &str,
) -> TrainingOutcome {
    assert!(cfg.workers >= 1);
    assert!(cfg.redundancy >= 1 && cfg.redundancy <= cfg.workers);
    let d = ds.dim();
    let n = ds.len();
    let w_count = cfg.workers;
    let shard_size = n.div_ceil(w_count);

    // Parameter server: weights + per-shard gradients live in Jiffy.
    let params = jiffy
        .create_kv(format!("/{job}/params").as_str(), 1)
        .expect("param server");
    params
        .put(b"w", &encode_f64s(&vec![0.0; d]))
        .expect("seed weights");
    let grads = jiffy
        .create_kv(format!("/{job}/grads").as_str(), w_count.max(1))
        .expect("gradient store");

    // The gradient worker: payload "worker,epoch".
    let fn_name = format!("ml-worker-{job}");
    let ds_for_fn = Arc::clone(&ds);
    let jiffy_for_fn = jiffy.clone();
    let job_owned = job.to_string();
    let cfg_for_fn = cfg.clone();
    let _ = platform.deregister(&fn_name);
    platform
        .register(FunctionSpec::new(&fn_name, "ml", move |ctx| {
            let text = ctx.payload_str().ok_or("bad payload")?;
            let (worker, epoch) = text
                .split_once(',')
                .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<u32>().ok()?)))
                .ok_or("bad coords")?;
            let params = jiffy_for_fn
                .open_kv(format!("/{job_owned}/params").as_str())
                .map_err(|e| e.to_string())?;
            let w = params
                .get(b"w")
                .map_err(|e| e.to_string())?
                .map(|b| decode_f64s(&b))
                .ok_or("missing weights")?;
            let grads = jiffy_for_fn
                .open_kv(format!("/{job_owned}/grads").as_str())
                .map_err(|e| e.to_string())?;
            let mut examples = 0usize;
            // Replicated shards: worker i computes shards i..i+r-1 (mod W).
            for k in 0..cfg_for_fn.redundancy {
                let shard = (worker + k) % cfg_for_fn.workers;
                let lo = shard * shard_size;
                let hi = ((shard + 1) * shard_size).min(ds_for_fn.len());
                if lo >= hi {
                    continue;
                }
                let sub = ds_for_fn.slice(lo..hi);
                let (g, cnt) = gradient_sum(&w, &sub);
                examples += cnt;
                grads
                    .put(format!("e{epoch}-s{shard}").as_bytes(), &encode_f64s(&g))
                    .map_err(|e| e.to_string())?;
            }
            // Simulated compute time, with straggler injection.
            let mut work = cfg_for_fn.compute_per_example * examples as u32;
            let coin = hash64(cfg_for_fn.seed, format!("{worker}:{epoch}").as_bytes());
            if (coin as f64 / u64::MAX as f64) < cfg_for_fn.straggler_prob {
                work = Duration::from_secs_f64(work.as_secs_f64() * cfg_for_fn.straggler_slowdown);
            }
            ctx.burn(work);
            Ok(Vec::new())
        }))
        .expect("register ml worker");

    let mut loss_history = Vec::with_capacity(cfg.epochs as usize);
    let mut epoch_times = Vec::with_capacity(cfg.epochs as usize);
    let mut invocations = 0u64;
    // Shards each worker covers, for the covering-subset computation.
    let coverage: Vec<Vec<usize>> = (0..w_count)
        .map(|wk| (0..cfg.redundancy).map(|k| (wk + k) % w_count).collect())
        .collect();

    for epoch in 0..cfg.epochs {
        // Launch all workers; record each one's simulated duration.
        let mut durations: Vec<(Duration, usize)> = Vec::with_capacity(w_count);
        for wk in 0..w_count {
            let r = platform
                .invoke(&fn_name, format!("{wk},{epoch}").into_bytes())
                .expect("worker invocation");
            invocations += 1;
            durations.push((r.exec_duration, wk));
        }
        // The driver needs the fastest subset of workers covering all
        // shards; with redundancy 1 that is everyone.
        durations.sort();
        let mut covered: HashSet<usize> = HashSet::new();
        let mut wait = Duration::ZERO;
        for &(dur, wk) in &durations {
            for &s in &coverage[wk] {
                covered.insert(s);
            }
            wait = dur;
            if covered.len() == w_count {
                break;
            }
        }
        epoch_times.push(wait);

        // Parameter-server update from the per-shard gradients.
        let w = params
            .get(b"w")
            .expect("weights read")
            .map(|b| decode_f64s(&b))
            .expect("weights present");
        let mut total = vec![0.0; d];
        for shard in 0..w_count {
            let g = grads
                .get(format!("e{epoch}-s{shard}").as_bytes())
                .expect("grad read")
                .map(|b| decode_f64s(&b))
                .expect("shard gradient present");
            for (t, gi) in total.iter_mut().zip(&g) {
                *t += gi;
            }
        }
        let new_w: Vec<f64> = w
            .iter()
            .zip(&total)
            .map(|(wi, gi)| wi - cfg.lr * gi / n as f64)
            .collect();
        params
            .put(b"w", &encode_f64s(&new_w))
            .expect("weights write");
        loss_history.push(log_loss(&new_w, &ds));
    }

    let weights = params
        .get(b"w")
        .expect("final weights")
        .map(|b| decode_f64s(&b))
        .expect("weights present");
    let _ = platform.deregister(&fn_name);
    let _ = jiffy.remove_namespace(format!("/{job}").as_str());
    TrainingOutcome {
        weights,
        loss_history,
        epoch_times,
        invocations,
    }
}

/// Grid hyperparameter search à la Seneca: one serverless training job per
/// candidate learning rate, best final loss wins. Returns the winner and
/// the full (lr, loss) table.
pub fn hyperparameter_search(
    platform: &FaasPlatform,
    jiffy: &Jiffy,
    ds: Arc<Dataset>,
    lrs: &[f64],
    epochs: u32,
) -> (f64, Vec<(f64, f64)>) {
    assert!(!lrs.is_empty());
    let mut table = Vec::with_capacity(lrs.len());
    for (i, &lr) in lrs.iter().enumerate() {
        let cfg = TrainingConfig {
            lr,
            epochs,
            ..TrainingConfig::default()
        };
        let out = train_serverless(platform, jiffy, Arc::clone(&ds), &cfg, &format!("hpo-{i}"));
        table.push((lr, *out.loss_history.last().expect("at least one epoch")));
    }
    let best = table
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
        .expect("non-empty")
        .0;
    (best, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;
    use taureau_faas::PlatformConfig;
    use taureau_jiffy::JiffyConfig;

    fn setup() -> (FaasPlatform, Jiffy) {
        let clock = VirtualClock::shared();
        (
            FaasPlatform::new(PlatformConfig::deterministic(), clock.clone()),
            Jiffy::new(JiffyConfig::default(), clock),
        )
    }

    #[test]
    fn local_training_reduces_loss_and_classifies() {
        let (ds, _) = synthetic_logreg(500, 5, 1);
        let (w, history) = train_local(&ds, 0.5, 50);
        assert!(history.last().unwrap() < &history[0], "{history:?}");
        assert!(accuracy(&w, &ds) > 0.8, "accuracy {}", accuracy(&w, &ds));
    }

    #[test]
    fn serverless_matches_local_full_batch_exactly() {
        let (platform, jiffy) = setup();
        let (ds, _) = synthetic_logreg(200, 4, 2);
        let ds = Arc::new(ds);
        let cfg = TrainingConfig {
            lr: 0.3,
            epochs: 8,
            workers: 4,
            ..TrainingConfig::default()
        };
        let out = train_serverless(&platform, &jiffy, Arc::clone(&ds), &cfg, "match-test");
        let (w_local, hist_local) = train_local(&ds, 0.3, 8);
        for (a, b) in out.weights.iter().zip(&w_local) {
            assert!((a - b).abs() < 1e-12, "weights diverge: {a} vs {b}");
        }
        for (a, b) in out.loss_history.iter().zip(&hist_local) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(out.invocations, 4 * 8);
    }

    #[test]
    fn stragglers_inflate_uncoded_epoch_times() {
        let (platform, jiffy) = setup();
        let (ds, _) = synthetic_logreg(400, 4, 3);
        let ds = Arc::new(ds);
        let base = TrainingConfig {
            epochs: 10,
            workers: 8,
            compute_per_example: Duration::from_micros(200),
            ..TrainingConfig::default()
        };
        let clean = train_serverless(
            &platform,
            &jiffy,
            Arc::clone(&ds),
            &TrainingConfig {
                straggler_prob: 0.0,
                ..base.clone()
            },
            "clean",
        );
        let straggly = train_serverless(
            &platform,
            &jiffy,
            Arc::clone(&ds),
            &TrainingConfig {
                straggler_prob: 0.3,
                ..base
            },
            "straggly",
        );
        assert!(
            straggly.total_time() > clean.total_time(),
            "stragglers {:?} vs clean {:?}",
            straggly.total_time(),
            clean.total_time()
        );
    }

    #[test]
    fn coding_mitigates_stragglers() {
        let (platform, jiffy) = setup();
        let (ds, _) = synthetic_logreg(400, 4, 4);
        let ds = Arc::new(ds);
        let base = TrainingConfig {
            epochs: 10,
            workers: 8,
            straggler_prob: 0.25,
            straggler_slowdown: 10.0,
            compute_per_example: Duration::from_micros(200),
            ..TrainingConfig::default()
        };
        let uncoded = train_serverless(
            &platform,
            &jiffy,
            Arc::clone(&ds),
            &TrainingConfig {
                redundancy: 1,
                ..base.clone()
            },
            "uncoded",
        );
        let coded = train_serverless(
            &platform,
            &jiffy,
            Arc::clone(&ds),
            &TrainingConfig {
                redundancy: 3,
                ..base
            },
            "coded",
        );
        // Same model (full-batch semantics are unchanged by coding)…
        for (a, b) in uncoded.weights.iter().zip(&coded.weights) {
            assert!((a - b).abs() < 1e-12);
        }
        // …but the coded job waits far less for stragglers.
        assert!(
            coded.total_time() < uncoded.total_time(),
            "coded {:?} vs uncoded {:?}",
            coded.total_time(),
            uncoded.total_time()
        );
    }

    #[test]
    fn hyperparameter_search_prefers_reasonable_lr() {
        let (platform, jiffy) = setup();
        let (ds, _) = synthetic_logreg(300, 4, 5);
        let ds = Arc::new(ds);
        let (best, table) = hyperparameter_search(&platform, &jiffy, ds, &[0.001, 0.1, 1.0], 15);
        assert_eq!(table.len(), 3);
        // The degenerate tiny step should not win.
        assert!(best > 0.001, "best lr {best}");
        // Table losses correspond to their lrs.
        let tiny = table.iter().find(|(lr, _)| *lr == 0.001).unwrap().1;
        let best_loss = table.iter().find(|(lr, _)| *lr == best).unwrap().1;
        assert!(best_loss < tiny);
    }

    #[test]
    fn training_cleans_up_ephemeral_state() {
        let (platform, jiffy) = setup();
        let (ds, _) = synthetic_logreg(100, 3, 6);
        let cfg = TrainingConfig {
            epochs: 2,
            ..TrainingConfig::default()
        };
        train_serverless(&platform, &jiffy, Arc::new(ds), &cfg, "cleanup");
        assert!(!jiffy.exists("/cleanup"));
    }
}
