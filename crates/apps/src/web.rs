//! A serverless web application (§3.1, Web Applications).
//!
//! "The data corresponding to the web content (e.g., HTML, CSS, etc.) and
//! any additional database would be stored on a serverless data store. The
//! processing … is handled entirely in an event-driven fashion, where some
//! interactive element … leads to a serverless function being executed."
//!
//! Static assets live in Jiffy file objects; dynamic routes are FaaS
//! functions (page-view counter, session store, guestbook). [`WebApp`]
//! plays the API-gateway role: route → static read or function invocation.

use taureau_faas::{FaasError, FaasPlatform, FunctionSpec};
use taureau_jiffy::Jiffy;

/// An HTTP-ish response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes (refcounted: static-file and function-output responses
    /// share storage with the underlying KV block / handler buffer).
    pub body: bytes::Bytes,
}

impl Response {
    fn ok(body: impl Into<bytes::Bytes>) -> Self {
        Self {
            status: 200,
            body: body.into(),
        }
    }

    fn not_found() -> Self {
        Self {
            status: 404,
            body: bytes::Bytes::from_static(b"not found"),
        }
    }

    /// Body as UTF-8 (convenience).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }
}

/// The deployed web application.
pub struct WebApp {
    platform: FaasPlatform,
    jiffy: Jiffy,
}

impl WebApp {
    /// Deploy static assets and dynamic handler functions.
    pub fn deploy(platform: &FaasPlatform, jiffy: &Jiffy) -> Self {
        // Static content in the serverless store.
        for (path, content) in [
            ("index.html", "<html><body>Le Taureau demo</body></html>"),
            ("style.css", "body { font-family: serif; }"),
        ] {
            let f = jiffy
                .create_file(format!("/webapp/static/{path}").as_str())
                .expect("stage static asset");
            f.append(content.as_bytes()).expect("write asset");
        }

        // Page-view counter (the canonical serverless hello-world).
        let store = jiffy.clone();
        platform
            .register(FunctionSpec::new("web-views", "webapp", move |ctx| {
                let page = ctx.payload_str().ok_or("bad page name")?;
                let kv = store
                    .open_kv("/webapp/state")
                    .or_else(|_| store.create_kv("/webapp/state", 2))
                    .map_err(|e| e.to_string())?;
                let key = format!("views:{page}");
                let n = kv
                    .get(key.as_bytes())
                    .map_err(|e| e.to_string())?
                    .map(|b| u64::from_le_bytes(b[..].try_into().expect("8 bytes")))
                    .unwrap_or(0)
                    + 1;
                kv.put(key.as_bytes(), &n.to_le_bytes())
                    .map_err(|e| e.to_string())?;
                Ok(n.to_string().into_bytes())
            }))
            .expect("register web-views");

        // Guestbook: POST appends, GET lists.
        let store = jiffy.clone();
        platform
            .register(FunctionSpec::new("web-guestbook", "webapp", move |ctx| {
                let q = store
                    .open_queue("/webapp/guestbook")
                    .or_else(|_| store.create_queue("/webapp/guestbook"))
                    .map_err(|e| e.to_string())?;
                if ctx.payload.is_empty() {
                    // GET: drain-and-requeue to list non-destructively.
                    let mut entries = Vec::new();
                    while let Ok(Some(e)) = q.pop() {
                        entries.push(e);
                    }
                    let mut body = Vec::new();
                    for e in &entries {
                        q.push(e).map_err(|e| e.to_string())?;
                        body.extend_from_slice(e);
                        body.push(b'\n');
                    }
                    Ok(body)
                } else {
                    q.push(&ctx.payload).map_err(|e| e.to_string())?;
                    Ok(b"posted".to_vec())
                }
            }))
            .expect("register web-guestbook");

        // Session store: payload "sid set value" / "sid get".
        let store = jiffy.clone();
        platform
            .register(FunctionSpec::new("web-session", "webapp", move |ctx| {
                let text = ctx.payload_str().ok_or("bad request")?;
                let mut parts = text.splitn(3, ' ');
                let sid = parts.next().ok_or("missing session")?;
                let op = parts.next().ok_or("missing op")?;
                let kv = store
                    .open_kv("/webapp/sessions")
                    .or_else(|_| store.create_kv("/webapp/sessions", 2))
                    .map_err(|e| e.to_string())?;
                match op {
                    "set" => {
                        let value = parts.next().ok_or("missing value")?;
                        kv.put(sid.as_bytes(), value.as_bytes())
                            .map_err(|e| e.to_string())?;
                        Ok(b"ok".to_vec())
                    }
                    "get" => Ok(kv
                        .get(sid.as_bytes())
                        .map_err(|e| e.to_string())?
                        .map(|b| b.to_vec())
                        .unwrap_or_default()),
                    _ => Err(format!("unknown op {op}")),
                }
            }))
            .expect("register web-session");

        Self {
            platform: platform.clone(),
            jiffy: jiffy.clone(),
        }
    }

    /// GET a path: `/static/*` reads the store directly (no function —
    /// BaaS serving); `/api/*` invokes the matching function.
    pub fn get(&self, path: &str) -> Response {
        if let Some(asset) = path.strip_prefix("/static/") {
            return match self
                .jiffy
                .open_file(format!("/webapp/static/{asset}").as_str())
                .and_then(|f| f.contents())
            {
                Ok(bytes) => Response::ok(bytes),
                Err(_) => Response::not_found(),
            };
        }
        match path {
            p if p.starts_with("/api/views/") => {
                let page = &p["/api/views/".len()..];
                self.invoke("web-views", page.as_bytes())
            }
            "/api/guestbook" => self.invoke("web-guestbook", &[]),
            _ => Response::not_found(),
        }
    }

    /// POST a path with a body.
    pub fn post(&self, path: &str, body: &[u8]) -> Response {
        match path {
            "/api/guestbook" => self.invoke("web-guestbook", body),
            "/api/session" => self.invoke("web-session", body),
            _ => Response::not_found(),
        }
    }

    fn invoke(&self, function: &str, payload: &[u8]) -> Response {
        match self.platform.invoke(function, payload.to_vec()) {
            Ok(r) => Response::ok(r.output),
            Err(FaasError::FunctionNotFound(_)) => Response::not_found(),
            Err(e) => Response {
                status: 500,
                body: bytes::Bytes::from(e.to_string().into_bytes()),
            },
        }
    }

    /// The platform (for billing inspection).
    pub fn platform(&self) -> &FaasPlatform {
        &self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;
    use taureau_faas::PlatformConfig;
    use taureau_jiffy::JiffyConfig;

    fn app() -> WebApp {
        let clock = VirtualClock::shared();
        let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
        let jiffy = Jiffy::new(JiffyConfig::default(), clock);
        WebApp::deploy(&platform, &jiffy)
    }

    #[test]
    fn static_assets_served_from_store() {
        let a = app();
        let r = a.get("/static/index.html");
        assert_eq!(r.status, 200);
        assert!(r.text().contains("Le Taureau"));
        assert_eq!(a.get("/static/missing.js").status, 404);
    }

    #[test]
    fn static_serving_bills_no_function() {
        let a = app();
        a.get("/static/index.html");
        a.get("/static/style.css");
        assert_eq!(a.platform().billing().invocations("webapp"), 0);
    }

    #[test]
    fn view_counter_increments_per_hit() {
        let a = app();
        assert_eq!(a.get("/api/views/home").text(), "1");
        assert_eq!(a.get("/api/views/home").text(), "2");
        assert_eq!(a.get("/api/views/about").text(), "1");
        assert_eq!(a.get("/api/views/home").text(), "3");
    }

    #[test]
    fn guestbook_posts_and_lists() {
        let a = app();
        assert_eq!(a.post("/api/guestbook", b"hello").text(), "posted");
        assert_eq!(a.post("/api/guestbook", b"world").text(), "posted");
        let list = a.get("/api/guestbook");
        assert_eq!(list.text(), "hello\nworld\n");
        // Listing twice is non-destructive.
        assert_eq!(a.get("/api/guestbook").text(), "hello\nworld\n");
    }

    #[test]
    fn sessions_are_isolated_per_id() {
        let a = app();
        a.post("/api/session", b"alice set cart=3");
        a.post("/api/session", b"bob set cart=7");
        assert_eq!(a.post("/api/session", b"alice get").text(), "cart=3");
        assert_eq!(a.post("/api/session", b"bob get").text(), "cart=7");
        assert_eq!(a.post("/api/session", b"carol get").text(), "");
    }

    #[test]
    fn unknown_routes_404() {
        let a = app();
        assert_eq!(a.get("/nope").status, 404);
        assert_eq!(a.post("/nope", b"x").status, 404);
    }

    #[test]
    fn dynamic_routes_are_billed_per_invocation() {
        let a = app();
        for _ in 0..4 {
            a.get("/api/views/home");
        }
        assert_eq!(a.platform().billing().invocations("webapp"), 4);
    }
}
