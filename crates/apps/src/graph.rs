//! Serverless graph processing (§5.1).
//!
//! "Toader et al. presented a serverless approach to graph processing. It
//! employs the Pregel computation model as its execution model and uses a
//! memory engine … to store intermediate state during graph processing."
//!
//! This module is that system: a Pregel engine whose workers are **FaaS
//! invocations** (one per graph partition per superstep) and whose vertex
//! state and message inboxes live in **Jiffy** (the "memory engine" —
//! Graphless used Redis; the substitution is documented in `DESIGN.md`).
//! Three vertex programs — PageRank, single-source shortest paths, and
//! connected components — plus sequential reference implementations the
//! tests validate against.

use std::sync::Arc;

use taureau_faas::{FaasPlatform, FunctionSpec};
use taureau_jiffy::{Jiffy, QueueHandle};

/// A directed weighted graph in adjacency-list form.
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<(u32, f64)>>,
}

impl Graph {
    /// Graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
        }
    }

    /// Build from an edge list.
    pub fn from_edges(n: usize, edges: &[(u32, u32, f64)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Add a directed edge.
    pub fn add_edge(&mut self, u: u32, v: u32, w: f64) {
        assert!((u as usize) < self.adj.len() && (v as usize) < self.adj.len());
        self.adj[u as usize].push((v, w));
    }

    /// Random G(n, m) multigraph-free digraph, deterministic per seed.
    pub fn random(n: usize, m: usize, seed: u64) -> Self {
        use rand::Rng;
        let mut rng = taureau_core::rng::det_rng(seed);
        let mut g = Self::new(n);
        let mut seen = std::collections::HashSet::new();
        while seen.len() < m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v && seen.insert((u, v)) {
                g.add_edge(u, v, rng.gen_range(1.0..10.0));
            }
        }
        g
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Edge count.
    pub fn m(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Out-neighbors of `u`.
    pub fn neighbors(&self, u: u32) -> &[(u32, f64)] {
        &self.adj[u as usize]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }
}

/// A Pregel vertex program over `f64` vertex values and messages.
pub trait VertexProgram: Send + Sync + 'static {
    /// Initial vertex value.
    fn init(&self, vertex: u32, graph: &Graph) -> f64;

    /// One superstep for `vertex`: current value and (combined) incoming
    /// messages in; returns the new value and the messages to send as
    /// `(destination, message)` pairs. Returning no messages everywhere
    /// ends the computation.
    fn compute(
        &self,
        vertex: u32,
        value: f64,
        messages: &[f64],
        step: u32,
        graph: &Graph,
    ) -> (f64, Vec<(u32, f64)>);

    /// Upper bound on supersteps (safety valve).
    fn max_steps(&self) -> u32 {
        100
    }

    /// Whether vertices compute every superstep even without incoming
    /// messages. Fixed-iteration algorithms (PageRank) need this;
    /// convergence algorithms (SSSP, WCC) use vote-to-halt instead.
    fn always_active(&self) -> bool {
        false
    }
}

/// PageRank with damping `d`, run for exactly `iters` supersteps.
pub struct PageRank {
    /// Damping factor (0.85 classically).
    pub d: f64,
    /// Iterations to run.
    pub iters: u32,
}

impl VertexProgram for PageRank {
    fn init(&self, _vertex: u32, graph: &Graph) -> f64 {
        1.0 / graph.n() as f64
    }

    fn compute(
        &self,
        vertex: u32,
        value: f64,
        messages: &[f64],
        step: u32,
        graph: &Graph,
    ) -> (f64, Vec<(u32, f64)>) {
        let n = graph.n() as f64;
        let new_value = if step == 0 {
            value
        } else {
            (1.0 - self.d) / n + self.d * messages.iter().sum::<f64>()
        };
        if step >= self.iters {
            return (new_value, Vec::new());
        }
        let deg = graph.out_degree(vertex);
        if deg == 0 {
            return (new_value, Vec::new());
        }
        let share = new_value / deg as f64;
        (
            new_value,
            graph
                .neighbors(vertex)
                .iter()
                .map(|&(v, _)| (v, share))
                .collect(),
        )
    }

    fn max_steps(&self) -> u32 {
        self.iters + 1
    }

    fn always_active(&self) -> bool {
        true
    }
}

/// Single-source shortest paths from `source` (Bellman-Ford style Pregel).
pub struct Sssp {
    /// Source vertex.
    pub source: u32,
}

impl VertexProgram for Sssp {
    fn init(&self, vertex: u32, _graph: &Graph) -> f64 {
        if vertex == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn compute(
        &self,
        vertex: u32,
        value: f64,
        messages: &[f64],
        step: u32,
        graph: &Graph,
    ) -> (f64, Vec<(u32, f64)>) {
        let best_incoming = messages.iter().copied().fold(f64::INFINITY, f64::min);
        let new_value = value.min(best_incoming);
        let improved = new_value < value || (step == 0 && new_value.is_finite());
        if !improved {
            return (new_value, Vec::new());
        }
        (
            new_value,
            graph
                .neighbors(vertex)
                .iter()
                .map(|&(v, w)| (v, new_value + w))
                .collect(),
        )
    }

    fn max_steps(&self) -> u32 {
        10_000
    }
}

/// Connected components on the underlying undirected graph: min-label
/// propagation. (Feed a symmetrised graph for the classic semantics.)
pub struct Wcc;

impl VertexProgram for Wcc {
    fn init(&self, vertex: u32, _graph: &Graph) -> f64 {
        vertex as f64
    }

    fn compute(
        &self,
        vertex: u32,
        value: f64,
        messages: &[f64],
        step: u32,
        graph: &Graph,
    ) -> (f64, Vec<(u32, f64)>) {
        let best = messages.iter().copied().fold(value, f64::min);
        let changed = best < value || step == 0;
        if !changed {
            return (value, Vec::new());
        }
        let _ = vertex;
        (
            best,
            graph
                .neighbors(vertex)
                .iter()
                .map(|&(v, _)| (v, best))
                .collect(),
        )
    }

    fn max_steps(&self) -> u32 {
        10_000
    }
}

// ---------------------------------------------------------------------------
// Sequential references.

/// Sequential PageRank (the test oracle).
pub fn pagerank_seq(graph: &Graph, d: f64, iters: u32) -> Vec<f64> {
    let n = graph.n();
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let mut next = vec![(1.0 - d) / n as f64; n];
        for (u, r) in rank.iter().enumerate() {
            let deg = graph.out_degree(u as u32);
            if deg == 0 {
                continue;
            }
            let share = d * r / deg as f64;
            for &(v, _) in graph.neighbors(u as u32) {
                next[v as usize] += share;
            }
        }
        rank = next;
    }
    rank
}

/// Sequential Dijkstra (the SSSP oracle).
pub fn sssp_seq(graph: &Graph, source: u32) -> Vec<f64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = graph.n();
    let mut dist = vec![f64::INFINITY; n];
    dist[source as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((ordered_float(0.0), source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        let d = d as f64 / 1e9;
        if d > dist[u as usize] {
            continue;
        }
        for &(v, w) in graph.neighbors(u) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((ordered_float(nd), v)));
            }
        }
    }
    dist
}

fn ordered_float(f: f64) -> u64 {
    (f * 1e9) as u64
}

/// Sequential union-find components over the directed edges (the WCC
/// oracle when the input graph is symmetrised).
pub fn wcc_seq(graph: &Graph) -> Vec<u32> {
    let n = graph.n();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for u in 0..n as u32 {
        for &(v, _) in graph.neighbors(u) {
            let ru = find(&mut parent, u);
            let rv = find(&mut parent, v);
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

// ---------------------------------------------------------------------------
// The serverless Pregel engine.

/// Outcome of a serverless Pregel run.
#[derive(Debug)]
pub struct PregelOutcome {
    /// Final vertex values.
    pub values: Vec<f64>,
    /// Supersteps executed.
    pub supersteps: u32,
    /// FaaS invocations used (partitions × supersteps).
    pub invocations: u64,
    /// Messages exchanged through Jiffy.
    pub messages: u64,
}

fn encode_msgs(msgs: &[(u32, f64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(msgs.len() * 12);
    for &(dst, val) in msgs {
        out.extend_from_slice(&dst.to_le_bytes());
        out.extend_from_slice(&val.to_le_bytes());
    }
    out
}

fn decode_msgs(bytes: &[u8]) -> Vec<(u32, f64)> {
    bytes
        .chunks_exact(12)
        .map(|c| {
            (
                u32::from_le_bytes(c[0..4].try_into().expect("4")),
                f64::from_le_bytes(c[4..12].try_into().expect("8")),
            )
        })
        .collect()
}

fn inbox(jiffy: &Jiffy, job: &str, part: usize, step: u32) -> QueueHandle {
    let path = format!("/{job}/inbox-{part}-{step}");
    jiffy
        .open_queue(path.as_str())
        .or_else(|_| jiffy.create_queue(path.as_str()))
        .expect("inbox queue")
}

/// Run a vertex program over the graph as a serverless job: `partitions`
/// FaaS invocations per superstep, vertex state in Jiffy KV, messages in
/// Jiffy queues.
pub fn run_pregel<P: VertexProgram>(
    platform: &FaasPlatform,
    jiffy: &Jiffy,
    graph: Arc<Graph>,
    program: Arc<P>,
    partitions: usize,
    job: &str,
) -> PregelOutcome {
    assert!(partitions >= 1);
    let n = graph.n();
    let state = jiffy
        .create_kv(format!("/{job}/state").as_str(), partitions)
        .expect("state kv");
    for v in 0..n as u32 {
        state
            .put(&v.to_le_bytes(), &program.init(v, &graph).to_le_bytes())
            .expect("seed state");
    }

    // The partition worker: payload "part,step".
    let fn_name = format!("pregel-{job}");
    let g = Arc::clone(&graph);
    let prog = Arc::clone(&program);
    let jf = jiffy.clone();
    let job_owned = job.to_string();
    let parts = partitions;
    let _ = platform.deregister(&fn_name);
    platform
        .register(FunctionSpec::new(&fn_name, "pregel", move |ctx| {
            let text = ctx.payload_str().ok_or("bad payload")?;
            let (part, step) = text
                .split_once(',')
                .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<u32>().ok()?)))
                .ok_or("bad coords")?;
            let state = jf
                .open_kv(format!("/{job_owned}/state").as_str())
                .map_err(|e| e.to_string())?;
            // Drain this partition's inbox for this step, grouping by
            // destination vertex.
            let q = inbox(&jf, &job_owned, part, step);
            let mut by_vertex: std::collections::HashMap<u32, Vec<f64>> =
                std::collections::HashMap::new();
            while let Ok(Some(payload)) = q.pop() {
                for (dst, val) in decode_msgs(&payload) {
                    by_vertex.entry(dst).or_default().push(val);
                }
            }
            // Compute every vertex of this partition that is active:
            // at step 0 all are; later only those with messages.
            let mut outgoing: Vec<Vec<(u32, f64)>> = vec![Vec::new(); parts];
            let mut sent = 0u64;
            let my_vertices = (0..g.n() as u32).filter(|v| (*v as usize) % parts == part);
            let always_active = prog.always_active();
            for v in my_vertices {
                let msgs = by_vertex.remove(&v);
                if step > 0 && msgs.is_none() && !always_active {
                    continue; // vote-to-halt: inactive without messages
                }
                let cur = state
                    .get(&v.to_le_bytes())
                    .map_err(|e| e.to_string())?
                    .map(|b| f64::from_le_bytes(b[..].try_into().expect("8 bytes")))
                    .ok_or("missing vertex state")?;
                let (new_val, out) = prog.compute(v, cur, &msgs.unwrap_or_default(), step, &g);
                state
                    .put(&v.to_le_bytes(), &new_val.to_le_bytes())
                    .map_err(|e| e.to_string())?;
                for (dst, m) in out {
                    outgoing[(dst as usize) % parts].push((dst, m));
                    sent += 1;
                }
            }
            // Ship messages to next-step inboxes.
            for (dst_part, msgs) in outgoing.iter().enumerate() {
                if !msgs.is_empty() {
                    let q = inbox(&jf, &job_owned, dst_part, step + 1);
                    q.push(&encode_msgs(msgs)).map_err(|e| e.to_string())?;
                }
            }
            Ok(sent.to_le_bytes().to_vec())
        }))
        .expect("register pregel worker");

    let mut invocations = 0u64;
    let mut messages = 0u64;
    let mut step = 0u32;
    loop {
        let mut sent_this_step = 0u64;
        for part in 0..partitions {
            let r = platform
                .invoke(&fn_name, format!("{part},{step}").into_bytes())
                .expect("superstep invocation");
            invocations += 1;
            sent_this_step += u64::from_le_bytes(r.output[..].try_into().expect("8 bytes"));
        }
        messages += sent_this_step;
        step += 1;
        if sent_this_step == 0 || step >= program.max_steps() {
            break;
        }
    }

    let values = (0..n as u32)
        .map(|v| {
            state
                .get(&v.to_le_bytes())
                .expect("state read")
                .map(|b| f64::from_le_bytes(b[..].try_into().expect("8 bytes")))
                .expect("vertex present")
        })
        .collect();
    let _ = platform.deregister(&fn_name);
    let _ = jiffy.remove_namespace(format!("/{job}").as_str());
    PregelOutcome {
        values,
        supersteps: step,
        invocations,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;
    use taureau_faas::PlatformConfig;
    use taureau_jiffy::JiffyConfig;

    fn setup() -> (FaasPlatform, Jiffy) {
        let clock = VirtualClock::shared();
        (
            FaasPlatform::new(PlatformConfig::deterministic(), clock.clone()),
            Jiffy::new(JiffyConfig::default(), clock),
        )
    }

    fn symmetrize(g: &Graph) -> Graph {
        let mut s = Graph::new(g.n());
        for u in 0..g.n() as u32 {
            for &(v, w) in g.neighbors(u) {
                s.add_edge(u, v, w);
                s.add_edge(v, u, w);
            }
        }
        s
    }

    #[test]
    fn pagerank_serverless_matches_sequential() {
        let (platform, jiffy) = setup();
        let g = Arc::new(Graph::random(60, 300, 1));
        let seq = pagerank_seq(&g, 0.85, 10);
        let out = run_pregel(
            &platform,
            &jiffy,
            Arc::clone(&g),
            Arc::new(PageRank { d: 0.85, iters: 10 }),
            4,
            "pr-test",
        );
        for (v, (a, b)) in out.values.iter().zip(&seq).enumerate() {
            assert!((a - b).abs() < 1e-9, "vertex {v}: {a} vs {b}");
        }
        assert!(out.invocations >= 4 * 10);
    }

    #[test]
    fn sssp_serverless_matches_dijkstra() {
        let (platform, jiffy) = setup();
        let g = Arc::new(Graph::random(50, 250, 2));
        let seq = sssp_seq(&g, 0);
        let out = run_pregel(
            &platform,
            &jiffy,
            Arc::clone(&g),
            Arc::new(Sssp { source: 0 }),
            4,
            "sssp-test",
        );
        for (v, (a, b)) in out.values.iter().zip(&seq).enumerate() {
            if b.is_infinite() {
                assert!(a.is_infinite(), "vertex {v} should be unreachable");
            } else {
                assert!((a - b).abs() < 1e-6, "vertex {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn wcc_serverless_matches_union_find() {
        let (platform, jiffy) = setup();
        let base = Graph::from_edges(
            8,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (3, 4, 1.0),
                (5, 6, 1.0),
                (6, 7, 1.0),
            ],
        );
        let g = Arc::new(symmetrize(&base));
        let seq = wcc_seq(&g);
        let out = run_pregel(
            &platform,
            &jiffy,
            Arc::clone(&g),
            Arc::new(Wcc),
            3,
            "wcc-test",
        );
        let got: Vec<u32> = out.values.iter().map(|&v| v as u32).collect();
        assert_eq!(got, seq);
        // Three components: {0,1,2}, {3,4}, {5,6,7}.
        assert_eq!(got, vec![0, 0, 0, 3, 3, 5, 5, 5]);
    }

    #[test]
    fn sssp_halts_before_max_steps_on_small_graph() {
        let (platform, jiffy) = setup();
        let g = Arc::new(Graph::from_edges(
            4,
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)],
        ));
        let out = run_pregel(
            &platform,
            &jiffy,
            Arc::clone(&g),
            Arc::new(Sssp { source: 0 }),
            2,
            "halt-test",
        );
        // Path graph of length 3: needs ~5 supersteps, far below the cap.
        assert!(out.supersteps < 10, "supersteps {}", out.supersteps);
        assert_eq!(out.values, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn single_partition_degenerates_to_sequential() {
        let (platform, jiffy) = setup();
        let g = Arc::new(Graph::random(20, 60, 3));
        let seq = pagerank_seq(&g, 0.85, 5);
        let out = run_pregel(
            &platform,
            &jiffy,
            Arc::clone(&g),
            Arc::new(PageRank { d: 0.85, iters: 5 }),
            1,
            "single-part",
        );
        for (a, b) in out.values.iter().zip(&seq) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn job_cleans_up_ephemeral_state() {
        let (platform, jiffy) = setup();
        let g = Arc::new(Graph::random(10, 20, 4));
        run_pregel(&platform, &jiffy, g, Arc::new(Wcc), 2, "cleanup-test");
        assert!(!jiffy.exists("/cleanup-test"));
        assert_eq!(jiffy.blocks_held_by("cleanup-test"), 0);
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = Graph::random(100, 500, 5);
        let pr = pagerank_seq(&g, 0.85, 20);
        let total: f64 = pr.iter().sum();
        // With no dangling-mass correction the sum stays near 1 for graphs
        // whose vertices mostly have out-edges.
        assert!((total - 1.0).abs() < 0.2, "sum {total}");
    }
}
