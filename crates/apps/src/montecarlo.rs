//! Monte Carlo simulation on serverless (§5).
//!
//! "Massively parallel applications — be it the traditional Monte Carlo
//! simulation or the contemporary hyperparameter tuning — lend themselves
//! naturally to the serverless paradigm." Each FaaS invocation runs an
//! independently-seeded batch of trials and returns a partial sum; the
//! driver aggregates. Two classic estimators:
//!
//! - [`estimate_pi`]: unit-circle hit counting;
//! - [`price_european_call`]: risk-neutral option pricing under geometric
//!   Brownian motion (the workload HPC shops actually burst to the cloud).
//!
//! Error shrinks as `O(1/√(workers × trials))`, so fan-out buys accuracy at
//! constant wall-clock — the serverless pitch in one line.

use std::sync::Arc;

use taureau_faas::{FaasPlatform, FunctionSpec};

/// Outcome of a fan-out Monte Carlo job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloOutcome {
    /// The aggregated estimate.
    pub estimate: f64,
    /// Total trials across all workers.
    pub trials: u64,
    /// FaaS invocations used.
    pub invocations: u64,
}

use taureau_core::rng::standard_normal;

/// Estimate π with `workers × trials_per_worker` dart throws, one FaaS
/// invocation per worker.
pub fn estimate_pi(
    platform: &FaasPlatform,
    workers: u32,
    trials_per_worker: u64,
    seed: u64,
) -> MonteCarloOutcome {
    assert!(workers >= 1 && trials_per_worker >= 1);
    let fn_name = "mc-pi";
    let _ = platform.deregister(fn_name);
    platform
        .register(FunctionSpec::new(fn_name, "montecarlo", move |ctx| {
            use rand::Rng;
            let worker: u64 = ctx
                .payload_str()
                .and_then(|s| s.parse().ok())
                .ok_or("bad id")?;
            let mut rng = taureau_core::rng::det_rng(seed ^ (worker + 1).wrapping_mul(0x9e37));
            let mut hits = 0u64;
            for _ in 0..trials_per_worker {
                let x: f64 = rng.gen_range(-1.0..1.0);
                let y: f64 = rng.gen_range(-1.0..1.0);
                if x * x + y * y <= 1.0 {
                    hits += 1;
                }
            }
            Ok(hits.to_le_bytes().to_vec())
        }))
        .expect("register");
    let mut hits = 0u64;
    for w in 0..workers {
        let r = platform
            .invoke(fn_name, w.to_string().into_bytes())
            .expect("worker invocation");
        hits += u64::from_le_bytes(r.output[..].try_into().expect("8 bytes"));
    }
    let trials = workers as u64 * trials_per_worker;
    let _ = platform.deregister(fn_name);
    MonteCarloOutcome {
        estimate: 4.0 * hits as f64 / trials as f64,
        trials,
        invocations: workers as u64,
    }
}

/// Parameters of a European call option.
#[derive(Debug, Clone, Copy)]
pub struct CallOption {
    /// Spot price.
    pub spot: f64,
    /// Strike price.
    pub strike: f64,
    /// Risk-free rate (annualised).
    pub rate: f64,
    /// Volatility (annualised).
    pub volatility: f64,
    /// Time to expiry in years.
    pub expiry: f64,
}

/// Black–Scholes closed form (the oracle the Monte Carlo estimate is
/// validated against).
pub fn black_scholes_call(o: &CallOption) -> f64 {
    let d1 = ((o.spot / o.strike).ln() + (o.rate + o.volatility * o.volatility / 2.0) * o.expiry)
        / (o.volatility * o.expiry.sqrt());
    let d2 = d1 - o.volatility * o.expiry.sqrt();
    o.spot * phi(d1) - o.strike * (-o.rate * o.expiry).exp() * phi(d2)
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7, ample for validating a Monte Carlo estimate).
fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Price a European call by risk-neutral simulation across FaaS workers.
pub fn price_european_call(
    platform: &FaasPlatform,
    option: CallOption,
    workers: u32,
    trials_per_worker: u64,
    seed: u64,
) -> MonteCarloOutcome {
    assert!(workers >= 1 && trials_per_worker >= 1);
    let fn_name = "mc-option";
    let opt = Arc::new(option);
    let _ = platform.deregister(fn_name);
    platform
        .register(FunctionSpec::new(fn_name, "montecarlo", move |ctx| {
            let worker: u64 = ctx
                .payload_str()
                .and_then(|s| s.parse().ok())
                .ok_or("bad id")?;
            let mut rng = taureau_core::rng::det_rng(seed ^ (worker + 1).wrapping_mul(0xACE1));
            let o = *opt;
            let drift = (o.rate - o.volatility * o.volatility / 2.0) * o.expiry;
            let vol = o.volatility * o.expiry.sqrt();
            let mut payoff_sum = 0.0f64;
            for _ in 0..trials_per_worker {
                let z = standard_normal(&mut rng);
                let terminal = o.spot * (drift + vol * z).exp();
                payoff_sum += (terminal - o.strike).max(0.0);
            }
            Ok(payoff_sum.to_le_bytes().to_vec())
        }))
        .expect("register");
    let mut total_payoff = 0.0;
    for w in 0..workers {
        let r = platform
            .invoke(fn_name, w.to_string().into_bytes())
            .expect("worker invocation");
        total_payoff += f64::from_le_bytes(r.output[..].try_into().expect("8 bytes"));
    }
    let trials = workers as u64 * trials_per_worker;
    let discounted = (total_payoff / trials as f64) * (-option.rate * option.expiry).exp();
    let _ = platform.deregister(fn_name);
    MonteCarloOutcome {
        estimate: discounted,
        trials,
        invocations: workers as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;
    use taureau_faas::PlatformConfig;

    fn platform() -> FaasPlatform {
        FaasPlatform::new(PlatformConfig::deterministic(), VirtualClock::shared())
    }

    #[test]
    fn pi_converges() {
        let p = platform();
        let out = estimate_pi(&p, 8, 50_000, 1);
        assert_eq!(out.invocations, 8);
        assert_eq!(out.trials, 400_000);
        assert!(
            (out.estimate - std::f64::consts::PI).abs() < 0.02,
            "pi estimate {}",
            out.estimate
        );
    }

    #[test]
    fn more_workers_tighter_estimate() {
        let p = platform();
        let small = estimate_pi(&p, 1, 2_000, 2);
        let big = estimate_pi(&p, 32, 2_000, 2);
        let err_small = (small.estimate - std::f64::consts::PI).abs();
        let err_big = (big.estimate - std::f64::consts::PI).abs();
        assert!(
            err_big < err_small,
            "fan-out should tighten the estimate: {err_small} -> {err_big}"
        );
    }

    #[test]
    fn phi_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!((phi(1.96) - 0.975).abs() < 1e-3);
        assert!((phi(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn option_price_matches_black_scholes() {
        let p = platform();
        let option = CallOption {
            spot: 100.0,
            strike: 105.0,
            rate: 0.05,
            volatility: 0.2,
            expiry: 1.0,
        };
        let closed_form = black_scholes_call(&option);
        let mc = price_european_call(&p, option, 16, 50_000, 3);
        let rel_err = (mc.estimate - closed_form).abs() / closed_form;
        assert!(
            rel_err < 0.02,
            "MC {} vs BS {closed_form} (rel err {rel_err})",
            mc.estimate
        );
        // Sanity: a 5%-OTM one-year call at 20% vol prices near $8.
        assert!((6.0..11.0).contains(&closed_form), "BS {closed_form}");
    }

    #[test]
    fn workers_are_billed() {
        let p = platform();
        estimate_pi(&p, 4, 100, 5);
        assert_eq!(p.billing().invocations("montecarlo"), 4);
    }
}
