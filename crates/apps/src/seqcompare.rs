//! Serverless sequence comparison (§5.1, Sequence comparison).
//!
//! "Niu et al. illustrate the use of serverless to carry out an all-to-all
//! pairwise comparison among all unique human proteins." Pairwise scoring
//! is Smith–Waterman local alignment; the all-pairs job fans out one FaaS
//! invocation per sequence pair, with the sequence corpus staged in Jiffy
//! and scores written back as ephemeral state.

use std::sync::Arc;

use taureau_faas::{FaasPlatform, FunctionSpec};
use taureau_jiffy::Jiffy;

/// Smith–Waterman local alignment score with linear gap penalty.
pub fn smith_waterman(a: &[u8], b: &[u8], match_s: i32, mismatch: i32, gap: i32) -> i32 {
    assert!(match_s > 0 && mismatch <= 0 && gap <= 0);
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return 0;
    }
    // One-row DP.
    let mut prev = vec![0i32; m + 1];
    let mut best = 0;
    for i in 1..=n {
        let mut diag = 0; // prev[j-1] from the previous row
        for j in 1..=m {
            let up = prev[j];
            let sub = diag
                + if a[i - 1] == b[j - 1] {
                    match_s
                } else {
                    mismatch
                };
            let score = 0.max(sub).max(up + gap).max(prev[j - 1] + gap);
            diag = prev[j];
            prev[j] = score;
            best = best.max(score);
        }
        // Reset row start: prev[0] stays 0 (local alignment).
        // `diag` handling above consumed the old prev values correctly
        // because prev[j-1] was updated before being read as the left cell.
        let _ = diag;
    }
    best
}

/// Generate `n` random protein-ish sequences over the 20-letter alphabet,
/// with some shared motifs so similarity structure exists.
pub fn synthetic_proteins(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    use rand::Rng;
    const AA: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
    let mut rng = taureau_core::rng::det_rng(seed);
    let motif: Vec<u8> = (0..len / 4)
        .map(|_| AA[rng.gen_range(0..AA.len())])
        .collect();
    (0..n)
        .map(|i| {
            let mut s: Vec<u8> = (0..len).map(|_| AA[rng.gen_range(0..AA.len())]).collect();
            // Even-indexed sequences share the motif (one "family").
            if i % 2 == 0 && len >= motif.len() {
                let at = rng.gen_range(0..=len - motif.len());
                s[at..at + motif.len()].copy_from_slice(&motif);
            }
            s
        })
        .collect()
}

/// Result of the all-pairs job.
#[derive(Debug)]
pub struct AllPairsOutcome {
    /// Upper-triangle scores: `scores[i][j - i - 1]` is the score of
    /// `(i, j)` for `j > i`.
    pub scores: Vec<Vec<i32>>,
    /// FaaS invocations used.
    pub invocations: u64,
}

impl AllPairsOutcome {
    /// Score of an unordered pair.
    pub fn score(&self, i: usize, j: usize) -> i32 {
        assert_ne!(i, j);
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.scores[lo][hi - lo - 1]
    }

    /// The `k` highest-scoring pairs, descending.
    pub fn top_pairs(&self, k: usize) -> Vec<(usize, usize, i32)> {
        let mut all: Vec<(usize, usize, i32)> = self
            .scores
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.iter()
                    .enumerate()
                    .map(move |(off, &s)| (i, i + off + 1, s))
            })
            .collect();
        all.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }
}

/// Run the all-to-all comparison as a serverless job: sequences staged in
/// Jiffy, one invocation per pair.
pub fn all_pairs_serverless(
    platform: &FaasPlatform,
    jiffy: &Jiffy,
    sequences: Arc<Vec<Vec<u8>>>,
    job: &str,
) -> AllPairsOutcome {
    let n = sequences.len();
    assert!(n >= 2);
    // Stage the corpus as ephemeral state (as Niu et al. stage FASTA
    // shards in object storage).
    let corpus = jiffy
        .create_kv(format!("/{job}/corpus").as_str(), 2)
        .expect("stage corpus");
    for (i, s) in sequences.iter().enumerate() {
        corpus
            .put(&(i as u32).to_le_bytes(), s)
            .expect("stage sequence");
    }
    let fn_name = format!("seqcmp-{job}");
    let jf = jiffy.clone();
    let job_owned = job.to_string();
    let _ = platform.deregister(&fn_name);
    platform
        .register(FunctionSpec::new(&fn_name, "bio", move |ctx| {
            let text = ctx.payload_str().ok_or("bad payload")?;
            let (i, j) = text
                .split_once(',')
                .and_then(|(a, b)| Some((a.parse::<u32>().ok()?, b.parse::<u32>().ok()?)))
                .ok_or("bad pair")?;
            let corpus = jf
                .open_kv(format!("/{job_owned}/corpus").as_str())
                .map_err(|e| e.to_string())?;
            let a = corpus
                .get(&i.to_le_bytes())
                .map_err(|e| e.to_string())?
                .ok_or("missing sequence")?;
            let b = corpus
                .get(&j.to_le_bytes())
                .map_err(|e| e.to_string())?
                .ok_or("missing sequence")?;
            let score = smith_waterman(&a, &b, 2, -1, -1);
            Ok(score.to_le_bytes().to_vec())
        }))
        .expect("register seqcmp worker");

    let mut scores = Vec::with_capacity(n);
    let mut invocations = 0u64;
    for i in 0..n {
        let mut row = Vec::with_capacity(n - i - 1);
        for j in i + 1..n {
            let r = platform
                .invoke(&fn_name, format!("{i},{j}").into_bytes())
                .expect("pair invocation");
            invocations += 1;
            row.push(i32::from_le_bytes(
                r.output[..].try_into().expect("4 bytes"),
            ));
        }
        scores.push(row);
    }
    let _ = platform.deregister(&fn_name);
    let _ = jiffy.remove_namespace(format!("/{job}").as_str());
    AllPairsOutcome {
        scores,
        invocations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::clock::VirtualClock;
    use taureau_faas::PlatformConfig;
    use taureau_jiffy::JiffyConfig;

    fn sw(a: &[u8], b: &[u8]) -> i32 {
        smith_waterman(a, b, 2, -1, -1)
    }

    #[test]
    fn identical_sequences_score_full_match() {
        assert_eq!(sw(b"ACGT", b"ACGT"), 8);
        assert_eq!(sw(b"A", b"A"), 2);
    }

    #[test]
    fn disjoint_sequences_score_low() {
        // Local alignment floor is 0; a single accidental match scores 2.
        assert!(sw(b"AAAA", b"TTTT") <= 2);
        assert_eq!(sw(b"", b"ACGT"), 0);
    }

    #[test]
    fn substring_found_locally() {
        // "CGT" embedded in noise on both sides.
        assert_eq!(sw(b"AACGTAA", b"TTCGTTT"), 6);
    }

    #[test]
    fn gap_handling_known_case() {
        // "ACGT" vs "ACT": align ACT with one gap (A C - T): 3 matches
        // (6) minus one gap (-1) = 5, or just "AC" = 4; best is 5.
        assert_eq!(sw(b"ACGT", b"ACT"), 5);
    }

    #[test]
    fn symmetric() {
        let (a, b) = (b"MKVLAA".as_slice(), b"KVLWAA".as_slice());
        assert_eq!(sw(a, b), sw(b, a));
    }

    #[test]
    fn all_pairs_serverless_matches_local() {
        let clock = VirtualClock::shared();
        let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
        let jiffy = Jiffy::new(JiffyConfig::default(), clock);
        let seqs = Arc::new(synthetic_proteins(6, 40, 1));
        let out = all_pairs_serverless(&platform, &jiffy, Arc::clone(&seqs), "aptest");
        assert_eq!(out.invocations, 15); // C(6,2)
        for i in 0..6 {
            for j in i + 1..6 {
                assert_eq!(out.score(i, j), sw(&seqs[i], &seqs[j]), "pair ({i},{j})");
            }
        }
        assert!(!jiffy.exists("/aptest"));
    }

    #[test]
    fn family_members_score_higher() {
        // Even-indexed sequences share a motif; the top pair should be an
        // even-even pair.
        let clock = VirtualClock::shared();
        let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
        let jiffy = Jiffy::new(JiffyConfig::default(), clock);
        let seqs = Arc::new(synthetic_proteins(8, 60, 2));
        let out = all_pairs_serverless(&platform, &jiffy, seqs, "famtest");
        let (i, j, _) = out.top_pairs(1)[0];
        assert!(i % 2 == 0 && j % 2 == 0, "top pair ({i},{j}) not in family");
    }
}
