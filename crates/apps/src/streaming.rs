//! Windowed streaming analytics (§5.1).
//!
//! The paper positions Pulsar Functions as the substrate for "analytics on
//! real-time data streams in a serverless fashion" and cites the
//! real-time-analytics literature (Kejariwal et al.). Sketches cover the
//! approximate side; this module adds the *exact* windowed operators every
//! streaming engine provides:
//!
//! - [`TumblingWindow`]: fixed, non-overlapping windows;
//! - [`SlidingWindow`]: overlapping windows (width + slide);
//!
//! both with **event-time** semantics and watermark-based firing: events
//! may arrive out of order up to `allowed_lateness`; a window fires once
//! the watermark (max event time seen − lateness) passes its end; events
//! later than that are counted as dropped, never silently mis-aggregated.
//! [`deploy_windowed_function`] hosts an operator inside a Pulsar function.

use std::collections::BTreeMap;
use std::time::Duration;

use taureau_pulsar::{FunctionConfig, FunctionRuntime, PulsarError};

/// Aggregate of one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Events in the window.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl WindowStats {
    fn new(v: f64) -> Self {
        Self {
            count: 1,
            sum: v,
            min: v,
            max: v,
        }
    }

    fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean value.
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

/// A fired window: `[start, start + width)` and its aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct FiredWindow {
    /// Window start (event time).
    pub start: Duration,
    /// Aggregate over the window.
    pub stats: WindowStats,
}

/// Tumbling event-time windows.
#[derive(Debug)]
pub struct TumblingWindow {
    width: Duration,
    allowed_lateness: Duration,
    open: BTreeMap<u64, WindowStats>, // key: window start nanos
    watermark: Duration,
    /// Events dropped for arriving after their window fired.
    pub late_dropped: u64,
}

impl TumblingWindow {
    /// Windows of `width`, tolerating out-of-orderness up to
    /// `allowed_lateness`.
    pub fn new(width: Duration, allowed_lateness: Duration) -> Self {
        assert!(!width.is_zero());
        Self {
            width,
            allowed_lateness,
            open: BTreeMap::new(),
            watermark: Duration::ZERO,
            late_dropped: 0,
        }
    }

    fn window_start(&self, t: Duration) -> u64 {
        let w = self.width.as_nanos() as u64;
        (t.as_nanos() as u64 / w) * w
    }

    /// Current watermark.
    pub fn watermark(&self) -> Duration {
        self.watermark
    }

    /// Open (unfired) windows.
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// Ingest one event; returns any windows that fired as a result.
    pub fn process(&mut self, event_time: Duration, value: f64) -> Vec<FiredWindow> {
        self.watermark = self
            .watermark
            .max(event_time.saturating_sub(self.allowed_lateness));
        let start = self.window_start(event_time);
        let end = Duration::from_nanos(start) + self.width;
        if end <= self.watermark {
            self.late_dropped += 1;
        } else {
            self.open
                .entry(start)
                .and_modify(|s| s.add(value))
                .or_insert_with(|| WindowStats::new(value));
        }
        self.drain_fired()
    }

    /// Fire every window whose end is at or before the watermark.
    fn drain_fired(&mut self) -> Vec<FiredWindow> {
        let mut fired = Vec::new();
        let w = self.width;
        let wm = self.watermark;
        let ready: Vec<u64> = self
            .open
            .keys()
            .copied()
            .take_while(|&s| Duration::from_nanos(s) + w <= wm)
            .collect();
        for s in ready {
            let stats = self.open.remove(&s).expect("present");
            fired.push(FiredWindow {
                start: Duration::from_nanos(s),
                stats,
            });
        }
        fired
    }

    /// Flush all open windows (stream end).
    pub fn flush(&mut self) -> Vec<FiredWindow> {
        let mut fired: Vec<FiredWindow> = self
            .open
            .iter()
            .map(|(&s, &stats)| FiredWindow {
                start: Duration::from_nanos(s),
                stats,
            })
            .collect();
        self.open.clear();
        fired.sort_by_key(|f| f.start);
        fired
    }
}

/// Sliding event-time windows: width `width`, advancing by `slide`.
#[derive(Debug)]
pub struct SlidingWindow {
    width: Duration,
    slide: Duration,
    inner: TumblingWindow, // panes of size `slide`
    /// Closed panes by start nanos, kept for combining into windows.
    closed_panes: BTreeMap<u64, WindowStats>,
}

impl SlidingWindow {
    /// Overlapping windows; `width` must be a multiple of `slide`.
    pub fn new(width: Duration, slide: Duration, allowed_lateness: Duration) -> Self {
        assert!(!slide.is_zero());
        assert_eq!(
            width.as_nanos() % slide.as_nanos(),
            0,
            "width must be a multiple of slide"
        );
        Self {
            width,
            slide,
            inner: TumblingWindow::new(slide, allowed_lateness),
            closed_panes: BTreeMap::new(),
        }
    }

    /// Panes per window.
    fn panes(&self) -> u64 {
        (self.width.as_nanos() / self.slide.as_nanos()) as u64
    }

    /// Ingest one event. Uses the pane trick: aggregate `slide`-sized
    /// panes, combine the trailing `width/slide` panes when a pane closes.
    /// Returns completed *sliding* windows (identified by their start).
    pub fn process(&mut self, event_time: Duration, value: f64) -> Vec<FiredWindow> {
        let fired_panes = self.inner.process(event_time, value);
        let mut out = Vec::new();
        for pane in fired_panes {
            self.closed_panes
                .insert(pane.start.as_nanos() as u64, pane.stats);
            // The sliding window ending at this pane's end is complete.
            let end = pane.start + self.slide;
            let start = end.checked_sub(self.width).unwrap_or(Duration::ZERO);
            if end >= self.width {
                if let Some(stats) = self.combine(start) {
                    out.push(FiredWindow { start, stats });
                }
            }
        }
        out
    }

    fn combine(&self, start: Duration) -> Option<WindowStats> {
        let mut acc: Option<WindowStats> = None;
        for i in 0..self.panes() {
            let pane_start =
                (start + Duration::from_nanos(i * self.slide.as_nanos() as u64)).as_nanos() as u64;
            if let Some(s) = self.closed_panes.get(&pane_start) {
                match &mut acc {
                    None => acc = Some(*s),
                    Some(a) => {
                        a.count += s.count;
                        a.sum += s.sum;
                        a.min = a.min.min(s.min);
                        a.max = a.max.max(s.max);
                    }
                }
            }
        }
        acc
    }

    /// Events dropped as late.
    pub fn late_dropped(&self) -> u64 {
        self.inner.late_dropped
    }
}

/// Wire format for windowed events: `"<event_time_ms>|<value>"`.
pub fn encode_event(event_time: Duration, value: f64) -> Vec<u8> {
    format!("{}|{}", event_time.as_millis(), value).into_bytes()
}

fn decode_event(bytes: &[u8]) -> Option<(Duration, f64)> {
    let s = std::str::from_utf8(bytes).ok()?;
    let (t, v) = s.split_once('|')?;
    Some((Duration::from_millis(t.parse().ok()?), v.parse().ok()?))
}

/// Wire format for fired windows:
/// `"<start_ms>|<count>|<sum>|<min>|<max>"`.
pub fn decode_fired(bytes: &[u8]) -> Option<FiredWindow> {
    let s = std::str::from_utf8(bytes).ok()?;
    let parts: Vec<&str> = s.split('|').collect();
    if parts.len() != 5 {
        return None;
    }
    Some(FiredWindow {
        start: Duration::from_millis(parts[0].parse().ok()?),
        stats: WindowStats {
            count: parts[1].parse().ok()?,
            sum: parts[2].parse().ok()?,
            min: parts[3].parse().ok()?,
            max: parts[4].parse().ok()?,
        },
    })
}

/// Deploy a tumbling-window aggregator as a Pulsar function: consumes
/// `"<ts>|<value>"` events from `input`, publishes one
/// `"<start>|<count>|<sum>|<min>|<max>"` message per fired window to
/// `output`.
pub fn deploy_windowed_function(
    runtime: &FunctionRuntime,
    name: &str,
    input: &str,
    output: &str,
    width: Duration,
    allowed_lateness: Duration,
) -> Result<(), PulsarError> {
    let mut window = TumblingWindow::new(width, allowed_lateness);
    let output_topic = output.to_string();
    let encode = |f: &FiredWindow| {
        format!(
            "{}|{}|{}|{}|{}",
            f.start.as_millis(),
            f.stats.count,
            f.stats.sum,
            f.stats.min,
            f.stats.max
        )
        .into_bytes()
    };
    runtime.register(
        FunctionConfig {
            name: name.to_string(),
            inputs: vec![input.to_string()],
            output: Some(output.to_string()),
        },
        Box::new(move |msg, ctx| {
            let (t, v) = decode_event(&msg.payload)?;
            let fired = window.process(t, v);
            let mut it = fired.into_iter();
            let first = it.next();
            // If several windows close on one event, ship the extras via
            // explicit publishes; the first rides the function's output.
            for f in it {
                let _ = ctx.publish_to(&output_topic, &encode(&f));
            }
            first.map(|f| encode(&f))
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn tumbling_fires_on_watermark() {
        let mut w = TumblingWindow::new(ms(100), ms(0));
        assert!(w.process(ms(10), 1.0).is_empty());
        assert!(w.process(ms(50), 2.0).is_empty());
        // An event at 120 pushes the watermark past [0,100).
        let fired = w.process(ms(120), 3.0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].start, ms(0));
        assert_eq!(fired[0].stats.count, 2);
        assert_eq!(fired[0].stats.sum, 3.0);
        assert_eq!(w.open_windows(), 1);
    }

    #[test]
    fn out_of_order_within_lateness_is_counted() {
        let mut w = TumblingWindow::new(ms(100), ms(50));
        w.process(ms(120), 1.0); // watermark = 70
                                 // An out-of-order event for [0,100) still lands (70 < 100).
        assert!(w.process(ms(80), 2.0).is_empty());
        // Advance watermark past 100: the window fires with both… wait,
        // the 120 event is in [100,200). [0,100) holds only the 80 event.
        let fired = w.process(ms(200), 3.0); // watermark = 150
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].stats.count, 1);
        assert_eq!(fired[0].stats.sum, 2.0);
    }

    #[test]
    fn too_late_events_are_dropped_and_counted() {
        let mut w = TumblingWindow::new(ms(100), ms(0));
        w.process(ms(50), 1.0);
        w.process(ms(250), 1.0); // watermark 250: [0,100) fired
        let before = w.late_dropped;
        w.process(ms(60), 99.0); // hopelessly late
        assert_eq!(w.late_dropped, before + 1);
        // The fired window was not retro-poisoned: flush only has [200,300).
        let remaining = w.flush();
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].start, ms(200));
    }

    #[test]
    fn stats_track_min_max_mean() {
        let mut w = TumblingWindow::new(ms(1000), ms(0));
        for (t, v) in [(10, 4.0), (20, -2.0), (30, 7.0)] {
            w.process(ms(t), v);
        }
        let fired = w.flush();
        let s = fired[0].stats;
        assert_eq!(s.count, 3);
        assert_eq!(s.min, -2.0);
        assert_eq!(s.max, 7.0);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_windows_overlap() {
        // width 200, slide 100: window [0,200) and [100,300) both see the
        // event at 150.
        let mut w = SlidingWindow::new(ms(200), ms(100), ms(0));
        w.process(ms(50), 1.0);
        w.process(ms(150), 2.0);
        let mut fired = Vec::new();
        fired.extend(w.process(ms(250), 3.0));
        fired.extend(w.process(ms(350), 4.0));
        fired.extend(w.process(ms(450), 5.0));
        // Window [0,200): events at 50,150 → sum 3. Window [100,300):
        // events 150,250 → sum 5.
        let w0 = fired.iter().find(|f| f.start == ms(0)).expect("[0,200)");
        assert_eq!(w0.stats.sum, 3.0);
        assert_eq!(w0.stats.count, 2);
        let w1 = fired
            .iter()
            .find(|f| f.start == ms(100))
            .expect("[100,300)");
        assert_eq!(w1.stats.sum, 5.0);
    }

    #[test]
    fn windowed_function_end_to_end() {
        use taureau_core::clock::WallClock;
        use taureau_jiffy::Jiffy;
        use taureau_pulsar::{PulsarCluster, PulsarConfig, SubscriptionMode};
        let cluster = PulsarCluster::new(PulsarConfig::default(), WallClock::shared());
        let runtime = FunctionRuntime::new(cluster.clone(), Jiffy::with_defaults());
        cluster.create_topic("readings", 1).unwrap();
        cluster.create_topic("minutely", 1).unwrap();
        deploy_windowed_function(
            &runtime,
            "per-100ms-stats",
            "readings",
            "minutely",
            ms(100),
            ms(0),
        )
        .unwrap();
        let p = cluster.producer("readings").unwrap();
        // 10 events per 100 ms window across 3 windows, plus a late tick
        // to flush the third.
        for i in 0..30u64 {
            p.send(&encode_event(ms(i * 10), i as f64)).unwrap();
        }
        p.send(&encode_event(ms(1000), 0.0)).unwrap();
        runtime.run_available("per-100ms-stats").unwrap();
        let mut out = cluster
            .subscribe("minutely", "check", SubscriptionMode::Exclusive)
            .unwrap();
        let fired: Vec<FiredWindow> = out
            .drain()
            .unwrap()
            .iter()
            .map(|m| decode_fired(&m.payload).unwrap())
            .collect();
        assert_eq!(fired.len(), 3);
        assert_eq!(fired[0].start, ms(0));
        assert_eq!(fired[0].stats.count, 10);
        assert_eq!(fired[0].stats.sum, (0..10).sum::<u64>() as f64);
        assert_eq!(fired[2].stats.sum, (20..30).sum::<u64>() as f64);
    }

    #[test]
    fn event_codec_roundtrip() {
        let enc = encode_event(ms(1234), 5.5);
        assert_eq!(decode_event(&enc), Some((ms(1234), 5.5)));
        assert_eq!(decode_event(b"garbage"), None);
        let fired = FiredWindow {
            start: ms(100),
            stats: WindowStats {
                count: 3,
                sum: 6.0,
                min: 1.0,
                max: 3.0,
            },
        };
        let enc = format!(
            "{}|{}|{}|{}|{}",
            fired.start.as_millis(),
            fired.stats.count,
            fired.stats.sum,
            fired.stats.min,
            fired.stats.max
        );
        assert_eq!(decode_fired(enc.as_bytes()), Some(fired));
    }
}
