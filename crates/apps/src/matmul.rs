//! Matrix multiplication in a serverless setting (§5.1).
//!
//! "Werner et al. illustrated distributed execution of Strassen's algorithm
//! for MATMUL in a serverless setting" — with the observation that
//! "distributed execution … requires support for ephemeral storage of
//! intermediate results (refer to §4.4)". This module provides:
//!
//! - a dense [`Matrix`] with three local algorithms: naive triple loop,
//!   cache-blocked, and [`Matrix::strassen`] (the paper's reference [170]);
//! - [`distributed_multiply`]: a tiled multiply where each output tile is
//!   computed by a *serverless function invocation* that reads its operand
//!   panels from **Jiffy** and writes its tile back — the exact
//!   ephemeral-intermediate pattern the paper describes.

use taureau_faas::{FaasPlatform, FunctionSpec};
use taureau_jiffy::Jiffy;

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// From row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self { rows, cols, data }
    }

    /// Deterministic pseudo-random matrix in `[-1, 1)`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        use rand::Rng;
        let mut rng = taureau_core::rng::det_rng(seed);
        Self {
            rows,
            cols,
            data: (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Maximum absolute element difference; `None` if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Serialize to bytes: `[rows u32][cols u32][f64 le]*` — the wire form
    /// stored in Jiffy between serverless tasks.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.data.len() * 8);
        out.extend_from_slice(&(self.rows as u32).to_le_bytes());
        out.extend_from_slice(&(self.cols as u32).to_le_bytes());
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserialize; `None` if malformed.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let rows = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let cols = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let need = 8 + rows * cols * 8;
        if bytes.len() != need {
            return None;
        }
        let data = bytes[8..]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        Some(Self { rows, cols, data })
    }

    /// Sub-matrix copy.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                out.set(r, c, self.get(r0 + r, c0 + c));
            }
        }
        out
    }

    /// Write a block into place.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        for r in 0..block.rows {
            for c in 0..block.cols {
                self.set(r0 + r, c0 + c, block.get(r, c));
            }
        }
    }

    /// Naive O(n³) multiply (the correctness reference).
    pub fn mul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * out.cols + c] += a * other.get(k, c);
                }
            }
        }
        out
    }

    /// Cache-blocked multiply with `bs`-sized tiles.
    pub fn mul_blocked(&self, other: &Matrix, bs: usize) -> Matrix {
        assert_eq!(self.cols, other.rows, "shape mismatch");
        assert!(bs > 0);
        let mut out = Matrix::zeros(self.rows, other.cols);
        for rb in (0..self.rows).step_by(bs) {
            for kb in (0..self.cols).step_by(bs) {
                for cb in (0..other.cols).step_by(bs) {
                    let rmax = (rb + bs).min(self.rows);
                    let kmax = (kb + bs).min(self.cols);
                    let cmax = (cb + bs).min(other.cols);
                    for r in rb..rmax {
                        for k in kb..kmax {
                            let a = self.get(r, k);
                            for c in cb..cmax {
                                out.data[r * out.cols + c] += a * other.get(k, c);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn add(&self, other: &Matrix) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    fn sub(&self, other: &Matrix) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    fn pad_to(&self, n: usize) -> Matrix {
        let mut out = Matrix::zeros(n, n);
        out.set_block(0, 0, self);
        out
    }

    /// Strassen's algorithm (reference [170] of the paper): 7 recursive
    /// multiplications instead of 8, with a cutoff to blocked multiply.
    pub fn strassen(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "shape mismatch");
        const CUTOFF: usize = 64;
        let n = self.rows.max(self.cols).max(other.cols);
        let size = n.next_power_of_two().max(CUTOFF);
        let a = self.pad_to(size);
        let b = other.pad_to(size);
        let c = strassen_square(&a, &b, CUTOFF);
        c.block(0, 0, self.rows, other.cols)
    }
}

fn strassen_square(a: &Matrix, b: &Matrix, cutoff: usize) -> Matrix {
    let n = a.rows;
    if n <= cutoff {
        return a.mul_blocked(b, 32);
    }
    let h = n / 2;
    let a11 = a.block(0, 0, h, h);
    let a12 = a.block(0, h, h, h);
    let a21 = a.block(h, 0, h, h);
    let a22 = a.block(h, h, h, h);
    let b11 = b.block(0, 0, h, h);
    let b12 = b.block(0, h, h, h);
    let b21 = b.block(h, 0, h, h);
    let b22 = b.block(h, h, h, h);

    let m1 = strassen_square(&a11.add(&a22), &b11.add(&b22), cutoff);
    let m2 = strassen_square(&a21.add(&a22), &b11, cutoff);
    let m3 = strassen_square(&a11, &b12.sub(&b22), cutoff);
    let m4 = strassen_square(&a22, &b21.sub(&b11), cutoff);
    let m5 = strassen_square(&a11.add(&a12), &b22, cutoff);
    let m6 = strassen_square(&a21.sub(&a11), &b11.add(&b12), cutoff);
    let m7 = strassen_square(&a12.sub(&a22), &b21.add(&b22), cutoff);

    let c11 = m1.add(&m4).sub(&m5).add(&m7);
    let c12 = m3.add(&m5);
    let c21 = m2.add(&m4);
    let c22 = m1.sub(&m2).add(&m3).add(&m6);

    let mut c = Matrix::zeros(n, n);
    c.set_block(0, 0, &c11);
    c.set_block(0, h, &c12);
    c.set_block(h, 0, &c21);
    c.set_block(h, h, &c22);
    c
}

/// Multiply `a × b` as a serverless job: operand panels go into Jiffy, one
/// FaaS invocation computes each `grid × grid` output tile, and the driver
/// assembles the result. Returns the product and the number of function
/// invocations used.
pub fn distributed_multiply(
    platform: &FaasPlatform,
    jiffy: &Jiffy,
    a: &Matrix,
    b: &Matrix,
    grid: usize,
) -> (Matrix, usize) {
    assert_eq!(a.cols(), b.rows(), "shape mismatch");
    assert!(grid >= 1 && grid <= a.rows() && grid <= b.cols());
    let job = "/matmul-job";
    // Stage operand panels as ephemeral state.
    let rows_per = a.rows().div_ceil(grid);
    let cols_per = b.cols().div_ceil(grid);
    for i in 0..grid {
        let r0 = i * rows_per;
        let rows = rows_per.min(a.rows() - r0);
        let panel = a.block(r0, 0, rows, a.cols());
        let f = jiffy
            .create_file(format!("{job}/a/{i}").as_str())
            .expect("stage A panel");
        f.append(&panel.to_bytes()).expect("write A panel");
    }
    for j in 0..grid {
        let c0 = j * cols_per;
        let cols = cols_per.min(b.cols() - c0);
        let panel = b.block(0, c0, b.rows(), cols);
        let f = jiffy
            .create_file(format!("{job}/b/{j}").as_str())
            .expect("stage B panel");
        f.append(&panel.to_bytes()).expect("write B panel");
    }

    // The tile worker: payload "i,j" → reads panels, writes tile.
    let jiffy_for_fn = jiffy.clone();
    let spec = FunctionSpec::new("matmul-tile", "matmul", move |ctx| {
        let text = ctx.payload_str().ok_or("bad payload")?;
        let (i, j) = text
            .split_once(',')
            .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
            .ok_or("bad tile coords")?;
        let a_bytes = jiffy_for_fn
            .open_file(format!("{job}/a/{i}").as_str())
            .and_then(|f| f.contents())
            .map_err(|e| e.to_string())?;
        let b_bytes = jiffy_for_fn
            .open_file(format!("{job}/b/{j}").as_str())
            .and_then(|f| f.contents())
            .map_err(|e| e.to_string())?;
        let pa = Matrix::from_bytes(&a_bytes).ok_or("corrupt A panel")?;
        let pb = Matrix::from_bytes(&b_bytes).ok_or("corrupt B panel")?;
        let tile = pa.mul_blocked(&pb, 32);
        let out = jiffy_for_fn
            .create_file(format!("{job}/c/{i}-{j}").as_str())
            .map_err(|e| e.to_string())?;
        out.append(&tile.to_bytes()).map_err(|e| e.to_string())?;
        Ok(Vec::new())
    });
    // Re-register fresh per job (ignore duplicate error from prior jobs).
    let _ = platform.deregister("matmul-tile");
    platform.register(spec).expect("register tile worker");

    let mut invocations = 0;
    for i in 0..grid {
        for j in 0..grid {
            platform
                .invoke("matmul-tile", format!("{i},{j}").into_bytes())
                .expect("tile invocation");
            invocations += 1;
        }
    }

    // Assemble.
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..grid {
        for j in 0..grid {
            let bytes = jiffy
                .open_file(format!("{job}/c/{i}-{j}").as_str())
                .and_then(|f| f.contents())
                .expect("read C tile");
            let tile = Matrix::from_bytes(&bytes).expect("corrupt C tile");
            c.set_block(i * rows_per, j * cols_per, &tile);
        }
    }
    // Ephemeral state is consumed; release it.
    let _ = jiffy.remove_namespace(job);
    (c, invocations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taureau_core::bytesize::ByteSize;
    use taureau_core::clock::VirtualClock;
    use taureau_faas::PlatformConfig;
    use taureau_jiffy::JiffyConfig;

    #[test]
    fn naive_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.mul_naive(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn blocked_matches_naive() {
        let a = Matrix::random(37, 53, 1);
        let b = Matrix::random(53, 29, 2);
        let naive = a.mul_naive(&b);
        for bs in [1, 8, 16, 64] {
            let blocked = a.mul_blocked(&b, bs);
            assert!(naive.max_abs_diff(&blocked).unwrap() < 1e-9, "bs={bs}");
        }
    }

    #[test]
    fn strassen_matches_naive_on_nonsquare_and_non_pow2() {
        for (m, k, n, seed) in [(65, 70, 80, 3), (100, 100, 100, 4), (17, 33, 9, 5)] {
            let a = Matrix::random(m, k, seed);
            let b = Matrix::random(k, n, seed + 100);
            let diff = a.mul_naive(&b).max_abs_diff(&a.strassen(&b)).unwrap();
            assert!(diff < 1e-6, "({m},{k},{n}): diff {diff}");
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let m = Matrix::random(7, 5, 9);
        assert_eq!(Matrix::from_bytes(&m.to_bytes()), Some(m));
        assert_eq!(Matrix::from_bytes(b"junk"), None);
    }

    #[test]
    fn distributed_matches_local() {
        let clock = VirtualClock::shared();
        let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
        let jiffy = Jiffy::new(
            JiffyConfig {
                block_size: ByteSize::kb(64),
                ..JiffyConfig::default()
            },
            clock,
        );
        let a = Matrix::random(48, 32, 11);
        let b = Matrix::random(32, 40, 12);
        let (c, invocations) = distributed_multiply(&platform, &jiffy, &a, &b, 4);
        assert_eq!(invocations, 16);
        let reference = a.mul_naive(&b);
        assert!(reference.max_abs_diff(&c).unwrap() < 1e-9);
        // The job cleaned up its ephemeral state.
        assert!(!jiffy.exists("/matmul-job"));
        // And every tile was billed as a serverless invocation.
        assert_eq!(platform.billing().invocations("matmul"), 16);
    }

    #[test]
    fn distributed_handles_uneven_grids() {
        let clock = VirtualClock::shared();
        let platform = FaasPlatform::new(PlatformConfig::deterministic(), clock.clone());
        let jiffy = Jiffy::new(JiffyConfig::default(), clock);
        let a = Matrix::random(10, 6, 21);
        let b = Matrix::random(6, 7, 22);
        let (c, _) = distributed_multiply(&platform, &jiffy, &a, &b, 3);
        assert!(a.mul_naive(&b).max_abs_diff(&c).unwrap() < 1e-9);
    }
}
