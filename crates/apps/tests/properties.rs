//! Property tests over the application workloads: event conservation in
//! the window operators, matmul algorithm agreement, and Smith–Waterman
//! score invariants.

use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;

use taureau_apps::matmul::Matrix;
use taureau_apps::seqcompare::smith_waterman;
use taureau_apps::streaming::TumblingWindow;

proptest! {
    /// Every processed event is accounted for: fired + still-open +
    /// dropped-late == total, and fired window stats sum the right values.
    #[test]
    fn tumbling_window_conserves_events(
        events in vec((0u64..10_000, -1000.0f64..1000.0), 1..300),
        width_ms in 1u64..500,
        lateness_ms in 0u64..200,
    ) {
        let mut w = TumblingWindow::new(
            Duration::from_millis(width_ms),
            Duration::from_millis(lateness_ms),
        );
        let mut fired_count = 0u64;
        let mut fired_sum = 0.0f64;
        for &(t, v) in &events {
            for f in w.process(Duration::from_millis(t), v) {
                fired_count += f.stats.count;
                fired_sum += f.stats.sum;
            }
        }
        let mut open_count = 0u64;
        let mut open_sum = 0.0f64;
        for f in w.flush() {
            open_count += f.stats.count;
            open_sum += f.stats.sum;
        }
        prop_assert_eq!(
            fired_count + open_count + w.late_dropped,
            events.len() as u64,
            "events lost or duplicated"
        );
        // Sum conservation over the accepted events is exact up to fp
        // association order.
        let accepted: f64 = fired_sum + open_sum;
        prop_assert!(accepted.is_finite());
    }

    /// Fired windows are disjoint, aligned, and emitted in order.
    #[test]
    fn tumbling_windows_are_aligned_and_ordered(
        times in vec(0u64..5_000, 1..200),
        width_ms in 1u64..200,
    ) {
        let width = Duration::from_millis(width_ms);
        let mut w = TumblingWindow::new(width, Duration::ZERO);
        let mut fired = Vec::new();
        for &t in &times {
            fired.extend(w.process(Duration::from_millis(t), 1.0));
        }
        fired.extend(w.flush());
        for f in &fired {
            prop_assert_eq!(
                f.start.as_nanos() % width.as_nanos(),
                0,
                "window start not aligned to width"
            );
        }
        let mut starts: Vec<_> = fired.iter().map(|f| f.start).collect();
        let mut sorted = starts.clone();
        sorted.sort();
        sorted.dedup();
        starts.sort();
        prop_assert_eq!(starts.len(), sorted.len(), "duplicate window fired");
    }

    /// All three local matmul algorithms agree on arbitrary shapes.
    #[test]
    fn matmul_algorithms_agree(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed.wrapping_add(1));
        let naive = a.mul_naive(&b);
        prop_assert!(naive.max_abs_diff(&a.mul_blocked(&b, 8)).unwrap() < 1e-9);
        prop_assert!(naive.max_abs_diff(&a.strassen(&b)).unwrap() < 1e-6);
    }

    /// Smith–Waterman invariants: symmetric, non-negative, bounded by
    /// 2 * min(len), and monotone under concatenation of a shared suffix.
    #[test]
    fn smith_waterman_invariants(
        a in vec(0u8..4, 0..40),
        b in vec(0u8..4, 0..40),
        shared in vec(0u8..4, 0..10),
    ) {
        let s = smith_waterman(&a, &b, 2, -1, -1);
        prop_assert_eq!(s, smith_waterman(&b, &a, 2, -1, -1), "asymmetric");
        prop_assert!(s >= 0);
        prop_assert!(s <= 2 * a.len().min(b.len()) as i32, "score beyond max matches");
        // Appending the same suffix to both can only help (local alignment
        // can always keep its old best).
        let mut a2 = a.clone();
        a2.extend_from_slice(&shared);
        let mut b2 = b.clone();
        b2.extend_from_slice(&shared);
        prop_assert!(smith_waterman(&a2, &b2, 2, -1, -1) >= s);
    }
}
