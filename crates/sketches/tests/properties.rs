//! Property-based tests for the sketch invariants the paper's analytics
//! use-cases rely on (§5.1): no-underestimate for Count-Min, no false
//! negatives for Bloom, merge-equals-union for all linear sketches.

use proptest::collection::vec;
use proptest::prelude::*;

use taureau_sketches::{AmsF2, BloomFilter, CountMinSketch, HyperLogLog, KllSketch, Mergeable};

proptest! {
    /// Count-Min never underestimates, for any stream.
    #[test]
    fn countmin_never_underestimates(stream in vec(0u16..64, 1..500)) {
        let mut cm = CountMinSketch::new(4, 32, 99);
        let mut truth = [0u64; 64];
        for &item in &stream {
            cm.add(&item.to_le_bytes(), 1);
            truth[item as usize] += 1;
        }
        for item in 0u16..64 {
            prop_assert!(cm.estimate(&item.to_le_bytes()) >= truth[item as usize]);
        }
    }

    /// Splitting a stream at any point and merging reproduces the
    /// whole-stream Count-Min exactly.
    #[test]
    fn countmin_merge_equals_whole(
        stream in vec(0u16..128, 0..400),
        split in 0usize..400,
    ) {
        let split = split.min(stream.len());
        let mut whole = CountMinSketch::new(3, 64, 5);
        let mut left = CountMinSketch::new(3, 64, 5);
        let mut right = CountMinSketch::new(3, 64, 5);
        for (i, &item) in stream.iter().enumerate() {
            whole.add(&item.to_le_bytes(), 1);
            if i < split {
                left.add(&item.to_le_bytes(), 1);
            } else {
                right.add(&item.to_le_bytes(), 1);
            }
        }
        left.merge(&right).unwrap();
        prop_assert_eq!(left, whole);
    }

    /// Bloom filters have no false negatives for any insertion set.
    #[test]
    fn bloom_no_false_negatives(items in vec(any::<u32>(), 1..300)) {
        let mut bf = BloomFilter::new(300, 0.01, 7);
        for &i in &items {
            bf.insert(&i.to_le_bytes());
        }
        for &i in &items {
            prop_assert!(bf.contains(&i.to_le_bytes()));
        }
    }

    /// Bloom merge is union: anything in either side is in the merge.
    #[test]
    fn bloom_merge_is_union(
        left in vec(any::<u32>(), 0..100),
        right in vec(any::<u32>(), 0..100),
    ) {
        let mut a = BloomFilter::new(200, 0.01, 3);
        let mut b = BloomFilter::new(200, 0.01, 3);
        for &i in &left { a.insert(&i.to_le_bytes()); }
        for &i in &right { b.insert(&i.to_le_bytes()); }
        a.merge(&b).unwrap();
        for &i in left.iter().chain(&right) {
            prop_assert!(a.contains(&i.to_le_bytes()));
        }
    }

    /// HLL merge is idempotent, commutative in its estimates, and dominated
    /// by register-wise max.
    #[test]
    fn hll_merge_commutes(
        left in vec(any::<u64>(), 0..200),
        right in vec(any::<u64>(), 0..200),
    ) {
        let mut a1 = HyperLogLog::new(8, 1);
        let mut b1 = HyperLogLog::new(8, 1);
        for &i in &left { a1.add(&i.to_le_bytes()); }
        for &i in &right { b1.add(&i.to_le_bytes()); }
        let mut ab = a1.clone();
        ab.merge(&b1).unwrap();
        let mut ba = b1.clone();
        ba.merge(&a1).unwrap();
        prop_assert_eq!(&ab, &ba);
        // Merging a sketch into itself changes nothing.
        let mut aa = a1.clone();
        aa.merge(&a1).unwrap();
        prop_assert_eq!(aa, a1);
    }

    /// KLL rank estimates are within the coarse additive bound even for
    /// adversarial small streams, and quantiles are monotone.
    #[test]
    fn kll_quantiles_monotone(values in vec(-1e6f64..1e6, 1..2000)) {
        let mut s = KllSketch::new(64);
        for &v in &values {
            s.update(v);
        }
        let qs: Vec<f64> = (0..=10)
            .map(|i| s.quantile(i as f64 / 10.0).unwrap())
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", qs);
        }
        // Extremes are bracketed by the true min/max.
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(qs[0] >= min && qs[10] <= max);
    }

    /// KLL under merge keeps its rank-error bound: shard a random stream,
    /// sketch each shard, merge, and every merged quantile estimate must
    /// sit within an additive rank error of the exact quantile over the
    /// whole stream. This guards the monitor's shard-merge path (rolling
    /// windows merge one sub-sketch per time slice on every query).
    #[test]
    fn kll_merge_rank_error_within_bound(
        left in vec(-1e6f64..1e6, 1..800),
        right in vec(-1e6f64..1e6, 1..800),
    ) {
        let k = 64;
        let mut a = KllSketch::new(k);
        let mut b = KllSketch::new(k);
        for &v in &left { a.update(v); }
        for &v in &right { b.update(v); }
        a.merge(&b).unwrap();

        let mut exact: Vec<f64> = left.iter().chain(&right).cloned().collect();
        exact.sort_by(f64::total_cmp);
        let n = exact.len() as f64;
        prop_assert_eq!(a.total(), exact.len() as u64);
        // Coarse additive bound: merged depth adds compaction rounds, so
        // allow a generous constant factor over the single-sketch ~1/k.
        let eps = 10.0 / k as f64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let est = a.quantile(q).unwrap();
            // Rank of the estimate in the exact stream.
            let rank = exact.iter().filter(|&&v| v <= est).count() as f64;
            let target = q * n;
            prop_assert!(
                (rank - target).abs() <= eps * n + 1.0,
                "q={} est={} rank={} target={} n={}",
                q, est, rank, target, n
            );
        }
    }

    /// AMS F2 is exactly linear: sketch(a) + sketch(b) = sketch(a ++ b).
    #[test]
    fn ams_linearity(
        left in vec(0u8..32, 0..200),
        right in vec(0u8..32, 0..200),
    ) {
        let mut a = AmsF2::new(3, 16, 11);
        let mut b = AmsF2::new(3, 16, 11);
        let mut whole = AmsF2::new(3, 16, 11);
        for &i in &left { a.update(&[i], 1); whole.update(&[i], 1); }
        for &i in &right { b.update(&[i], 1); whole.update(&[i], 1); }
        a.merge(&b).unwrap();
        prop_assert_eq!(a, whole);
    }

    /// Inserting then deleting everything returns AMS to the zero sketch.
    #[test]
    fn ams_turnstile_cancellation(items in vec(0u8..16, 0..100)) {
        let mut s = AmsF2::new(3, 16, 2);
        for &i in &items { s.update(&[i], 3); }
        for &i in &items { s.update(&[i], -3); }
        prop_assert_eq!(s.estimate(), 0.0);
    }
}
