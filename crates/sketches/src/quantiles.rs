//! KLL quantile sketch (Karnin, Lang, Liberty, 2016) — simplified.
//!
//! A hierarchy of *compactors*: level `l` holds items each representing
//! `2^l` stream elements. When a compactor overflows, it is sorted and
//! every other element (random parity) is promoted to the next level.
//! Capacities decay geometrically from the top (`k, 2k/3, 4k/9, …`, floor 2),
//! giving `O(k log(n/k))` space and additive rank error `O(n/k)`.

use serde::{Deserialize, Serialize};

use crate::{MergeError, Mergeable};

/// Streaming quantile sketch over `f64` values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KllSketch {
    k: usize,
    compactors: Vec<Vec<f64>>,
    /// Total stream length.
    total: u64,
    /// Items currently stored across all compactors.
    stored: usize,
    /// Cheap deterministic coin state for compaction parity.
    coin_state: u64,
}

impl KllSketch {
    /// Create with accuracy parameter `k` (bigger = more accurate; 200 is a
    /// common default giving ~1% rank error).
    pub fn new(k: usize) -> Self {
        assert!(k >= 8, "k must be at least 8");
        Self {
            k,
            compactors: vec![Vec::new()],
            total: 0,
            stored: 0,
            coin_state: 0x243f_6a88_85a3_08d3,
        }
    }

    /// Accuracy parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Stream length observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of compactor levels.
    pub fn levels(&self) -> usize {
        self.compactors.len()
    }

    /// Items currently stored (space usage).
    pub fn stored(&self) -> usize {
        self.stored
    }

    fn capacity(&self, level: usize) -> usize {
        let h = self.compactors.len();
        let depth = (h - 1 - level) as i32;
        ((self.k as f64) * (2.0f64 / 3.0).powi(depth)).ceil() as usize
    }

    fn max_stored(&self) -> usize {
        (0..self.compactors.len()).map(|l| self.capacity(l)).sum()
    }

    fn coin(&mut self) -> bool {
        // xorshift64*
        let mut x = self.coin_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.coin_state = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 63) == 1
    }

    /// Observe one value.
    pub fn update(&mut self, value: f64) {
        debug_assert!(!value.is_nan(), "NaN has no rank");
        self.compactors[0].push(value);
        self.stored += 1;
        self.total += 1;
        if self.stored > self.max_stored() {
            self.compress();
        }
    }

    fn compress(&mut self) {
        for level in 0..self.compactors.len() {
            if self.compactors[level].len() > self.capacity(level) {
                if level + 1 == self.compactors.len() {
                    self.compactors.push(Vec::new());
                }
                let parity = usize::from(self.coin());
                let mut items = std::mem::take(&mut self.compactors[level]);
                items.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                let promoted: Vec<f64> = items.iter().skip(parity).step_by(2).copied().collect();
                self.stored -= items.len();
                self.stored += promoted.len();
                self.compactors[level + 1].extend(promoted);
                // One compaction per call keeps amortised cost low (lazy KLL).
                return;
            }
        }
    }

    /// Estimated rank of `value`: number of stream elements ≤ `value`.
    pub fn rank(&self, value: f64) -> u64 {
        let mut r = 0u64;
        for (level, items) in self.compactors.iter().enumerate() {
            let w = 1u64 << level;
            r += w * items.iter().filter(|&&x| x <= value).count() as u64;
        }
        r
    }

    /// Estimated quantile `q ∈ [0,1]`. Returns `None` on an empty sketch.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let mut weighted: Vec<(f64, u64)> = Vec::with_capacity(self.stored);
        for (level, items) in self.compactors.iter().enumerate() {
            let w = 1u64 << level;
            weighted.extend(items.iter().map(|&x| (x, w)));
        }
        weighted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (x, w) in &weighted {
            acc += w;
            if acc >= target {
                return Some(*x);
            }
        }
        weighted.last().map(|(x, _)| *x)
    }

    /// Median convenience.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

impl Mergeable for KllSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.k != other.k {
            return Err(MergeError::new("k mismatch"));
        }
        while self.compactors.len() < other.compactors.len() {
            self.compactors.push(Vec::new());
        }
        for (level, items) in other.compactors.iter().enumerate() {
            self.compactors[level].extend_from_slice(items);
            self.stored += items.len();
        }
        self.total += other.total;
        while self.stored > self.max_stored() {
            let before = self.stored;
            self.compress();
            if self.stored == before {
                break;
            }
        }
        Ok(())
    }
}

/// Build a sketch from an iterator (convenience for tests and benches).
impl FromIterator<f64> for KllSketch {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = KllSketch::new(200);
        for v in iter {
            s.update(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use taureau_core::rng::det_rng;

    #[test]
    fn empty_sketch() {
        let s = KllSketch::new(64);
        assert_eq!(s.total(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.rank(10.0), 0);
    }

    #[test]
    fn exact_for_small_streams() {
        let mut s = KllSketch::new(200);
        for i in 1..=100 {
            s.update(i as f64);
        }
        assert_eq!(s.quantile(0.5), Some(50.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        assert_eq!(s.rank(50.0), 50);
    }

    #[test]
    fn rank_error_bounded_on_large_stream() {
        let n = 200_000u64;
        let mut values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        values.shuffle(&mut det_rng(7));
        let mut s = KllSketch::new(200);
        for v in values {
            s.update(v);
        }
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = s.quantile(q).unwrap();
            let err = (est - q * n as f64).abs() / n as f64;
            assert!(err < 0.02, "q={q} est={est} err={err}");
        }
    }

    #[test]
    fn space_is_sublinear() {
        let mut s = KllSketch::new(128);
        for i in 0..1_000_000 {
            s.update((i % 10_000) as f64);
        }
        assert!(
            s.stored() < 5_000,
            "stored {} items for a 1M stream",
            s.stored()
        );
        assert!(s.levels() > 5);
    }

    #[test]
    fn merge_approximates_union() {
        let n = 50_000;
        let mut a = KllSketch::new(200);
        let mut b = KllSketch::new(200);
        let mut values: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
        values.shuffle(&mut det_rng(9));
        for (i, v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.update(*v);
            } else {
                b.update(*v);
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 2 * n as u64);
        for q in [0.1, 0.5, 0.9] {
            let est = a.quantile(q).unwrap();
            let expect = q * (2 * n) as f64;
            let err = (est - expect).abs() / (2 * n) as f64;
            assert!(err < 0.03, "q={q} est={est}");
        }
    }

    #[test]
    fn merge_rejects_k_mismatch() {
        let mut a = KllSketch::new(64);
        let b = KllSketch::new(128);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn skewed_distribution_quantiles() {
        // Exponential-ish data: check monotonicity of quantile estimates.
        let mut s = KllSketch::new(256);
        let mut r = det_rng(11);
        use rand::Rng;
        for _ in 0..100_000 {
            let u: f64 = r.gen_range(1e-9..1.0);
            s.update(-u.ln());
        }
        let qs: Vec<f64> = [0.1, 0.3, 0.5, 0.7, 0.9, 0.99]
            .iter()
            .map(|&q| s.quantile(q).unwrap())
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        // Median of Exp(1) is ln 2 ≈ 0.693.
        assert!((qs[2] - 0.693).abs() < 0.05, "median {}", qs[2]);
    }
}
